//! Structured span tracing with explicit parent propagation.
//!
//! The [`Obs`] handle bundles a [`MetricsHandle`] with an optional
//! tracer. When the tracer is absent ([`Obs::disabled`]) every span
//! operation is a branch on `None` — no allocation, no clock read — so
//! instrumentation can stay compiled into the invoke fast path.
//!
//! Parenting works two ways:
//!
//! * **Same thread**: [`Span::enter`] installs the span as the
//!   thread-local current span; [`Obs::span`] parents new spans under
//!   it. This covers nested phases like `interaction → lease → fetch`.
//! * **Across threads and across the wire**: [`Span::ctx`] yields a
//!   [`SpanCtx`] (two `u64`s) that can be stored, sent to another
//!   thread, or serialized into an invoke frame; [`Obs::child_of`]
//!   resumes the tree on the other side. This is how the device-side
//!   `serve:` span becomes a child of the phone-side `rpc:` span.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::metrics::MetricsHandle;
use crate::sink::{SpanRecord, TraceSink};

/// Wire-portable span identity: which trace, and which span within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanCtx {
    /// Identifies the whole trace (one per root span).
    pub trace_id: u64,
    /// Identifies this span within the process that created it.
    pub span_id: u64,
}

/// Process-wide id allocator: ids are dense and start at 1, which keeps
/// traces deterministic enough to assert on in tests.
fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Monotonic microseconds since the first span of the process: stable
/// ordering for timeline reconstruction without wall-clock jumps.
fn monotonic_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_micros() as u64
}

thread_local! {
    static CURRENT: Cell<Option<SpanCtx>> = const { Cell::new(None) };
}

struct Tracer {
    sink: Arc<dyn TraceSink>,
}

/// The observability handle threaded through the stack: metrics are
/// always live, tracing only when constructed via [`Obs::recording`] /
/// [`Obs::ring`]. Cloning is two `Arc` bumps.
#[derive(Clone, Default)]
pub struct Obs {
    metrics: MetricsHandle,
    tracer: Option<Arc<Tracer>>,
}

impl Obs {
    /// Metrics-only handle: spans are no-ops that never allocate.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// Tracing handle recording finished spans into `sink`.
    pub fn recording(sink: Arc<dyn TraceSink>) -> Self {
        Obs {
            metrics: MetricsHandle::new(),
            tracer: Some(Arc::new(Tracer { sink })),
        }
    }

    /// Convenience: a recording handle plus its ring sink.
    pub fn ring(capacity: usize) -> (Self, Arc<crate::sink::RingSink>) {
        let ring = crate::sink::RingSink::new(capacity);
        (Obs::recording(ring.clone()), ring)
    }

    /// Same tracer (shared sink, shared trace tree), but a fresh empty
    /// metrics registry. Endpoints use this so two endpoints sharing a
    /// trace still keep per-endpoint counters.
    pub fn with_fresh_metrics(&self) -> Self {
        Obs {
            metrics: MetricsHandle::new(),
            tracer: self.tracer.clone(),
        }
    }

    /// True when spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// The metrics registry behind this handle.
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// The current thread's innermost entered span, if any.
    pub fn current(&self) -> Option<SpanCtx> {
        if self.tracer.is_some() {
            CURRENT.with(|c| c.get())
        } else {
            None
        }
    }

    /// Starts a span named by `make_name`, parented under the current
    /// thread-local span (a new root trace when there is none). The
    /// closure only runs when tracing is enabled.
    pub fn span_dyn(&self, make_name: impl FnOnce() -> String) -> Span {
        let parent = self.current();
        self.child_dyn(parent, make_name)
    }

    /// Starts a span with a static name (see [`Obs::span_dyn`]).
    pub fn span(&self, name: &str) -> Span {
        self.span_dyn(|| name.to_string())
    }

    /// Starts a span as an explicit child of `parent` (cross-thread or
    /// cross-wire resume); `None` starts a new root trace.
    pub fn child_of(&self, parent: Option<SpanCtx>, name: &str) -> Span {
        self.child_dyn(parent, || name.to_string())
    }

    /// [`Obs::child_of`] with a lazily built name.
    pub fn child_dyn(&self, parent: Option<SpanCtx>, make_name: impl FnOnce() -> String) -> Span {
        let Some(tracer) = &self.tracer else {
            return Span(None);
        };
        let span_id = next_id();
        let ctx = SpanCtx {
            trace_id: parent.map_or_else(next_id, |p| p.trace_id),
            span_id,
        };
        Span(Some(Box::new(ActiveSpan {
            tracer: tracer.clone(),
            ctx,
            parent_id: parent.map(|p| p.span_id),
            name: make_name(),
            start: Instant::now(),
            start_us: monotonic_us(),
            fields: Vec::new(),
        })))
    }
}

struct ActiveSpan {
    tracer: Arc<Tracer>,
    ctx: SpanCtx,
    parent_id: Option<u64>,
    name: String,
    start: Instant,
    start_us: u64,
    fields: Vec<(String, String)>,
}

/// An open span. Records itself to the sink when dropped. A span from a
/// disabled [`Obs`] is `None` inside: every method is a no-op and
/// nothing is allocated.
pub struct Span(Option<Box<ActiveSpan>>);

impl Span {
    /// A span that records nothing (what disabled handles hand out).
    pub fn none() -> Self {
        Span(None)
    }

    /// True when this span is live (tracing enabled at creation).
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// This span's wire-portable identity, `None` when disabled.
    pub fn ctx(&self) -> Option<SpanCtx> {
        self.0.as_ref().map(|s| s.ctx)
    }

    /// Annotates the span with a key/value pair. The value closure only
    /// runs when the span is live.
    pub fn set_with(&mut self, key: &str, value: impl FnOnce() -> String) {
        if let Some(s) = &mut self.0 {
            s.fields.push((key.to_string(), value()));
        }
    }

    /// Annotates the span with an already-built value.
    pub fn set(&mut self, key: &str, value: &str) {
        self.set_with(key, || value.to_string());
    }

    /// Makes this span the thread-local current span until the guard
    /// drops; children created via [`Obs::span`] nest under it.
    pub fn enter(&self) -> SpanGuard {
        match &self.0 {
            Some(s) => {
                let prev = CURRENT.with(|c| c.replace(Some(s.ctx)));
                SpanGuard {
                    restore: Some(prev),
                }
            }
            None => SpanGuard { restore: None },
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            let duration_us = s.start.elapsed().as_micros() as u64;
            s.tracer.sink.record(SpanRecord {
                trace_id: s.ctx.trace_id,
                span_id: s.ctx.span_id,
                parent_id: s.parent_id,
                name: s.name,
                start_us: s.start_us,
                duration_us,
                fields: s.fields,
            });
        }
    }
}

/// Restores the previous thread-local current span on drop.
pub struct SpanGuard {
    /// `Some(previous)` when the guard actually swapped the slot.
    restore: Option<Option<SpanCtx>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.restore.take() {
            CURRENT.with(|c| c.set(prev));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        let obs = Obs::disabled();
        let mut span = obs.span_dyn(|| panic!("name must not be built when disabled"));
        assert!(!span.is_recording());
        assert!(span.ctx().is_none());
        span.set_with("k", || panic!("field must not be built when disabled"));
        let _guard = span.enter();
        assert!(obs.current().is_none());
    }

    #[test]
    fn entered_spans_parent_same_thread_children() {
        let (obs, ring) = Obs::ring(16);
        let root_ctx;
        {
            let root = obs.span("root");
            root_ctx = root.ctx().unwrap();
            let _g = root.enter();
            let child = obs.span("child");
            assert_eq!(child.ctx().unwrap().trace_id, root_ctx.trace_id);
        }
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 2);
        let child = spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(child.parent_id, Some(root_ctx.span_id));
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(root.parent_id, None);
    }

    #[test]
    fn enter_guard_restores_previous() {
        let (obs, _ring) = Obs::ring(16);
        let outer = obs.span("outer");
        let _g = outer.enter();
        {
            let inner = obs.span("inner");
            let _g2 = inner.enter();
            assert_eq!(obs.current(), inner.ctx());
        }
        assert_eq!(obs.current(), outer.ctx());
    }

    #[test]
    fn explicit_child_resumes_tree_across_threads() {
        let (obs, ring) = Obs::ring(16);
        let root = obs.span("root");
        let ctx = root.ctx();
        let obs2 = obs.clone();
        std::thread::spawn(move || {
            let _child = obs2.child_of(ctx, "remote");
        })
        .join()
        .unwrap();
        drop(root);
        let spans = ring.snapshot();
        let remote = spans.iter().find(|s| s.name == "remote").unwrap();
        assert_eq!(remote.trace_id, ctx.unwrap().trace_id);
        assert_eq!(remote.parent_id, Some(ctx.unwrap().span_id));
    }

    #[test]
    fn fresh_metrics_shares_tracer_only() {
        let (obs, ring) = Obs::ring(16);
        obs.metrics().counter("a").inc();
        let other = obs.with_fresh_metrics();
        assert!(other.enabled());
        assert_eq!(other.metrics().counter("a").get(), 0);
        drop(other.span("from-other"));
        assert_eq!(ring.snapshot().len(), 1);
    }
}
