//! A process-global structured event hub.
//!
//! Diagnostics that used to be one-off debug strings (TCP close reasons,
//! injected faults, health transitions, bundle lifecycle) are emitted
//! here as structured records instead, so tests can subscribe and assert
//! on them while `cargo test -q` stdout stays clean.
//!
//! The hub is zero-cost when nobody listens: [`event`] checks a relaxed
//! atomic subscriber count and returns before invoking the field-building
//! closure, so a disabled emit is a load + branch with no allocation.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use alfredo_sync::Mutex;

/// One structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Component that emitted it, e.g. `net.tcp` or `rosgi.health`.
    pub target: String,
    /// Event name, e.g. `close` or `transition`.
    pub name: String,
    /// Key/value payload.
    pub fields: Vec<(String, String)>,
}

impl EventRecord {
    /// Value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

type Listener = Arc<dyn Fn(&EventRecord) + Send + Sync>;

struct Hub {
    listeners: Mutex<Vec<(u64, Listener)>>,
    next_id: AtomicU64,
}

fn hub() -> &'static Hub {
    static HUB: OnceLock<Hub> = OnceLock::new();
    HUB.get_or_init(|| Hub {
        listeners: Mutex::new(Vec::new()),
        next_id: AtomicU64::new(1),
    })
}

/// Count of live subscribers, readable without forcing the hub's
/// `OnceLock` on the fast path.
static SUBSCRIBERS: AtomicUsize = AtomicUsize::new(0);

/// True when at least one subscriber is listening. Emit sites on hot
/// paths may pre-check this to skip argument setup entirely.
#[inline]
pub fn events_enabled() -> bool {
    SUBSCRIBERS.load(Ordering::Relaxed) > 0
}

/// Emits an event. `make_fields` only runs when someone is subscribed.
pub fn event(target: &str, name: &str, make_fields: impl FnOnce() -> Vec<(String, String)>) {
    if !events_enabled() {
        return;
    }
    let record = EventRecord {
        target: target.to_string(),
        name: name.to_string(),
        fields: make_fields(),
    };
    let listeners: Vec<Listener> = hub()
        .listeners
        .lock()
        .iter()
        .map(|(_, l)| l.clone())
        .collect();
    for listener in listeners {
        listener(&record);
    }
}

/// A live subscription; dropping it unsubscribes.
pub struct EventSubscription {
    id: u64,
}

impl Drop for EventSubscription {
    fn drop(&mut self) {
        let mut listeners = hub().listeners.lock();
        if let Some(pos) = listeners.iter().position(|(id, _)| *id == self.id) {
            listeners.remove(pos);
            SUBSCRIBERS.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Subscribes `listener` to every event until the returned handle drops.
pub fn subscribe(listener: impl Fn(&EventRecord) + Send + Sync + 'static) -> EventSubscription {
    let h = hub();
    let id = h.next_id.fetch_add(1, Ordering::Relaxed);
    h.listeners.lock().push((id, Arc::new(listener)));
    SUBSCRIBERS.fetch_add(1, Ordering::Relaxed);
    EventSubscription { id }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_subscribers_skips_field_build() {
        // No subscriber registered by this test; even if another test in
        // this process subscribed, the closure contract is "runs at most
        // when enabled", so only assert the cheap path when disabled.
        if !events_enabled() {
            event("t", "n", || panic!("fields must not be built"));
        }
    }

    #[test]
    fn subscribe_receives_and_drop_unsubscribes() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sub = {
            let seen = seen.clone();
            subscribe(move |e| {
                if e.target == "test.hub" {
                    seen.lock().push(e.clone());
                }
            })
        };
        assert!(events_enabled());
        event("test.hub", "ping", || {
            vec![("k".to_string(), "v".to_string())]
        });
        drop(sub);
        event("test.hub", "after-drop", Vec::new);
        let seen = seen.lock();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].name, "ping");
        assert_eq!(seen[0].field("k"), Some("v"));
    }
}
