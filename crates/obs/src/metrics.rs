//! Lock-light metrics registry: counters, gauges, and exponential-bucket
//! histograms behind a single cheap-to-clone [`MetricsHandle`].
//!
//! Registration (get-or-create by name) takes a mutex; the handles it
//! returns are `Arc`-backed atomics, so every hot-path operation —
//! `inc`, `add`, `set`, `record` — is a relaxed atomic op with no lock,
//! no allocation, and no syscall. Callers register once at construction
//! time and keep the handle.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use alfredo_sync::Mutex;

/// The process-wide metrics registry.
///
/// Per-session instruments live in each session's own [`MetricsHandle`]
/// (see [`crate::Obs`]); infrastructure that is genuinely process-global —
/// the I/O reactor's connection/thread/timer gauges, for example — records
/// here so every `/metrics` export sees it regardless of which session
/// served the request.
pub fn global_metrics() -> &'static MetricsHandle {
    static GLOBAL: OnceLock<MetricsHandle> = OnceLock::new();
    GLOBAL.get_or_init(MetricsHandle::new)
}

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket `i`
/// (1 ≤ i < `BUCKETS - 1`) holds values in `[2^(i-1), 2^i)`, and the last
/// bucket saturates — it absorbs everything at or above
/// `2^(BUCKETS - 3)` (≈ 34 s when recording microseconds).
pub(crate) const BUCKETS: usize = 40;

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a standalone counter (not registered anywhere).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates a standalone gauge (not registered anywhere).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Stored as `u64::MAX` until the first record.
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket exponential histogram.
///
/// Bucket bounds are powers of two, so the bucket index is a
/// `leading_zeros` away and a quantile estimate is off by at most a
/// factor of two (estimates are clamped to the observed `max`, which
/// also makes the saturation bucket exact at the top end). Recording is
/// five relaxed atomic ops — no locks, no allocation.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Estimated 50th percentile.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

/// Index of the bucket holding `v`: 0 for 0, else `bit-width of v`,
/// capped at the saturation bucket.
#[inline]
fn bucket_index(v: u64) -> usize {
    let width = (64 - v.leading_zeros()) as usize;
    width.min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the saturation
/// bucket).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates a standalone histogram (not registered anywhere).
    pub fn new() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a `Duration` in microseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Estimated quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket containing the nearest-rank sample, clamped to the
    /// observed max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let inner = &*self.0;
        let count = inner.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let max = inner.max.load(Ordering::Relaxed);
        // Nearest-rank: the k-th smallest sample, 1-based.
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in inner.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i).min(max);
            }
        }
        max
    }

    /// Point-in-time snapshot with p50/p95/p99 estimates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.0;
        let count = inner.count.load(Ordering::Relaxed);
        let min = inner.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            min: if min == u64::MAX { 0 } else { min },
            max: inner.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (test/debug aid).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Windowed view over the values recorded since the previous sample.
///
/// [`Histogram`] is cumulative — `quantile` answers "over the whole
/// run". A control loop needs "over the last tick": after a placement
/// migration the old latency regime must stop influencing decisions
/// immediately, not fade out over thousands of samples. A
/// `HistogramWindow` holds a clone of the histogram plus the bucket
/// counts it saw at the previous [`sample`](HistogramWindow::sample)
/// call, and estimates quantiles over only the delta.
///
/// Quantile estimates carry the same power-of-two bucket error as the
/// underlying histogram and are clamped to the *all-time* max (the
/// per-window max is not tracked), so a window's p95 can only
/// over-estimate, never invent values larger than anything recorded.
///
/// # Example
///
/// ```
/// use alfredo_obs::{Histogram, HistogramWindow};
///
/// let h = Histogram::new();
/// let mut w = HistogramWindow::new(h.clone());
/// h.record(100);
/// h.record(120);
/// let first = w.sample();
/// assert_eq!(first.count, 2);
///
/// // The next window only sees what was recorded after the last sample.
/// h.record(8_000);
/// let second = w.sample();
/// assert_eq!(second.count, 1);
/// assert!(second.p95 >= 4_096, "window p95 reflects the new regime");
/// ```
pub struct HistogramWindow {
    source: Histogram,
    prev: Vec<u64>,
    prev_sum: u64,
}

/// Quantile estimates over one [`HistogramWindow`] sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSnapshot {
    /// Values recorded inside the window.
    pub count: u64,
    /// Mean of the window's values (0.0 when empty).
    pub mean: f64,
    /// Estimated 50th percentile of the window.
    pub p50: u64,
    /// Estimated 95th percentile of the window.
    pub p95: u64,
    /// Estimated 99th percentile of the window.
    pub p99: u64,
}

impl HistogramWindow {
    /// Starts a window over `source`, anchored at its current contents —
    /// the first [`sample`](HistogramWindow::sample) covers everything
    /// recorded from this point on.
    pub fn new(source: Histogram) -> Self {
        let prev = source.bucket_counts();
        let prev_sum = source.0.sum.load(Ordering::Relaxed);
        HistogramWindow {
            source,
            prev,
            prev_sum,
        }
    }

    /// Closes the current window and opens the next: returns quantile
    /// estimates over the values recorded since the previous `sample`
    /// (or since construction, for the first call).
    pub fn sample(&mut self) -> WindowSnapshot {
        let now = self.source.bucket_counts();
        let sum_now = self.source.0.sum.load(Ordering::Relaxed);
        // Count from the bucket deltas themselves, so the rank walk below
        // is internally consistent even if a concurrent `record` has
        // bumped the shared `count` but not yet its bucket.
        let delta: Vec<u64> = now
            .iter()
            .zip(self.prev.iter())
            .map(|(n, p)| n.saturating_sub(*p))
            .collect();
        let count: u64 = delta.iter().sum();
        let sum = sum_now.saturating_sub(self.prev_sum);
        let max = self.source.0.max.load(Ordering::Relaxed);
        let q = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, b) in delta.iter().enumerate() {
                seen += b;
                if seen >= rank {
                    return bucket_upper(i).min(max);
                }
            }
            max
        };
        let snap = WindowSnapshot {
            count,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
        };
        self.prev = now;
        self.prev_sum = sum_now;
        snap
    }

    /// Discards anything recorded so far without producing a snapshot:
    /// the next `sample` starts fresh from this instant. Used after a
    /// migration so the new placement's window never mixes with the old
    /// regime's tail.
    pub fn reset(&mut self) {
        self.prev = self.source.bucket_counts();
        self.prev_sum = self.source.0.sum.load(Ordering::Relaxed);
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A cheap-to-clone handle to a metrics registry.
///
/// `counter`/`gauge`/`histogram` get-or-create by name under a mutex;
/// the returned handles are lock-free. Two clones of the same
/// `MetricsHandle` share the same instruments.
#[derive(Clone, Default)]
pub struct MetricsHandle {
    registry: Arc<Registry>,
}

impl MetricsHandle {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsHandle::default()
    }

    /// Gets or creates the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.registry.counters.lock();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.registry.gauges.lock();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.registry.histograms.lock();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Renders every instrument as a `/metrics`-style text dump:
    /// `name value` lines for counters and gauges, and
    /// `name_count` / `name_sum` / `name_p50|p95|p99` lines for
    /// histograms, sorted by name.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.registry.counters.lock().iter() {
            let _ = writeln!(out, "{name} {}", c.get());
        }
        for (name, g) in self.registry.gauges.lock().iter() {
            let _ = writeln!(out, "{name} {}", g.get());
        }
        for (name, h) in self.registry.histograms.lock().iter() {
            let s = h.snapshot();
            let _ = writeln!(out, "{name}_count {}", s.count);
            let _ = writeln!(out, "{name}_sum {}", s.sum);
            let _ = writeln!(out, "{name}_min {}", s.min);
            let _ = writeln!(out, "{name}_max {}", s.max);
            let _ = writeln!(out, "{name}_p50 {}", s.p50);
            let _ = writeln!(out, "{name}_p95 {}", s.p95);
            let _ = writeln!(out, "{name}_p99 {}", s.p99);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let m = MetricsHandle::new();
        let c = m.counter("calls");
        c.inc();
        c.add(4);
        assert_eq!(m.counter("calls").get(), 5);
        let g = m.gauge("inflight");
        g.set(7);
        g.add(-3);
        assert_eq!(m.gauge("inflight").get(), 4);
    }

    #[test]
    fn clones_share_instruments() {
        let m = MetricsHandle::new();
        let m2 = m.clone();
        m.counter("x").inc();
        m2.counter("x").inc();
        assert_eq!(m.counter("x").get(), 2);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.p99, 0);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let h = Histogram::new();
        h.record(100);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 100);
        assert_eq!(s.max, 100);
        // Clamped to max, so a single sample is exact at every quantile.
        assert_eq!(s.p50, 100);
        assert_eq!(s.p99, 100);
    }

    #[test]
    fn window_tracks_regime_changes() {
        let h = Histogram::new();
        let mut w = HistogramWindow::new(h.clone());
        for _ in 0..100 {
            h.record(100);
        }
        let fast = w.sample();
        assert_eq!(fast.count, 100);
        assert!(fast.p95 <= 128, "fast regime p95: {}", fast.p95);
        for _ in 0..100 {
            h.record(50_000);
        }
        let slow = w.sample();
        assert_eq!(slow.count, 100);
        assert!(
            slow.p95 >= 32_768,
            "window p95 must see only the slow regime, got {}",
            slow.p95
        );
        // Cumulative p95 would still be dragged down by the fast half.
        assert!(h.quantile(0.95) >= 32_768);
        w.reset();
        assert_eq!(w.sample().count, 0, "reset discards unsampled values");
    }

    #[test]
    fn empty_window_is_zeroed() {
        let h = Histogram::new();
        let mut w = HistogramWindow::new(h);
        let s = w.sample();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p99, 0);
    }

    #[test]
    fn render_text_lists_everything() {
        let m = MetricsHandle::new();
        m.counter("a.calls").add(3);
        m.gauge("a.depth").set(-2);
        m.histogram("a.rtt_us").record(10);
        let text = m.render_text();
        assert!(text.contains("a.calls 3"));
        assert!(text.contains("a.depth -2"));
        assert!(text.contains("a.rtt_us_count 1"));
        assert!(text.contains("a.rtt_us_p50 "));
    }
}
