//! Concurrency hammer: 8 threads pounding the same named instruments
//! through independent `MetricsHandle` clones must lose nothing — every
//! increment, every histogram sample, every gauge delta accounted for.

use std::sync::Arc;

use alfredo_obs::MetricsHandle;

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 50_000;

#[test]
fn eight_threads_lose_no_increments() {
    let metrics = MetricsHandle::new();
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            // Each thread resolves its instruments by name through its own
            // clone — the get-or-create path must converge on the same
            // underlying atomics.
            let handle = metrics.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let calls = handle.counter("hammer.calls");
                let inflight = handle.gauge("hammer.inflight");
                let latency = handle.histogram("hammer.latency_us");
                barrier.wait();
                for i in 0..OPS_PER_THREAD {
                    calls.inc();
                    inflight.add(1);
                    latency.record(t as u64 * OPS_PER_THREAD + i);
                    inflight.add(-1);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("hammer thread");
    }

    let total = THREADS as u64 * OPS_PER_THREAD;
    assert_eq!(metrics.counter("hammer.calls").get(), total);
    assert_eq!(metrics.gauge("hammer.inflight").get(), 0);

    let h = metrics.histogram("hammer.latency_us");
    assert_eq!(h.count(), total);
    // The samples were 0..total, each exactly once: min, max, and the
    // per-bucket sum must all agree.
    let snap = h.snapshot();
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, total - 1);
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), total);
    // Sum of 0..total is total*(total-1)/2 — wrap-free for these sizes.
    assert_eq!(snap.sum, total * (total - 1) / 2);
}

#[test]
fn concurrent_registration_converges() {
    // Threads racing to *create* instruments (not just use them) must
    // still end up sharing one instance per name.
    let metrics = MetricsHandle::new();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let handle = metrics.clone();
            std::thread::spawn(move || {
                for i in 0..100 {
                    handle.counter(&format!("race.{}", i % 10)).inc();
                    let _ = t;
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("registration thread");
    }
    let mut total = 0;
    for i in 0..10 {
        total += metrics.counter(&format!("race.{i}")).get();
    }
    assert_eq!(total, THREADS as u64 * 100);
}
