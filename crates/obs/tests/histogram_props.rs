//! Property tests pinning the histogram's accuracy contract against an
//! exact nearest-rank reference: for every workload and every quantile,
//! `exact <= estimate <= 2 * exact` (and `estimate <= observed max`),
//! with the degenerate cases — zeros, bucket boundaries, saturation —
//! exercised explicitly. Seeded [`SimRng`] keeps every run reproducible.

use alfredo_obs::Histogram;
use alfredo_sim::SimRng;

/// Exact nearest-rank quantile (1-based rank `ceil(q * n)`), the same
/// rank definition the histogram approximates bucket-wise.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Feeds `values` into a fresh histogram and checks the accuracy
/// contract at a spread of quantiles.
fn assert_contract(label: &str, values: &[u64]) {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    assert_eq!(h.count(), values.len() as u64, "{label}: count");

    for &q in &[0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0] {
        let exact = exact_quantile(&sorted, q);
        let est = h.quantile(q);
        assert!(
            est >= exact,
            "{label}: q={q} estimate {est} below exact {exact}"
        );
        let bound = if exact == 0 { 0 } else { 2 * exact };
        assert!(
            est <= bound.max(exact),
            "{label}: q={q} estimate {est} above 2x exact {exact}"
        );
        assert!(
            est <= *sorted.last().unwrap(),
            "{label}: q={q} estimate {est} above observed max"
        );
    }

    let snap = h.snapshot();
    assert_eq!(snap.min, sorted[0], "{label}: min");
    assert_eq!(snap.max, *sorted.last().unwrap(), "{label}: max");
    assert_eq!(
        snap.sum,
        sorted.iter().copied().fold(0u64, u64::wrapping_add),
        "{label}: sum"
    );
}

#[test]
fn uniform_workloads_meet_the_contract() {
    for seed in [1u64, 7, 42, 1979] {
        let mut rng = SimRng::seed_from(seed);
        let values: Vec<u64> = (0..5_000).map(|_| rng.next_below(1_000_000)).collect();
        assert_contract(&format!("uniform seed={seed}"), &values);
    }
}

#[test]
fn exponential_workloads_meet_the_contract() {
    // Latency-shaped: most samples small, a long tail — the distribution
    // the rtt/serve histograms actually see.
    for seed in [3u64, 1234] {
        let mut rng = SimRng::seed_from(seed);
        let values: Vec<u64> = (0..5_000)
            .map(|_| rng.exponential(250.0).min(1e15) as u64)
            .collect();
        assert_contract(&format!("exponential seed={seed}"), &values);
    }
}

#[test]
fn constant_workload_is_exact() {
    let h = Histogram::new();
    for _ in 0..1_000 {
        h.record(777);
    }
    // Every quantile clamps to the observed max, which *is* the value.
    for &q in &[0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 777);
    }
}

#[test]
fn zeros_and_small_values_stay_exact() {
    assert_contract("all zeros", &vec![0u64; 100]);
    assert_contract("zero and one", &[0, 0, 0, 1, 1]);
    // 0 and 1 occupy dedicated buckets, so estimates are exact.
    let h = Histogram::new();
    for v in [0u64, 0, 0, 1, 1] {
        h.record(v);
    }
    assert_eq!(h.quantile(0.5), 0);
    assert_eq!(h.quantile(1.0), 1);
}

#[test]
fn bucket_boundaries_round_trip() {
    // Powers of two land on bucket edges — the classic off-by-one spot.
    // Each 2^k is its bucket's smallest member, each 2^k - 1 the largest.
    let mut values = Vec::new();
    for k in 0..40u32 {
        values.push(1u64 << k);
        values.push((1u64 << k) - 1);
        values.push((1u64 << k) + 1);
    }
    assert_contract("bucket boundaries", &values);
}

#[test]
fn saturation_bucket_absorbs_the_top_end() {
    let h = Histogram::new();
    // All beyond the last finite bucket bound (2^38).
    let huge = [1u64 << 38, 1 << 45, 1 << 60, u64::MAX];
    for &v in &huge {
        h.record(v);
    }
    // The saturation bucket's upper bound is u64::MAX, clamped to the
    // observed max — so the top quantile is exact even up here.
    assert_eq!(h.quantile(1.0), u64::MAX);
    assert_eq!(h.snapshot().max, u64::MAX);
    assert_eq!(h.count(), huge.len() as u64);
    // And everything landed in one bucket: the last one.
    let counts = h.bucket_counts();
    assert_eq!(*counts.last().unwrap(), huge.len() as u64);
    assert_eq!(counts.iter().sum::<u64>(), huge.len() as u64);
}

#[test]
fn mixed_magnitudes_meet_the_contract() {
    let mut rng = SimRng::seed_from(99);
    let mut values = Vec::new();
    for _ in 0..2_000 {
        // Spread samples across ~12 orders of magnitude.
        let magnitude = rng.next_below(40);
        values.push(rng.next_below((1u64 << magnitude).max(2)));
    }
    assert_contract("mixed magnitudes", &values);
}
