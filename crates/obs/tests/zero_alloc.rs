//! Zero-cost-when-disabled, enforced with a counting allocator: with
//! tracing disabled and no event subscribers, the hot-path operations —
//! span creation, field setting, counter/gauge/histogram updates, event
//! emission — must perform no heap allocation at all.
//!
//! Everything lives in ONE test function: the counting allocator is
//! process-global, and a second test running concurrently would bleed
//! its allocations into the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn disabled_observability_does_not_allocate() {
    // Set-up phase (allowed to allocate): instruments registered once,
    // handles kept, exactly as the endpoint does at establish time.
    let obs = alfredo_obs::Obs::disabled();
    let metrics = obs.metrics().clone();
    let counter = metrics.counter("fastpath.calls");
    let gauge = metrics.gauge("fastpath.inflight");
    let histogram = metrics.histogram("fastpath.rtt_us");
    assert!(!obs.enabled());

    // Three measured windows, best taken: the runtime occasionally
    // allocates a couple of times from outside the test (harness wait
    // loop, lazy std state), and one stray hit must not fail the guard.
    // A real disabled-path allocation recurs every iteration — all three
    // windows would see thousands, and the min stays loud.
    let mut window_allocs = [u64::MAX; 3];
    for window in &mut window_allocs {
        *window = measured_window(&obs, &counter, &gauge, &histogram);
    }
    let best = *window_allocs.iter().min().unwrap();
    assert_eq!(
        best, 0,
        "disabled-path ops allocated in every window: {window_allocs:?}"
    );
    // The work still happened where it should have.
    assert_eq!(counter.get(), 30_000);
    assert_eq!(histogram.count(), 30_000);
    assert_eq!(gauge.get(), 0);
}

fn measured_window(
    obs: &alfredo_obs::Obs,
    counter: &alfredo_obs::Counter,
    gauge: &alfredo_obs::Gauge,
    histogram: &alfredo_obs::Histogram,
) -> u64 {
    let before = allocations();
    for i in 0..10_000u64 {
        // Disabled spans: the name/field closures must never run — each
        // would allocate (and the assert below would catch it).
        let mut span = obs.span_dyn(|| format!("rpc:{i}"));
        span.set_with("interface", || "x".repeat(64));
        let _guard = span.enter();
        let mut child = obs.child_dyn(span.ctx(), || format!("serve:{i}"));
        child.set_with("outcome", || "ok".to_owned());
        drop(child);
        drop(_guard);
        drop(span);

        // Metrics: relaxed atomics only.
        counter.inc();
        gauge.add(1);
        histogram.record(i);
        gauge.add(-1);

        // Events with nobody subscribed: the field closure must not run.
        assert!(!alfredo_obs::events_enabled());
        alfredo_obs::event("fastpath", "tick", || {
            vec![("i".to_string(), i.to_string())]
        });
    }
    allocations() - before
}
