//! Reading a journal directory back: snapshot + log tail.

use std::fs;
use std::path::Path;

use crate::journal::{LOG_FILE, SNAPSHOT_FILE};
use crate::record::JournalRecord;
use crate::JournalError;

/// The persisted state document a journal was snapshotted with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Watermark: every journaled mutation with `seq <= seq` is reflected
    /// in `state`.
    pub seq: u64,
    /// The raw state JSON handed to `snapshot_at`.
    pub state: String,
}

/// Everything a journal directory holds, ready for replay.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// The latest snapshot, if one was ever taken.
    pub snapshot: Option<Snapshot>,
    /// Log records past the snapshot watermark, in sequence order.
    pub records: Vec<JournalRecord>,
    /// Highest sequence number seen (snapshot watermark or last record).
    pub last_seq: u64,
    /// `true` if the log ended in a torn (partially written) line, which
    /// recovery discards — the record never became durable.
    pub torn_tail: bool,
    /// Byte length of the valid prefix of the log file: everything up to
    /// and including the last complete (newline-terminated) line. When
    /// `torn_tail` is set, bytes past this offset are the torn write and
    /// must be truncated before appending — otherwise the next record
    /// concatenates onto the partial line and corrupts the log for good.
    pub log_valid_len: u64,
}

/// Reads a journal directory back. Missing files are not errors — an
/// empty or absent directory recovers to the empty state.
///
/// # Errors
///
/// Returns [`JournalError::Corrupt`] if a record *before* the final line
/// fails to parse (damage beyond a torn tail), or [`JournalError::Io`] on
/// read failures.
pub fn recover(dir: &Path) -> Result<Recovery, JournalError> {
    let mut out = Recovery::default();

    let snap_path = dir.join(SNAPSHOT_FILE);
    if snap_path.exists() {
        let doc = fs::read_to_string(&snap_path)?;
        out.snapshot = Some(parse_snapshot(doc.trim_end())?);
    }
    let floor = out.snapshot.as_ref().map(|s| s.seq).unwrap_or(0);
    out.last_seq = floor;

    let log_path = dir.join(LOG_FILE);
    if log_path.exists() {
        let raw = fs::read_to_string(&log_path)?;
        let lines: Vec<&str> = raw.split('\n').filter(|l| !l.is_empty()).collect();
        let complete = raw.is_empty() || raw.ends_with('\n');
        // A line without its trailing newline never finished writing. It is
        // torn *by definition* — even if it happens to parse (the cut can
        // land exactly after the payload's closing brace), its payload may
        // be silently truncated, so it is discarded without parsing.
        out.log_valid_len = if complete {
            raw.len() as u64
        } else {
            out.torn_tail = true;
            raw.rfind('\n').map(|i| i + 1).unwrap_or(0) as u64
        };
        for (i, line) in lines.iter().enumerate() {
            if out.torn_tail && i + 1 == lines.len() {
                break;
            }
            match JournalRecord::parse(line) {
                Ok(r) => {
                    if r.seq > floor {
                        out.records.push(r);
                    }
                }
                Err(e) => {
                    return Err(JournalError::Corrupt {
                        line: i + 1,
                        reason: e.to_string(),
                    });
                }
            }
        }
        // Seqs are assigned under the append lock in push order, so the
        // file is already ordered; sort defensively anyway.
        out.records.sort_by_key(|r| r.seq);
        out.records.dedup_by_key(|r| r.seq);
        if let Some(last) = out.records.last() {
            out.last_seq = out.last_seq.max(last.seq);
        }
    }
    Ok(out)
}

/// Parses `{"seq":N,"state":...}` without touching the state JSON.
fn parse_snapshot(doc: &str) -> Result<Snapshot, JournalError> {
    let corrupt = |reason: &str| JournalError::Corrupt {
        line: 1,
        reason: format!("snapshot: {reason}"),
    };
    let body = doc
        .strip_prefix("{\"seq\":")
        .ok_or_else(|| corrupt("missing seq header"))?;
    let digits = body.bytes().take_while(u8::is_ascii_digit).count();
    if digits == 0 {
        return Err(corrupt("missing watermark"));
    }
    let seq = body[..digits]
        .parse()
        .map_err(|_| corrupt("watermark out of range"))?;
    let state = body[digits..]
        .strip_prefix(",\"state\":")
        .and_then(|rest| rest.strip_suffix('}'))
        .ok_or_else(|| corrupt("missing state body"))?;
    Ok(Snapshot {
        seq,
        state: state.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Journal, JournalConfig};
    use std::io::Write as _;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "alfredo-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn empty_directory_recovers_to_empty_state() {
        let dir = temp_dir("empty");
        let r = recover(&dir).unwrap();
        assert!(r.snapshot.is_none());
        assert!(r.records.is_empty());
        assert_eq!(r.last_seq, 0);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let dir = temp_dir("torn");
        let j = Journal::open(JournalConfig::new(&dir)).unwrap();
        j.append("s", "a", "1");
        j.append("s", "b", "2");
        j.barrier().unwrap();
        j.close().unwrap();
        drop(j);
        // Simulate a crash mid-write: append half a record, no newline.
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(dir.join(LOG_FILE))
            .unwrap();
        f.write_all(b"{\"seq\":3,\"ts\":3,\"str").unwrap();
        drop(f);

        let r = recover(&dir).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.last_seq, 2);
        let valid = fs::read_to_string(dir.join(LOG_FILE))
            .unwrap()
            .rfind('\n')
            .unwrap() as u64
            + 1;
        assert_eq!(r.log_valid_len, valid);

        // Re-opening repairs the torn bytes and resumes numbering after
        // the surviving records; the post-restart append must start a
        // fresh line, so a *second* recovery still succeeds.
        let j = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(j.append("s", "c", "3"), 3);
        j.barrier().unwrap();
        j.close().unwrap();
        drop(j);
        let r = recover(&dir).expect("log must stay recoverable after a post-crash append");
        assert!(!r.torn_tail);
        let seqs: Vec<u64> = r.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_cut_at_payloads_closing_brace_is_torn_not_corrupt() {
        // The nastiest tear: the cut lands exactly after the payload's own
        // closing brace, one byte short of the envelope's final `}`. The
        // line must be treated as torn (no trailing newline), never kept
        // as a record with a silently truncated payload.
        let dir = temp_dir("torn-brace");
        let j = Journal::open(JournalConfig::new(&dir)).unwrap();
        j.append("data", "put", "{\"k\":{\"v\":1}}");
        j.barrier().unwrap();
        j.close().unwrap();
        drop(j);
        let full = fs::read_to_string(dir.join(LOG_FILE)).unwrap();
        // Drop the final "}\n": the last surviving byte is the payload's brace.
        fs::write(dir.join(LOG_FILE), &full[..full.len() - 2]).unwrap();

        let r = recover(&dir).unwrap();
        assert!(r.torn_tail);
        assert!(r.records.is_empty(), "truncated payload must not survive");
        assert_eq!(r.last_seq, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_middle_line_is_an_error() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(LOG_FILE),
            "{\"seq\":1,\"ts\":1,\"stream\":\"s\",\"event\":\"e\",\"payload\":1}\nGARBAGE\n{\"seq\":3,\"ts\":3,\"stream\":\"s\",\"event\":\"e\",\"payload\":3}\n",
        )
        .unwrap();
        match recover(&dir) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected corruption error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_round_trips_and_filters_the_log() {
        let dir = temp_dir("snap");
        let j = Journal::open(JournalConfig::new(&dir)).unwrap();
        for i in 1..=10u64 {
            j.append("data", "put", &format!("{{\"k\":{i}}}"));
        }
        let w = j.barrier().unwrap();
        assert_eq!(w, 10);
        j.snapshot_at(7, "{\"upto\":7}").unwrap();
        let r = recover(&dir).unwrap();
        let snap = r.snapshot.expect("snapshot present");
        assert_eq!(snap.seq, 7);
        assert_eq!(snap.state, "{\"upto\":7}");
        let seqs: Vec<u64> = r.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![8, 9, 10], "rotation keeps only the tail");
        assert_eq!(r.last_seq, 10);
        drop(j);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_resumes_sequencing_after_snapshot() {
        let dir = temp_dir("resume");
        {
            let j = Journal::open(JournalConfig::new(&dir)).unwrap();
            for i in 1..=5u64 {
                j.append("s", "e", &i.to_string());
            }
            j.barrier().unwrap();
            j.snapshot_at(5, "\"all\"").unwrap();
            j.close().unwrap();
        }
        let j = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(
            j.append("s", "e", "6"),
            6,
            "snapshot watermark advances seq"
        );
        drop(j);
        fs::remove_dir_all(&dir).unwrap();
    }
}
