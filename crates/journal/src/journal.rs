//! The journal proper: pooled-buffer appends, a group-commit committer
//! thread, durable watermark tracking, and snapshot/rotate.

use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::record::encode_line;
use crate::recover::recover;
use crate::JournalError;

/// Name of the live log file inside a journal directory.
pub(crate) const LOG_FILE: &str = "log.jsonl";
/// Name of the snapshot file inside a journal directory.
pub(crate) const SNAPSHOT_FILE: &str = "snapshot.json";

/// When the committer calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// One `fsync` per commit batch — the durability contract callers
    /// should run in production.
    #[default]
    Batch,
    /// Never fsync; writes still reach the OS. For deterministic-replay
    /// artifacts and benchmarks where the file only needs to survive the
    /// *process*, not the machine.
    Never,
}

/// Where record timestamps come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JournalClock {
    /// Wall-clock microseconds since the Unix epoch, sampled at
    /// commit-batch granularity: the record that starts a batch reads the
    /// clock, and records that join the same batch reuse its value.
    /// Ordering is always by `seq`; `ts` is advisory.
    #[default]
    Wall,
    /// The record's own sequence number. Runs of the same event sequence
    /// then produce byte-identical journals — the chaos-replay contract.
    Logical,
}

/// Configuration for [`Journal::open`].
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding the log and snapshot; created if missing.
    pub dir: PathBuf,
    /// Durability policy for commit batches.
    pub fsync: FsyncPolicy,
    /// Timestamp source for records.
    pub clock: JournalClock,
    /// Snapshot cadence hint for wiring layers (mutations between
    /// snapshots); `0` disables. The journal itself never snapshots
    /// spontaneously — state capture belongs to the owner of the state.
    pub snapshot_every: u64,
    /// Maximum number of encoded-line buffers kept for reuse.
    pub pool_buffers: usize,
    /// How long the committer lingers after the first record of a batch
    /// before writing, letting a slow producer accumulate a real group
    /// commit instead of one write (and fsync) per record. Also bounds
    /// how often the committer wakes at all — on small machines a
    /// per-record wakeup steals more CPU from the producer than the
    /// write itself. Costs at most this much extra latency on
    /// [`Journal::barrier`] / [`Journal::append_wait`].
    pub commit_window: Duration,
}

impl JournalConfig {
    /// A production-leaning default: batch fsync, wall clock, 1024 pooled
    /// buffers (enough to cover a deep commit backlog), no snapshot
    /// cadence, 5ms commit window. Durability latency is the barrier's
    /// concern — appenders never wait — so the window is tuned for
    /// throughput, not ack latency.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Batch,
            clock: JournalClock::Wall,
            snapshot_every: 0,
            pool_buffers: 1024,
            commit_window: Duration::from_millis(5),
        }
    }

    /// Switches to the logical clock (`ts == seq`) for bit-exact artifacts.
    pub fn logical_clock(mut self) -> Self {
        self.clock = JournalClock::Logical;
        self
    }

    /// Disables fsync (process-crash durability only).
    pub fn without_fsync(mut self) -> Self {
        self.fsync = FsyncPolicy::Never;
        self
    }

    /// Sets the snapshot cadence hint.
    pub fn with_snapshot_every(mut self, mutations: u64) -> Self {
        self.snapshot_every = mutations;
        self
    }

    /// Sets the group-commit accumulation window (`ZERO` = commit as soon
    /// as anything is pending).
    pub fn with_commit_window(mut self, window: Duration) -> Self {
        self.commit_window = window;
        self
    }
}

/// Counters describing a journal's activity so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records accepted by `append*`.
    pub appends: u64,
    /// Records refused because the committer had already failed.
    pub dropped: u64,
    /// Records written to the log file.
    pub committed: u64,
    /// Commit batches written (each is one `write`, and one `fsync` under
    /// [`FsyncPolicy::Batch`]).
    pub batches: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Bytes appended to the log file.
    pub bytes_written: u64,
    /// Largest single commit batch, in records.
    pub max_batch: u64,
    /// Appends that had to allocate because the buffer pool was empty.
    pub pool_misses: u64,
    /// Snapshots persisted.
    pub snapshots: u64,
}

struct Queue {
    /// Lines awaiting commit, in seq order (seq is assigned under this lock).
    pending: Vec<(u64, String)>,
    /// Recycled line buffers.
    pool: Vec<String>,
    next_seq: u64,
}

struct Durable {
    seq: u64,
    /// Set when the committer dies; waiting forever on a dead committer
    /// would turn an I/O error into a hang.
    error: Option<String>,
}

struct Inner {
    fsync: FsyncPolicy,
    clock: JournalClock,
    pool_buffers: usize,
    snapshot_every: u64,
    commit_window: Duration,
    dir: PathBuf,
    queue: Mutex<Queue>,
    doorbell: Condvar,
    durable: Mutex<Durable>,
    durable_cv: Condvar,
    /// Mirrors `Durable::error.is_some()` so the append fast path can
    /// check for a dead committer without touching the durable lock.
    committer_failed: AtomicBool,
    /// Wall-clock microseconds sampled by the append that starts a batch;
    /// later appends in the same batch reuse it instead of reading the
    /// clock (see [`JournalClock::Wall`]).
    wall_cache: AtomicU64,
    /// Guards the log file handle; `snapshot_at` holds it across the
    /// snapshot write and log rotation so no batch interleaves.
    file: Mutex<File>,
    shutdown: AtomicBool,
    /// Live `Journal` handles (clones). Maintained explicitly rather than
    /// inferred from `Arc::strong_count`, which is racy: two clones dropped
    /// concurrently could each observe a stale count and neither would
    /// close, leaking the committer thread.
    live_clones: AtomicUsize,
    last_seq: AtomicU64,
    appends: AtomicU64,
    dropped: AtomicU64,
    committed: AtomicU64,
    batches: AtomicU64,
    fsyncs: AtomicU64,
    bytes_written: AtomicU64,
    max_batch: AtomicU64,
    pool_misses: AtomicU64,
    snapshots: AtomicU64,
}

/// A durable, append-only event log. Cheap to clone; clones share the
/// same log and committer.
pub struct Journal {
    inner: Arc<Inner>,
    committer: Arc<Mutex<Option<JoinHandle<()>>>>,
}

impl Clone for Journal {
    fn clone(&self) -> Self {
        self.inner.live_clones.fetch_add(1, Ordering::Relaxed);
        Journal {
            inner: Arc::clone(&self.inner),
            committer: Arc::clone(&self.committer),
        }
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("dir", &self.inner.dir)
            .field("last_seq", &self.last_seq())
            .field("durable_seq", &self.durable_seq())
            .finish()
    }
}

impl Journal {
    /// Opens (or creates) the journal in `cfg.dir`, resuming sequence
    /// numbering after whatever the directory already holds.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created, the existing log is
    /// corrupt beyond a torn tail, or the log file cannot be opened.
    pub fn open(cfg: JournalConfig) -> Result<Journal, JournalError> {
        fs::create_dir_all(&cfg.dir)?;
        let existing = recover(&cfg.dir)?;
        let log_path = cfg.dir.join(LOG_FILE);
        if existing.torn_tail {
            // Repair before appending: truncate the torn bytes so the next
            // batch starts on a fresh line. Appending after a partial line
            // would weld the two into one unparseable record and turn a
            // recoverable crash into permanent corruption on the *next*
            // recovery.
            let repair = OpenOptions::new().write(true).open(&log_path)?;
            repair.set_len(existing.log_valid_len)?;
            if cfg.fsync == FsyncPolicy::Batch {
                repair.sync_data()?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)?;
        let inner = Arc::new(Inner {
            fsync: cfg.fsync,
            clock: cfg.clock,
            pool_buffers: cfg.pool_buffers,
            snapshot_every: cfg.snapshot_every,
            commit_window: cfg.commit_window,
            dir: cfg.dir,
            queue: Mutex::new(Queue {
                pending: Vec::new(),
                pool: Vec::new(),
                next_seq: existing.last_seq + 1,
            }),
            doorbell: Condvar::new(),
            durable: Mutex::new(Durable {
                seq: existing.last_seq,
                error: None,
            }),
            durable_cv: Condvar::new(),
            committer_failed: AtomicBool::new(false),
            wall_cache: AtomicU64::new(0),
            file: Mutex::new(file),
            shutdown: AtomicBool::new(false),
            live_clones: AtomicUsize::new(1),
            last_seq: AtomicU64::new(existing.last_seq),
            appends: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
        });
        let committer = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("journal-committer".into())
                .spawn(move || committer_loop(&inner))
                .map_err(JournalError::Io)?
        };
        Ok(Journal {
            inner,
            committer: Arc::new(Mutex::new(Some(committer))),
        })
    }

    /// Appends one record with a pre-encoded JSON payload. Returns the
    /// assigned sequence number, or `0` if the record was dropped because
    /// the committer has failed or the journal is shut down.
    ///
    /// This is the fast path: one short lock, one formatted write into a
    /// pooled buffer, no file I/O.
    pub fn append(&self, stream: &str, event: &str, payload: &str) -> u64 {
        self.append_with(stream, event, |out| out.push_str(payload))
    }

    /// Appends one record, letting `fill` format the JSON payload directly
    /// into a pooled scratch buffer — no intermediate allocation.
    pub fn append_with(&self, stream: &str, event: &str, fill: impl FnOnce(&mut String)) -> u64 {
        if self.inner.shutdown.load(Ordering::Acquire)
            || self.inner.committer_failed.load(Ordering::Acquire)
        {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return 0;
        }
        // Format the payload outside the queue lock, into a thread-local
        // scratch (payloads never cross threads, so no pooling needed).
        let (seq, was_empty) = PAYLOAD_SCRATCH.with(|scratch| {
            let mut payload = scratch.borrow_mut();
            payload.clear();
            fill(&mut payload);
            let mut q = self.inner.queue.lock().expect("journal queue poisoned");
            let seq = q.next_seq;
            q.next_seq += 1;
            let was_empty = q.pending.is_empty();
            let ts = match self.inner.clock {
                JournalClock::Logical => seq,
                // Batch leaders read the clock; followers reuse it — one
                // clock syscall per commit batch, not per record.
                JournalClock::Wall if was_empty => {
                    let now = wall_micros();
                    self.inner.wall_cache.store(now, Ordering::Relaxed);
                    now
                }
                JournalClock::Wall => self.inner.wall_cache.load(Ordering::Relaxed),
            };
            let mut line = match q.pool.pop() {
                Some(buf) => buf,
                None => {
                    self.inner.pool_misses.fetch_add(1, Ordering::Relaxed);
                    String::with_capacity(96 + payload.len())
                }
            };
            encode_line(&mut line, seq, ts, stream, event, &payload);
            q.pending.push((seq, line));
            (seq, was_empty)
        });
        // fetch_max, not store: the queue lock is already released, so two
        // appenders can reach this line out of seq order. A plain store
        // could regress the watermark and let `barrier()` return before the
        // caller's own record is durable.
        self.inner.last_seq.fetch_max(seq, Ordering::AcqRel);
        self.inner.appends.fetch_add(1, Ordering::Relaxed);
        // The committer only ever sleeps on the doorbell when the queue is
        // empty, so only the empty->non-empty transition needs to ring it.
        // Skipping the rest keeps a futex syscall off the hot path.
        if was_empty {
            self.inner.doorbell.notify_one();
        }
        seq
    }

    /// Appends and blocks until the record is durable.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::CommitterFailed`] if the committer died.
    pub fn append_wait(
        &self,
        stream: &str,
        event: &str,
        payload: &str,
    ) -> Result<u64, JournalError> {
        let seq = self.append(stream, event, payload);
        if seq == 0 {
            return Err(self.failure_error());
        }
        self.wait_durable(seq)?;
        Ok(seq)
    }

    /// Blocks until every record with sequence number `<= seq` is on disk.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::CommitterFailed`] if the committer died
    /// before reaching `seq`.
    pub fn wait_durable(&self, seq: u64) -> Result<u64, JournalError> {
        let mut d = self.inner.durable.lock().expect("journal durable poisoned");
        loop {
            if d.seq >= seq {
                return Ok(d.seq);
            }
            if let Some(e) = &d.error {
                return Err(JournalError::CommitterFailed(e.clone()));
            }
            d = self
                .inner
                .durable_cv
                .wait(d)
                .expect("journal durable poisoned");
        }
    }

    /// Blocks until everything appended so far is on disk and returns the
    /// durable watermark.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::CommitterFailed`] if the committer died.
    pub fn barrier(&self) -> Result<u64, JournalError> {
        self.wait_durable(self.last_seq())
    }

    /// Highest sequence number handed out so far (durable or not).
    pub fn last_seq(&self) -> u64 {
        self.inner.last_seq.load(Ordering::Acquire)
    }

    /// Highest sequence number known to be on disk.
    pub fn durable_seq(&self) -> u64 {
        self.inner
            .durable
            .lock()
            .expect("journal durable poisoned")
            .seq
    }

    /// The snapshot cadence hint this journal was opened with.
    pub fn snapshot_every(&self) -> u64 {
        self.inner.snapshot_every
    }

    /// Persists `state_json` as the snapshot at `watermark` and rewrites
    /// the log to retain only records beyond it.
    ///
    /// The caller owns the consistency contract: `state_json` must reflect
    /// **every** mutation journaled with `seq <= watermark` (and may
    /// include later ones — replay is idempotent as long as appliers guard
    /// on their own versions). Records with `seq > watermark` survive
    /// rotation verbatim.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or if the committer cannot reach `watermark`.
    pub fn snapshot_at(&self, watermark: u64, state_json: &str) -> Result<(), JournalError> {
        self.wait_durable(watermark)?;
        // Freeze the log: the committer blocks on this lock, so the file
        // cannot grow while we snapshot and rotate.
        let mut file = self.inner.file.lock().expect("journal file poisoned");
        let snap_path = self.inner.dir.join(SNAPSHOT_FILE);
        let tmp_path = self.inner.dir.join("snapshot.json.tmp");
        {
            let mut doc = String::with_capacity(32 + state_json.len());
            doc.push_str("{\"seq\":");
            doc.push_str(&watermark.to_string());
            doc.push_str(",\"state\":");
            doc.push_str(state_json);
            doc.push_str("}\n");
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(doc.as_bytes())?;
            if self.inner.fsync == FsyncPolicy::Batch {
                tmp.sync_data()?;
            }
        }
        fs::rename(&tmp_path, &snap_path)?;

        // Rotate: rewrite the log keeping only records past the watermark.
        let log_path = self.inner.dir.join(LOG_FILE);
        let log_tmp = self.inner.dir.join("log.jsonl.tmp");
        let old = fs::read_to_string(&log_path)?;
        {
            let mut tmp = File::create(&log_tmp)?;
            let mut keep = String::new();
            for line in old.lines() {
                if let Ok(r) = crate::JournalRecord::parse(line) {
                    if r.seq > watermark {
                        keep.push_str(line);
                        keep.push('\n');
                    }
                }
            }
            tmp.write_all(keep.as_bytes())?;
            if self.inner.fsync == FsyncPolicy::Batch {
                tmp.sync_data()?;
            }
        }
        fs::rename(&log_tmp, &log_path)?;
        *file = OpenOptions::new().append(true).open(&log_path)?;
        if self.inner.fsync == FsyncPolicy::Batch {
            // Make the renames themselves durable.
            if let Ok(d) = File::open(&self.inner.dir) {
                let _ = d.sync_all();
            }
        }
        self.inner.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Current activity counters.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            appends: self.inner.appends.load(Ordering::Relaxed),
            dropped: self.inner.dropped.load(Ordering::Relaxed),
            committed: self.inner.committed.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            fsyncs: self.inner.fsyncs.load(Ordering::Relaxed),
            bytes_written: self.inner.bytes_written.load(Ordering::Relaxed),
            max_batch: self.inner.max_batch.load(Ordering::Relaxed),
            pool_misses: self.inner.pool_misses.load(Ordering::Relaxed),
            snapshots: self.inner.snapshots.load(Ordering::Relaxed),
        }
    }

    /// The directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Flushes outstanding records and stops the committer. Called
    /// automatically when the last clone drops; explicit calls get the
    /// flush error, if any.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::CommitterFailed`] if the committer had
    /// already died on an I/O error.
    pub fn close(&self) -> Result<(), JournalError> {
        let flush = self.barrier().map(|_| ());
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.doorbell.notify_all();
        if let Some(handle) = self
            .committer
            .lock()
            .expect("journal committer poisoned")
            .take()
        {
            let _ = handle.join();
        }
        flush
    }

    fn failure_error(&self) -> JournalError {
        let d = self.inner.durable.lock().expect("journal durable poisoned");
        JournalError::CommitterFailed(
            d.error
                .clone()
                .unwrap_or_else(|| "journal shut down".into()),
        )
    }
}

thread_local! {
    static PAYLOAD_SCRATCH: std::cell::RefCell<String> =
        std::cell::RefCell::new(String::with_capacity(256));
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Only the last live handle tears the committer down; AcqRel makes
        // every earlier clone's writes visible to whichever drop wins.
        if self.inner.live_clones.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _ = self.close();
        }
    }
}

fn wall_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_micros() as u64
}

fn committer_loop(inner: &Inner) {
    let mut commit_buf: Vec<u8> = Vec::with_capacity(16 * 1024);
    loop {
        {
            let mut q = inner.queue.lock().expect("journal queue poisoned");
            while q.pending.is_empty() && !inner.shutdown.load(Ordering::Acquire) {
                q = inner.doorbell.wait(q).expect("journal queue poisoned");
            }
            if q.pending.is_empty() {
                return; // shutdown with nothing left to flush
            }
        }
        // Group-commit window: linger (lock released) so a producer that
        // appends slower than we can fsync still amortizes the write —
        // and the committer's own wakeups — over a real batch. Skipped on
        // shutdown so `close` drains promptly.
        if !inner.commit_window.is_zero() && !inner.shutdown.load(Ordering::Acquire) {
            std::thread::sleep(inner.commit_window);
        }
        let batch = {
            let mut q = inner.queue.lock().expect("journal queue poisoned");
            std::mem::take(&mut q.pending)
        };

        commit_buf.clear();
        for (_, line) in &batch {
            commit_buf.extend_from_slice(line.as_bytes());
        }
        let last = batch.last().map(|(seq, _)| *seq).unwrap_or(0);
        let result = {
            let mut file = inner.file.lock().expect("journal file poisoned");
            file.write_all(&commit_buf).and_then(|()| {
                if inner.fsync == FsyncPolicy::Batch {
                    inner.fsyncs.fetch_add(1, Ordering::Relaxed);
                    file.sync_data()
                } else {
                    Ok(())
                }
            })
        };

        let mut d = inner.durable.lock().expect("journal durable poisoned");
        match result {
            Ok(()) => {
                d.seq = last;
                inner
                    .committed
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                inner.batches.fetch_add(1, Ordering::Relaxed);
                inner
                    .bytes_written
                    .fetch_add(commit_buf.len() as u64, Ordering::Relaxed);
                inner
                    .max_batch
                    .fetch_max(batch.len() as u64, Ordering::Relaxed);
            }
            Err(e) => {
                d.error = Some(e.to_string());
                inner.committer_failed.store(true, Ordering::Release);
                inner.durable_cv.notify_all();
                return;
            }
        }
        drop(d);
        inner.durable_cv.notify_all();

        // Recycle the line buffers; whatever exceeds the pool cap is
        // dropped after the lock is released, not under it.
        let mut batch = batch.into_iter();
        {
            let mut q = inner.queue.lock().expect("journal queue poisoned");
            while q.pool.len() < inner.pool_buffers {
                match batch.next() {
                    Some((_, mut line)) => {
                        line.clear();
                        q.pool.push(line);
                    }
                    None => break,
                }
            }
        }
        drop(batch);
    }
}
