//! The on-disk record format: one JSONL line per event, fields in fixed
//! order so the envelope parses with a linear scan and re-encodes to the
//! identical bytes.

use std::fmt::Write as _;

/// One journaled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Monotonic sequence number, unique within one journal.
    pub seq: u64,
    /// Timestamp: wall-clock microseconds or the sequence number itself,
    /// depending on the journal's [`JournalClock`](crate::JournalClock).
    pub ts: u64,
    /// Which subsystem wrote the record (`"session"`, `"lease"`, `"data"`).
    pub stream: String,
    /// Event name within the stream (`"put"`, `"grant"`, ...).
    pub event: String,
    /// Caller-supplied JSON, stored verbatim.
    pub payload: String,
}

impl JournalRecord {
    /// Encodes the record as one JSONL line (including the trailing
    /// newline) appended to `out`.
    pub fn encode_into(&self, out: &mut String) {
        encode_line(
            out,
            self.seq,
            self.ts,
            &self.stream,
            &self.event,
            &self.payload,
        );
    }

    /// Encodes the record as one JSONL line.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64 + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Parses one line (with or without the trailing newline).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] if the line does not follow the fixed-order
    /// envelope format.
    pub fn parse(line: &str) -> Result<JournalRecord, ParseError> {
        let mut s = Scanner::new(line.trim_end_matches('\n'));
        s.expect("{\"seq\":")?;
        let seq = s.integer()?;
        s.expect(",\"ts\":")?;
        let ts = s.integer()?;
        s.expect(",\"stream\":\"")?;
        let stream = s.string()?;
        s.expect(",\"event\":\"")?;
        let event = s.string()?;
        s.expect(",\"payload\":")?;
        let payload = s.payload()?;
        Ok(JournalRecord {
            seq,
            ts,
            stream,
            event,
            payload,
        })
    }
}

pub(crate) fn encode_line(
    out: &mut String,
    seq: u64,
    ts: u64,
    stream: &str,
    event: &str,
    payload: &str,
) {
    out.push_str("{\"seq\":");
    let _ = write!(out, "{seq}");
    out.push_str(",\"ts\":");
    let _ = write!(out, "{ts}");
    out.push_str(",\"stream\":\"");
    escape_into(out, stream);
    out.push_str("\",\"event\":\"");
    escape_into(out, event);
    out.push_str("\",\"payload\":");
    out.push_str(payload);
    out.push_str("}\n");
}

/// Escapes a string for embedding in a JSON string literal. Clean spans
/// are bulk-copied; only `"`, `\`, and control bytes trigger per-char
/// work (multi-byte UTF-8 is ≥ 0x80 and never matches, so byte offsets
/// stay on char boundaries).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    let mut start = 0;
    for (i, b) in s.bytes().enumerate() {
        if b == b'"' || b == b'\\' || b < 0x20 {
            out.push_str(&s[start..i]);
            match b {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\r' => out.push_str("\\r"),
                b'\t' => out.push_str("\\t"),
                _ => {
                    let _ = write!(out, "\\u{:04x}", b);
                }
            }
            start = i + 1;
        }
    }
    out.push_str(&s[start..]);
}

/// A record line that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What was expected there.
    pub expected: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Linear scanner over the fixed-order envelope. The payload is whatever
/// sits between `"payload":` and the closing `}` — it is never parsed as
/// JSON, which is what makes round-trips byte-exact.
struct Scanner<'a> {
    rest: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(line: &'a str) -> Self {
        Scanner { rest: line, pos: 0 }
    }

    fn fail(&self, expected: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            expected,
        }
    }

    fn expect(&mut self, lit: &'static str) -> Result<(), ParseError> {
        match self.rest.strip_prefix(lit) {
            Some(rest) => {
                self.rest = rest;
                self.pos += lit.len();
                Ok(())
            }
            None => Err(self.fail(lit)),
        }
    }

    fn integer(&mut self) -> Result<u64, ParseError> {
        let digits = self.rest.bytes().take_while(u8::is_ascii_digit).count();
        if digits == 0 {
            return Err(self.fail("integer"));
        }
        let value = self.rest[..digits]
            .parse()
            .map_err(|_| self.fail("u64 in range"))?;
        self.rest = &self.rest[digits..];
        self.pos += digits;
        Ok(value)
    }

    /// A JSON string body up to (and consuming) the closing quote.
    fn string(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((j, 'u')) => {
                        let hex = self
                            .rest
                            .get(j + 1..j + 5)
                            .ok_or_else(|| self.fail("four hex digits"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.fail("four hex digits"))?;
                        out.push(char::from_u32(code).ok_or_else(|| self.fail("scalar value"))?);
                        // Skip the 4 hex digits the iterator hasn't seen.
                        for _ in 0..4 {
                            chars.next();
                        }
                    }
                    _ => return Err(self.fail("escape sequence")),
                },
                c => out.push(c),
            }
        }
        Err(self.fail("closing quote"))
    }

    /// The raw payload: everything before the record's final `}`.
    ///
    /// The body must be *structurally complete* JSON — balanced braces and
    /// brackets outside strings, every string terminated. Without this
    /// check a line torn exactly after the payload's own closing brace
    /// (one byte short of the envelope's final `}`) would "parse" with a
    /// silently truncated payload instead of failing as torn.
    fn payload(&mut self) -> Result<String, ParseError> {
        match self.rest.strip_suffix('}') {
            Some(body) if !body.is_empty() && payload_is_balanced(body) => Ok(body.to_string()),
            _ => Err(self.fail("complete payload and closing brace")),
        }
    }
}

/// `true` if every `{`/`[` opened outside a string is closed and every
/// string literal is terminated. Does not validate the JSON grammar —
/// only the nesting structure that truncation would break.
fn payload_is_balanced(body: &str) -> bool {
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for b in body.bytes() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_string
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(payload: &str) -> JournalRecord {
        JournalRecord {
            seq: 42,
            ts: 1_700_000_000,
            stream: "data".into(),
            event: "put".into(),
            payload: payload.into(),
        }
    }

    #[test]
    fn round_trip_is_byte_exact() {
        let r = record("{\"key\":\"k\",\"value\":[1,2,{\"nested\":true}]}");
        let line = r.encode();
        let parsed = JournalRecord::parse(&line).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.encode(), line, "re-encode must be bit-exact");
    }

    #[test]
    fn envelope_has_fixed_field_order() {
        let line = record("null").encode();
        assert_eq!(
            line,
            "{\"seq\":42,\"ts\":1700000000,\"stream\":\"data\",\"event\":\"put\",\"payload\":null}\n"
        );
    }

    #[test]
    fn stream_and_event_names_are_escaped() {
        let r = JournalRecord {
            seq: 1,
            ts: 2,
            stream: "we\"ird\\name".into(),
            event: "tab\there".into(),
            payload: "0".into(),
        };
        let line = r.encode();
        let parsed = JournalRecord::parse(&line).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.encode(), line);
    }

    #[test]
    fn control_characters_use_unicode_escapes() {
        let r = JournalRecord {
            seq: 1,
            ts: 1,
            stream: "s\u{1}".into(),
            event: "e".into(),
            payload: "0".into(),
        };
        let line = r.encode();
        assert!(line.contains("\\u0001"), "{line}");
        assert_eq!(JournalRecord::parse(&line).unwrap(), r);
    }

    #[test]
    fn payload_containing_braces_survives() {
        // The payload is delimited by the line's *final* brace, so nested
        // objects and brace-bearing strings pass through untouched.
        let r = record("{\"s\":\"}}{{\",\"o\":{\"x\":{}}}");
        assert_eq!(JournalRecord::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn torn_line_is_rejected() {
        let line = record("{\"key\":1}").encode();
        for cut in [1, line.len() / 2, line.len().saturating_sub(3)] {
            assert!(
                JournalRecord::parse(&line[..cut]).is_err(),
                "truncation at {cut} must not parse"
            );
        }
    }

    #[test]
    fn cut_after_payloads_own_closing_brace_is_rejected() {
        // One byte short of the envelope's final `}`: the last char is the
        // *payload's* closing brace, which used to parse "successfully"
        // with a truncated payload. Same for a payload ending in `]` or a
        // string whose closing quote doubles as the last surviving byte.
        for payload in ["{\"key\":{\"n\":1}}", "[1,[2,3]]", "{\"s\":\"x\"}"] {
            let line = record(payload).encode();
            let cut = &line[..line.len() - 2]; // drop '}' and '\n'
            assert!(
                JournalRecord::parse(cut).is_err(),
                "cut-at-payload-brace must not parse: {cut}"
            );
        }
    }

    #[test]
    fn wrong_field_order_is_rejected() {
        let line = "{\"ts\":1,\"seq\":2,\"stream\":\"s\",\"event\":\"e\",\"payload\":0}";
        assert!(JournalRecord::parse(line).is_err());
    }
}
