//! Durable session journal: an append-only JSONL event log with group
//! commit, periodic snapshots, and crash recovery.
//!
//! The stack's sessions, leases, and data tier live in memory; this crate
//! gives them a durability spine. Writers call [`Journal::append`] (or
//! [`Journal::append_with`] to format the payload straight into a pooled
//! buffer), which encodes one JSONL line and enqueues it — no file I/O, no
//! fsync, and no allocation once the buffer pool is warm, so a journaled
//! mutation path stays within a few hundred nanoseconds of the bare path.
//! A single committer thread drains the queue, writes each batch with one
//! `write` + one `fsync` (*group commit*), and then advances the durable
//! watermark. A record is **acknowledged** only once the watermark passes
//! its sequence number; [`Journal::barrier`] blocks until everything
//! enqueued so far is on disk.
//!
//! Snapshots bound the log: [`Journal::snapshot_at`] persists a caller-
//! provided state document at a sequence watermark and rewrites the log to
//! retain only the records beyond it. [`recover`] reads the snapshot plus
//! the log tail back; replaying the tail over the snapshot reconstructs
//! the pre-crash state.
//!
//! # Format
//!
//! One record per line, fields in fixed order:
//!
//! ```text
//! {"seq":42,"ts":1700000000000,"stream":"data","event":"put","payload":{...}}
//! ```
//!
//! `payload` is caller-supplied JSON stored **verbatim**, so re-encoding a
//! parsed record reproduces the original line byte for byte — the property
//! deterministic chaos replay depends on. With [`JournalClock::Logical`]
//! the timestamp is the sequence number itself, making whole artifacts
//! bit-exact across runs.
//!
//! # Example
//!
//! ```
//! use alfredo_journal::{recover, Journal, JournalConfig};
//!
//! let dir = std::env::temp_dir().join(format!("journal-doc-{}", std::process::id()));
//! let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
//! journal.append("session", "open", "{\"device\":\"laptop\"}");
//! let seq = journal.append("data", "put", "{\"key\":\"k\",\"value\":1}");
//! journal.wait_durable(seq).unwrap(); // group-committed and fsynced
//! drop(journal);
//!
//! let recovered = recover(&dir).unwrap();
//! assert_eq!(recovered.records.len(), 2);
//! assert_eq!(recovered.records[1].payload, "{\"key\":\"k\",\"value\":1}");
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

mod journal;
mod record;
mod recover;

pub use journal::{FsyncPolicy, Journal, JournalClock, JournalConfig, JournalStats};
pub use record::{JournalRecord, ParseError};
pub use recover::{recover, Recovery, Snapshot};

/// Errors surfaced by journal operations.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying file operation failed.
    Io(std::io::Error),
    /// A non-final log line failed to parse (the file is damaged beyond a
    /// torn tail write).
    Corrupt {
        /// 1-based line number of the bad record.
        line: usize,
        /// What the parser objected to.
        reason: String,
    },
    /// The committer thread died on an I/O error; records enqueued after
    /// the failure are dropped, not silently "durable".
    CommitterFailed(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
            JournalError::CommitterFailed(e) => write!(f, "journal committer failed: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}
