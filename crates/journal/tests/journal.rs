//! Journal crate integration tests: group-commit batching under
//! concurrency, durability semantics, and bit-exact logical-clock logs.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use alfredo_journal::{recover, Journal, JournalConfig, JournalRecord};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alfredo-journal-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn group_commit_batches_concurrent_writers() {
    let dir = temp_dir("group");
    let journal = Arc::new(Journal::open(JournalConfig::new(&dir)).unwrap());
    let writers = 8;
    let per_writer = 500;

    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let journal = Arc::clone(&journal);
            std::thread::spawn(move || {
                for i in 0..per_writer {
                    journal.append_with("data", "put", |out| {
                        use std::fmt::Write as _;
                        let _ = write!(out, "{{\"writer\":{w},\"i\":{i}}}");
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    journal.barrier().unwrap();

    let stats = journal.stats();
    let total = (writers * per_writer) as u64;
    assert_eq!(stats.appends, total);
    assert_eq!(stats.committed, total);
    // The whole point of group commit: far fewer fsyncs than records.
    assert!(
        stats.fsyncs * 4 <= total,
        "group commit must batch: {} fsyncs for {total} records",
        stats.fsyncs
    );
    assert!(stats.max_batch > 1, "at least one multi-record batch");

    // Every record survives, exactly once, in sequence order.
    let r = recover(&dir).unwrap();
    assert_eq!(r.records.len(), total as usize);
    for (i, rec) in r.records.iter().enumerate() {
        assert_eq!(rec.seq, i as u64 + 1);
    }
    drop(journal);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn append_wait_means_on_disk() {
    let dir = temp_dir("durable");
    let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
    let seq = journal
        .append_wait("lease", "grant", "{\"peer\":\"phone\"}")
        .unwrap();
    // No close, no barrier: the record must already be readable.
    let r = recover(&dir).unwrap();
    assert_eq!(r.records.len(), 1);
    assert_eq!(r.records[0].seq, seq);
    assert_eq!(r.records[0].payload, "{\"peer\":\"phone\"}");
    drop(journal);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn logical_clock_logs_are_bit_exact_across_runs() {
    let write_run = |tag: &str| -> (PathBuf, Vec<u8>) {
        let dir = temp_dir(tag);
        let journal =
            Journal::open(JournalConfig::new(&dir).logical_clock().without_fsync()).unwrap();
        for i in 0..50u64 {
            journal.append("session", "ui_event", &format!("{{\"tap\":{i}}}"));
        }
        journal.barrier().unwrap();
        journal.close().unwrap();
        let bytes = fs::read(dir.join("log.jsonl")).unwrap();
        (dir, bytes)
    };
    let (dir_a, a) = write_run("bitexact-a");
    let (dir_b, b) = write_run("bitexact-b");
    assert_eq!(a, b, "same event sequence, same bytes");

    // And parse → re-encode reproduces the file byte for byte.
    let r = recover(&dir_a).unwrap();
    let mut reencoded = String::new();
    for rec in &r.records {
        rec.encode_into(&mut reencoded);
    }
    assert_eq!(reencoded.as_bytes(), &a[..]);
    fs::remove_dir_all(&dir_a).unwrap();
    fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn pool_is_reused_on_a_steady_stream() {
    let dir = temp_dir("pool");
    let journal = Journal::open(JournalConfig::new(&dir).without_fsync()).unwrap();
    let n = 10_000u64;
    for i in 0..n {
        let seq = journal.append_with("data", "put", |out| {
            use std::fmt::Write as _;
            let _ = write!(out, "{{\"i\":{i}}}");
        });
        // Single writer: keep a bounded backlog so buffers recycle.
        if i % 256 == 0 {
            journal.wait_durable(seq).unwrap();
        }
    }
    journal.barrier().unwrap();
    let stats = journal.stats();
    assert!(
        stats.pool_misses < n / 10,
        "steady-state appends should reuse pooled buffers ({} misses / {n})",
        stats.pool_misses
    );
    drop(journal);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ten_thousand_event_log_recovers_completely() {
    let dir = temp_dir("10k");
    {
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        for i in 0..10_000u64 {
            journal.append(
                "data",
                "put",
                &format!("{{\"key\":\"k{}\",\"v\":{i}}}", i % 64),
            );
        }
        journal.barrier().unwrap();
        // No clean close: simulate the owner dying with the file intact.
    }
    let r = recover(&dir).unwrap();
    assert_eq!(r.records.len(), 10_000);
    assert_eq!(r.last_seq, 10_000);
    assert!(!r.torn_tail);
    let sample: Vec<&JournalRecord> = r.records.iter().filter(|r| r.seq % 1000 == 0).collect();
    assert_eq!(sample.len(), 10);
    fs::remove_dir_all(&dir).unwrap();
}
