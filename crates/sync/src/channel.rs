//! A multi-producer multi-consumer channel.
//!
//! API-compatible with the subset of `crossbeam::channel` the workspace
//! uses: [`bounded`] / [`unbounded`] constructors, cloneable and `Sync`
//! [`Sender`] / [`Receiver`] halves, and blocking, timed, and non-blocking
//! receives. Disconnection semantics match crossbeam: a receive on an
//! empty channel whose senders are all gone reports
//! [`RecvError`] / `Disconnected`, and a send with no receivers returns
//! the value in [`SendError`]. In-flight frames are still delivered after
//! the senders disconnect.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::{Condvar, Mutex};

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No value arrived before the deadline.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => write!(f, "channel is empty and disconnected"),
        }
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel is empty"),
            TryRecvError::Disconnected => write!(f, "channel is empty and disconnected"),
        }
    }
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Waiters blocked in `recv`.
    not_empty: Condvar,
    /// Waiters blocked in a bounded `send`.
    not_full: Condvar,
    /// `None` for unbounded channels.
    capacity: Option<usize>,
}

/// The sending half; clone freely across threads.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; clone freely across threads (each value is
/// delivered to exactly one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded channel: `send` blocks while `cap` values are queued.
/// A capacity of 0 is rounded up to 1 (a strict rendezvous is not needed
/// by this workspace).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends `value`, blocking if the channel is bounded and full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] with the value if all receivers are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut state = shared.state.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match shared.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = shared.not_full.wait(state);
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        shared.not_empty.notify_one();
        Ok(())
    }

    /// Sends without ever blocking; on a full bounded channel the value is
    /// returned in the error.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] if the channel is full or disconnected.
    pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut state = shared.state.lock();
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        if let Some(cap) = shared.capacity {
            if state.queue.len() >= cap {
                return Err(SendError(value));
            }
        }
        state.queue.push_back(value);
        drop(state);
        shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.shared.state.lock();
            state.senders -= 1;
            state.senders
        };
        if remaining == 0 {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> Receiver<T> {
    /// Receives the next value, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and all senders are
    /// gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut state = shared.state.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = shared.not_empty.wait(state);
        }
    }

    /// Receives the next value, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`RecvTimeoutError::Timeout`] if nothing arrives in time, or
    /// [`RecvTimeoutError::Disconnected`] if the channel is drained and all
    /// senders are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let shared = &*self.shared;
        let deadline = Instant::now() + timeout;
        let mut state = shared.state.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, timed_out) = shared.not_empty.wait_timeout(state, remaining);
            state = guard;
            if timed_out && state.queue.is_empty() {
                return if state.senders == 0 {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }

    /// Receives a value if one is already queued.
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError::Empty`] on an empty connected channel, or
    /// [`TryRecvError::Disconnected`] once drained with no senders left.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let mut state = shared.state.lock();
        if let Some(v) = state.queue.pop_front() {
            drop(state);
            shared.not_full.notify_one();
            return Ok(v);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.shared.state.lock();
            state.receivers -= 1;
            state.receivers
        };
        if remaining == 0 {
            // Wake blocked bounded senders so they observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap_err(), RecvError);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7).unwrap_err(), SendError(7));
    }

    #[test]
    fn timeout_elapses() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
    }

    #[test]
    fn timeout_sees_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvTimeoutError::Disconnected
        );
    }

    #[test]
    fn try_recv_nonblocking() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 3);
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the first value is taken
            tx
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        let _tx = t.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn mpmc_each_value_delivered_once() {
        let (tx, rx) = unbounded();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<i32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn cross_thread_ping_pong() {
        let (tx1, rx1) = bounded(1);
        let (tx2, rx2) = bounded(1);
        let t = thread::spawn(move || {
            for _ in 0..100 {
                let v: u64 = rx1.recv().unwrap();
                tx2.send(v + 1).unwrap();
            }
        });
        for i in 0..100u64 {
            tx1.send(i).unwrap();
            assert_eq!(rx2.recv().unwrap(), i + 1);
        }
        t.join().unwrap();
    }
}
