#![warn(missing_docs)]

//! # alfredo-sync
//!
//! Std-only synchronization primitives for the AlfredO workspace.
//!
//! The workspace builds with **no external crates** (target devices and CI
//! build offline), so this crate provides the two things the middleware
//! previously pulled from `parking_lot` and `crossbeam`:
//!
//! * [`Mutex`] / [`RwLock`] — thin wrappers over `std::sync` that ignore
//!   poisoning (a panicking service handler must not wedge the whole
//!   framework) and return guards directly from `lock()`.
//! * [`channel`] — a multi-producer **multi-consumer** channel with
//!   bounded and unbounded flavours, cloneable `Sender`/`Receiver` halves
//!   that are `Sync` (so a receiver can live inside a shared endpoint
//!   struct), and `recv`/`recv_timeout`/`try_recv` with crossbeam-style
//!   error types.

pub mod channel;

use std::fmt;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// A mutual-exclusion lock that ignores poisoning.
///
/// `lock()` returns the guard directly, like `parking_lot::Mutex`: if a
/// thread panicked while holding the lock, later callers still acquire it
/// (the protected state is framework bookkeeping that stays consistent
/// under panic-at-any-await-point discipline).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A reader-writer lock that ignores poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Blocks on the guard until notified.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match self.inner.wait(guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Blocks until notified or `timeout` elapses; returns the guard and
    /// whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.inner.wait_timeout(guard, timeout) {
            Ok((g, t)) => (g, t.timed_out()),
            Err(p) => {
                let (g, t) = p.into_inner();
                (g, t.timed_out())
            }
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A poisoned std mutex would return Err here; ours recovers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                done = cv.wait(done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
