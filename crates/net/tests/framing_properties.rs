//! Fuzz-style properties of the reactor's frame reassembly state machine:
//! arbitrary byte streams never panic it or make it allocate beyond
//! [`MAX_LENGTH`], torn-but-valid streams reassemble exactly, and an
//! impossible length prefix is a clean, permanent framing error. Driven
//! by the deterministic [`SimRng`] so failures reproduce from the seed.

use alfredo_net::wire::MAX_LENGTH;
use alfredo_net::{FrameReassembler, FramingError};
use alfredo_sim::SimRng;

const SEED: u64 = 0x00f7_a3e5_5eed;

fn rand_bytes(rng: &mut SimRng, max: usize) -> Vec<u8> {
    let len = rng.next_below(max as u64 + 1) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Splits `stream` into chunks at random boundaries (including empty
/// chunks, which a socket read never produces but the API tolerates).
fn random_chunks(rng: &mut SimRng, stream: &[u8]) -> Vec<Vec<u8>> {
    let mut chunks = Vec::new();
    let mut rest = stream;
    while !rest.is_empty() {
        let take = rng.next_below(rest.len() as u64 + 1) as usize;
        chunks.push(rest[..take].to_vec());
        rest = &rest[take..];
    }
    chunks
}

fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

#[test]
fn arbitrary_streams_never_panic_or_overallocate() {
    let mut rng = SimRng::seed_from(SEED);
    for _ in 0..500 {
        let mut asm = FrameReassembler::new();
        let mut poisoned = false;
        for _ in 0..8 {
            let chunk = rand_bytes(&mut rng, 64);
            let out = asm.feed(&chunk);
            // Random length prefixes are usually impossible (> 16 MiB);
            // the reassembler must reject them *before* allocating.
            assert!(
                asm.buffered_capacity() as u64 <= MAX_LENGTH,
                "allocated {} for arbitrary input",
                asm.buffered_capacity()
            );
            assert!(asm.buffered() as u64 <= 4 + MAX_LENGTH);
            if poisoned {
                assert_eq!(out, Err(FramingError), "poisoning must be permanent");
            }
            poisoned = out.is_err();
        }
    }
}

#[test]
fn torn_valid_streams_reassemble_exactly() {
    let mut rng = SimRng::seed_from(SEED ^ 1);
    for _ in 0..250 {
        let bodies: Vec<Vec<u8>> = (0..1 + rng.next_below(5))
            .map(|_| rand_bytes(&mut rng, 48))
            .collect();
        let stream: Vec<u8> = bodies.iter().flat_map(|b| frame(b)).collect();
        let mut asm = FrameReassembler::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        for chunk in random_chunks(&mut rng, &stream) {
            got.extend(asm.feed(&chunk).expect("valid stream must not error"));
        }
        assert_eq!(got, bodies, "chunking must not alter frame contents");
        assert_eq!(asm.buffered(), 0, "a complete stream leaves nothing torn");
    }
}

#[test]
fn mid_frame_truncation_is_buffered_not_an_error() {
    let full = frame(&[7u8; 32]);
    for cut in 0..full.len() {
        let mut asm = FrameReassembler::new();
        let frames = asm
            .feed(&full[..cut])
            .expect("torn prefix is not a protocol violation");
        assert!(frames.is_empty(), "cut at {cut} produced a frame");
        assert_eq!(asm.buffered(), cut, "cut at {cut}");
        // The tail still completes the frame.
        let frames = asm.feed(&full[cut..]).expect("tail completes cleanly");
        assert_eq!(frames, vec![vec![7u8; 32]]);
    }
}

#[test]
fn oversize_prefix_is_a_clean_permanent_error() {
    let mut asm = FrameReassembler::new();
    let bad = ((MAX_LENGTH + 1) as u32).to_le_bytes();
    assert_eq!(asm.feed(&bad), Err(FramingError));
    assert_eq!(
        asm.buffered_capacity(),
        0,
        "no allocation for a rejected prefix"
    );
    // Even a well-formed follow-up cannot resynchronize the stream.
    assert_eq!(asm.feed(&frame(b"ok")), Err(FramingError));
    assert_eq!(
        FramingError.to_string(),
        "frame length prefix exceeds the maximum frame size"
    );
}
