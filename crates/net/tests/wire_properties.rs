//! Randomized tests for the wire codec and link models, driven by the
//! deterministic [`SimRng`] so failures are reproducible from the seed.

use alfredo_net::{ByteReader, ByteWriter, LinkProfile, SimLink};
use alfredo_sim::{SimRng, SimTime};

const SEED: u64 = 0x0031_7eed;
const CASES: usize = 300;

fn rand_bytes(rng: &mut SimRng, max: usize) -> Vec<u8> {
    let len = rng.next_below(max as u64 + 1) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn rand_text(rng: &mut SimRng, max_chars: usize) -> String {
    let len = rng.next_below(max_chars as u64 + 1) as usize;
    (0..len)
        .map(|_| {
            // Mix of ASCII and wider scalars to exercise UTF-8 paths.
            match rng.next_below(4) {
                0 => char::from_u32(0x20 + rng.next_below(0x5f) as u32).unwrap(),
                1 => char::from_u32(0xA0 + rng.next_below(0x300) as u32).unwrap_or('x'),
                2 => '\u{1F600}',
                _ => char::from_u32(rng.next_below(0xD800) as u32).unwrap_or('y'),
            }
        })
        .collect()
}

#[test]
fn varint_round_trips() {
    let mut rng = SimRng::seed_from(SEED);
    for _ in 0..CASES {
        let v = rng.next_u64();
        let mut w = ByteWriter::new();
        w.put_varint(v);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.varint().unwrap(), v);
        assert!(r.is_empty());
    }
    // Edge values.
    for v in [0, 1, 127, 128, u64::MAX] {
        let mut w = ByteWriter::new();
        w.put_varint(v);
        assert_eq!(ByteReader::new(w.as_slice()).varint().unwrap(), v);
    }
}

#[test]
fn svarint_round_trips() {
    let mut rng = SimRng::seed_from(SEED ^ 1);
    for _ in 0..CASES {
        let v = rng.next_u64() as i64;
        let mut w = ByteWriter::new();
        w.put_svarint(v);
        let bytes = w.into_bytes();
        assert_eq!(ByteReader::new(&bytes).svarint().unwrap(), v);
    }
    for v in [0, -1, 1, i64::MIN, i64::MAX] {
        let mut w = ByteWriter::new();
        w.put_svarint(v);
        assert_eq!(ByteReader::new(w.as_slice()).svarint().unwrap(), v);
    }
}

#[test]
fn string_round_trips() {
    let mut rng = SimRng::seed_from(SEED ^ 2);
    for _ in 0..CASES {
        let s = rand_text(&mut rng, 32);
        let mut w = ByteWriter::new();
        w.put_str(&s);
        let bytes = w.into_bytes();
        assert_eq!(ByteReader::new(&bytes).str().unwrap(), s);
    }
}

#[test]
fn mixed_sequence_round_trips() {
    let mut rng = SimRng::seed_from(SEED ^ 3);
    for _ in 0..CASES / 3 {
        let ints: Vec<u64> = (0..rng.next_below(20)).map(|_| rng.next_u64()).collect();
        let blobs: Vec<Vec<u8>> = (0..rng.next_below(10))
            .map(|_| rand_bytes(&mut rng, 64))
            .collect();
        let mut w = ByteWriter::new();
        w.put_varint(ints.len() as u64);
        for i in &ints {
            w.put_varint(*i);
        }
        w.put_varint(blobs.len() as u64);
        for b in &blobs {
            w.put_bytes(b);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.varint().unwrap() as usize, ints.len());
        for i in &ints {
            assert_eq!(r.varint().unwrap(), *i);
        }
        assert_eq!(r.varint().unwrap() as usize, blobs.len());
        for b in &blobs {
            assert_eq!(r.bytes().unwrap(), b.as_slice());
        }
        assert!(r.is_empty());
    }
}

/// Decoding arbitrary garbage never panics.
#[test]
fn decoder_never_panics() {
    let mut rng = SimRng::seed_from(SEED ^ 4);
    for _ in 0..CASES {
        let bytes = rand_bytes(&mut rng, 256);
        let mut r = ByteReader::new(&bytes);
        let _ = r.varint();
        let mut r = ByteReader::new(&bytes);
        let _ = r.str();
        let mut r = ByteReader::new(&bytes);
        let _ = r.bytes();
        let mut r = ByteReader::new(&bytes);
        let _ = r.f64();
    }
}

/// Link delivery time is monotone in payload size and never earlier
/// than the propagation latency.
#[test]
fn link_delay_monotone() {
    let mut rng = SimRng::seed_from(SEED ^ 5);
    let profile = LinkProfile::wlan_802_11b();
    for _ in 0..CASES {
        let a = rng.next_below(100_000) as usize;
        let b = rng.next_below(100_000) as usize;
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        assert!(profile.transfer_time(small) <= profile.transfer_time(large));
        assert!(profile.transfer_time(small) >= profile.latency());
    }
}

/// Messages on a SimLink are delivered in send order (FIFO wire).
#[test]
fn simlink_fifo() {
    let mut rng = SimRng::seed_from(SEED ^ 6);
    for _ in 0..40 {
        let mut link = SimLink::new(LinkProfile::bluetooth_2_0());
        let mut last = SimTime::ZERO;
        for _ in 0..1 + rng.next_below(40) {
            let s = rng.next_below(10_000) as usize;
            let d = link.send(SimTime::ZERO, s);
            assert!(d >= last, "delivery went backwards");
            last = d;
        }
    }
}
