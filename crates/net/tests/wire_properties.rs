//! Property-based tests for the wire codec and link models.

use alfredo_net::{ByteReader, ByteWriter, LinkProfile, SimLink};
use alfredo_sim::SimTime;
use proptest::prelude::*;

proptest! {
    #[test]
    fn varint_round_trips(v in any::<u64>()) {
        let mut w = ByteWriter::new();
        w.put_varint(v);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        prop_assert_eq!(r.varint().unwrap(), v);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn svarint_round_trips(v in any::<i64>()) {
        let mut w = ByteWriter::new();
        w.put_svarint(v);
        let bytes = w.into_bytes();
        prop_assert_eq!(ByteReader::new(&bytes).svarint().unwrap(), v);
    }

    #[test]
    fn string_round_trips(s in ".*") {
        let mut w = ByteWriter::new();
        w.put_str(&s);
        let bytes = w.into_bytes();
        prop_assert_eq!(ByteReader::new(&bytes).str().unwrap(), s);
    }

    #[test]
    fn mixed_sequence_round_trips(
        ints in prop::collection::vec(any::<u64>(), 0..20),
        blobs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..10),
    ) {
        let mut w = ByteWriter::new();
        w.put_varint(ints.len() as u64);
        for i in &ints {
            w.put_varint(*i);
        }
        w.put_varint(blobs.len() as u64);
        for b in &blobs {
            w.put_bytes(b);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let n = r.varint().unwrap() as usize;
        prop_assert_eq!(n, ints.len());
        for i in &ints {
            prop_assert_eq!(r.varint().unwrap(), *i);
        }
        let m = r.varint().unwrap() as usize;
        prop_assert_eq!(m, blobs.len());
        for b in &blobs {
            prop_assert_eq!(r.bytes().unwrap(), b.as_slice());
        }
        prop_assert!(r.is_empty());
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut r = ByteReader::new(&bytes);
        let _ = r.varint();
        let mut r = ByteReader::new(&bytes);
        let _ = r.str();
        let mut r = ByteReader::new(&bytes);
        let _ = r.bytes();
        let mut r = ByteReader::new(&bytes);
        let _ = r.f64();
    }

    /// Link delivery time is monotone in payload size and never earlier
    /// than the propagation latency.
    #[test]
    fn link_delay_monotone(a in 0usize..100_000, b in 0usize..100_000) {
        let profile = LinkProfile::wlan_802_11b();
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(profile.transfer_time(small) <= profile.transfer_time(large));
        prop_assert!(profile.transfer_time(small) >= profile.latency());
    }

    /// Messages on a SimLink are delivered in send order (FIFO wire).
    #[test]
    fn simlink_fifo(sizes in prop::collection::vec(0usize..10_000, 1..40)) {
        let mut link = SimLink::new(LinkProfile::bluetooth_2_0());
        let mut last = SimTime::ZERO;
        for s in sizes {
            let d = link.send(SimTime::ZERO, s);
            prop_assert!(d >= last, "delivery went backwards");
            last = d;
        }
    }
}
