//! Property tests for the fault-injection transport.
//!
//! The load-bearing invariant: a [`FaultyTransport`] with an empty
//! [`FaultPlan`] is byte-identical to the raw transport, in both
//! directions, for arbitrary traffic. This is what lets the wrapper stay
//! in place on fault-free paths (and is what the chaos harness's
//! "fault-free baseline" run relies on).

use std::time::Duration;

use alfredo_net::{FaultPlan, FaultyTransport, InMemoryNetwork, PeerAddr, Transport};
use alfredo_sim::SimRng;

fn wrapped_pair(plan: FaultPlan) -> (FaultyTransport, FaultyTransport) {
    let net = InMemoryNetwork::new();
    let listener = net.bind(PeerAddr::new("b")).unwrap();
    let client = net.connect(PeerAddr::new("a"), PeerAddr::new("b")).unwrap();
    let server = listener.accept().unwrap();
    (
        FaultyTransport::new(Box::new(client), plan.clone()),
        FaultyTransport::new(Box::new(server), plan),
    )
}

fn random_frames(rng: &mut SimRng, count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|_| {
            let len = rng.next_below(512) as usize;
            (0..len).map(|_| rng.next_below(256) as u8).collect()
        })
        .collect()
}

#[test]
fn empty_plan_is_byte_identical_both_directions() {
    let mut rng = SimRng::seed_from(0xFA17);
    for round in 0..8 {
        let (client, server) = wrapped_pair(FaultPlan::none());
        let outbound = random_frames(&mut rng, 64);
        let inbound = random_frames(&mut rng, 64);
        for f in &outbound {
            client.send(f.clone()).unwrap();
        }
        for f in &inbound {
            server.send(f.clone()).unwrap();
        }
        for f in &outbound {
            assert_eq!(
                &server.recv_timeout(Duration::from_secs(2)).unwrap(),
                f,
                "round {round}: a→b frame mutated or reordered"
            );
        }
        for f in &inbound {
            assert_eq!(
                &client.recv_timeout(Duration::from_secs(2)).unwrap(),
                f,
                "round {round}: b→a frame mutated or reordered"
            );
        }
        assert_eq!(client.stats().dropped, 0);
        assert_eq!(server.stats().dropped, 0);
    }
}

#[test]
fn empty_plan_preserves_close_semantics() {
    let (client, server) = wrapped_pair(FaultPlan::none());
    client.send(b"last".to_vec()).unwrap();
    client.close();
    assert_eq!(
        server.recv_timeout(Duration::from_secs(2)).unwrap(),
        b"last"
    );
    assert!(matches!(
        server.recv_timeout(Duration::from_secs(2)),
        Err(alfredo_net::TransportError::Closed)
    ));
}

#[test]
fn seeded_faults_replay_identically() {
    let run = |seed: u64| {
        let plan = FaultPlan::seeded(seed)
            .with_send_drop(0.2)
            .with_duplicates(0.1)
            .with_corruption(0.1);
        let (client, server) = wrapped_pair(plan);
        let mut traffic = SimRng::seed_from(99);
        for f in random_frames(&mut traffic, 128) {
            client.send(f).unwrap();
        }
        let mut delivered = Vec::new();
        while let Ok(f) = server.recv_timeout(Duration::from_millis(80)) {
            delivered.push(f);
        }
        (delivered, client.stats())
    };
    let (a, stats_a) = run(5);
    let (b, stats_b) = run(5);
    assert_eq!(a, b, "same seed must inject the same fault sequence");
    assert_eq!(stats_a, stats_b);
    assert!(stats_a.dropped > 0 && stats_a.duplicated > 0 && stats_a.corrupted > 0);
    let (c, _) = run(6);
    assert_ne!(
        a, c,
        "a different seed must perturb the traffic differently"
    );
}
