//! A real TCP transport, multiplexed by the I/O reactor.
//!
//! The paper's R-OSGi speaks its protocol over TCP; this module provides
//! the same for deployments that span actual machines. Frames are
//! length-prefixed (`u32` little-endian). Unlike the original
//! thread-per-connection design, a [`TcpTransport`] costs **zero
//! dedicated threads**: the shared [`Reactor`]
//! reassembles inbound frames with a per-connection state machine and
//! drains outbound frames with vectored writes, so thousands of
//! connections share a handful of poller threads. Semantics match the
//! in-memory transport: reliable, ordered, frame-based, with `close`
//! observable from both ends — and a graceful local `close()` still
//! flushes frames already queued before sending FIN.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::reactor::{Conn, Reactor};
use crate::transport::{CloseReason, FrameSink, PeerAddr, Transport, TransportError};

/// A [`Transport`] over a real TCP connection, driven by the reactor.
pub struct TcpTransport {
    conn: Arc<Conn>,
}

impl TcpTransport {
    /// Connects to a listening [`TcpNetListener`] (or any peer speaking
    /// the framing), registering the socket with the global reactor.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        TcpTransport::from_stream(stream)
    }

    /// Wraps an accepted or connected stream on the global reactor.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if socket metadata is unavailable.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<TcpTransport> {
        TcpTransport::from_stream_on(Reactor::global(), stream)
    }

    /// Wraps a stream on a specific reactor (tests use this to exercise
    /// the `poll(2)` backend without touching the global instance).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if socket metadata is unavailable.
    pub fn from_stream_on(reactor: &Reactor, stream: TcpStream) -> std::io::Result<TcpTransport> {
        Ok(TcpTransport {
            conn: reactor.register(stream)?,
        })
    }
}

impl Transport for TcpTransport {
    fn send(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        self.conn.send(frame)
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        self.conn.recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.conn.recv_timeout(timeout)
    }

    fn try_recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
        self.conn.try_recv()
    }

    fn close(&self) {
        self.conn.close();
    }

    fn is_closed(&self) -> bool {
        self.conn.is_closed()
    }

    fn close_reason(&self) -> CloseReason {
        self.conn.close_reason()
    }

    fn peer_addr(&self) -> &PeerAddr {
        self.conn.peer_addr()
    }

    fn local_addr(&self) -> &PeerAddr {
        self.conn.local_addr()
    }

    fn set_sink(&self, sink: Box<dyn FrameSink>) -> bool {
        self.conn.set_sink(sink);
        true
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.conn.close();
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("local", self.local_addr())
            .field("peer", self.peer_addr())
            .field("closed", &self.is_closed())
            .finish()
    }
}

/// A TCP listener yielding framed transports.
#[derive(Debug)]
pub struct TcpNetListener {
    listener: TcpListener,
    local: SocketAddr,
}

impl TcpNetListener {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<TcpNetListener> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok(TcpNetListener { listener, local })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Accepts the next connection.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn accept(&self) -> std::io::Result<TcpTransport> {
        let (stream, _) = self.listener.accept()?;
        TcpTransport::from_stream(stream)
    }

    /// Accepts the next raw stream without wrapping it (callers that need
    /// a specific reactor use [`TcpTransport::from_stream_on`]).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn accept_stream(&self) -> std::io::Result<TcpStream> {
        let (stream, _) = self.listener.accept()?;
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    fn pair() -> (TcpTransport, TcpTransport) {
        let listener = TcpNetListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || listener.accept().unwrap());
        let client = TcpTransport::connect(addr).unwrap();
        (client, server.join().unwrap())
    }

    #[test]
    fn frames_round_trip_over_loopback() {
        let (client, server) = pair();
        for i in 0..50u32 {
            client.send(i.to_le_bytes().to_vec()).unwrap();
        }
        for i in 0..50u32 {
            assert_eq!(server.recv().unwrap(), i.to_le_bytes().to_vec());
        }
        server.send(b"pong".to_vec()).unwrap();
        assert_eq!(client.recv().unwrap(), b"pong");
    }

    #[test]
    fn large_frames_survive() {
        let (client, server) = pair();
        let big: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        client.send(big.clone()).unwrap();
        assert_eq!(server.recv().unwrap(), big);
    }

    #[test]
    fn close_is_observed_by_peer() {
        let (client, server) = pair();
        client.send(b"last".to_vec()).unwrap();
        client.close();
        assert!(client.is_closed());
        assert_eq!(server.recv().unwrap(), b"last");
        assert_eq!(server.recv().unwrap_err(), TransportError::Closed);
        assert_eq!(
            client.send(b"x".to_vec()).unwrap_err(),
            TransportError::Closed
        );
    }

    #[test]
    fn recv_timeout_elapses() {
        let (_client, server) = pair();
        assert_eq!(
            server.recv_timeout(Duration::from_millis(20)).unwrap_err(),
            TransportError::Timeout
        );
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (client, server) = pair();
        assert_eq!(server.try_recv().unwrap(), None);
        client.send(vec![1]).unwrap();
        // Deterministic readiness instead of a sleep-poll loop: a blocking
        // recv_timeout *is* the readiness wait, and ordering guarantees the
        // frame it returns is the one just sent.
        assert_eq!(
            server.recv_timeout(Duration::from_secs(5)).unwrap(),
            vec![1]
        );
        assert_eq!(server.try_recv().unwrap(), None);
    }

    #[test]
    fn corrupt_length_prefix_fails_fast_with_reason() {
        let listener = TcpNetListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || listener.accept().unwrap());
        let mut raw = TcpStream::connect(addr).unwrap();
        let server = server.join().unwrap();
        // An impossible length prefix: the reactor must tear the connection
        // down instead of dying silently with the socket half-open.
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        assert_eq!(server.recv().unwrap_err(), TransportError::Closed);
        assert!(server.is_closed());
        assert_eq!(server.close_reason(), CloseReason::CorruptStream);
        // The writer half observes the teardown promptly too.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            match server.send(vec![0u8; 1024]) {
                Err(TransportError::Closed) => break,
                Ok(()) if std::time::Instant::now() < deadline => continue,
                other => panic!("send kept succeeding on a dead socket: {other:?}"),
            }
        }
    }

    #[test]
    fn peer_eof_is_recorded() {
        let (client, server) = pair();
        client.close();
        assert_eq!(server.recv().unwrap_err(), TransportError::Closed);
        assert_eq!(server.close_reason(), CloseReason::Peer);
        assert_eq!(client.close_reason(), CloseReason::Local);
    }

    #[test]
    fn addresses_are_tcp_uris() {
        let (client, server) = pair();
        assert!(client.local_addr().as_str().starts_with("tcp://127.0.0.1:"));
        assert_eq!(client.peer_addr(), server.local_addr());
        assert_eq!(server.peer_addr(), client.local_addr());
    }

    #[test]
    fn sink_receives_frames_and_close_in_order() {
        struct Collector {
            tx: mpsc::Sender<Option<Vec<u8>>>,
        }
        impl FrameSink for Collector {
            fn on_frame(&mut self, frame: Vec<u8>) {
                self.tx.send(Some(frame)).unwrap();
            }
            fn on_close(&mut self) {
                self.tx.send(None).unwrap();
            }
        }
        let (client, server) = pair();
        // Frames sent *before* the sink is installed must drain into it
        // first, preserving order across the mode switch.
        client.send(b"one".to_vec()).unwrap();
        assert_eq!(server.recv().unwrap(), b"one");
        client.send(b"two".to_vec()).unwrap();
        let (tx, rx) = mpsc::channel();
        assert!(server.set_sink(Box::new(Collector { tx })));
        client.send(b"three".to_vec()).unwrap();
        client.close();
        let timeout = Duration::from_secs(5);
        assert_eq!(rx.recv_timeout(timeout).unwrap(), Some(b"two".to_vec()));
        assert_eq!(rx.recv_timeout(timeout).unwrap(), Some(b"three".to_vec()));
        assert_eq!(rx.recv_timeout(timeout).unwrap(), None);
        // on_close fires exactly once.
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
    }

    #[test]
    fn channel_transport_reports_no_sink_support() {
        let net = crate::InMemoryNetwork::new();
        let _listener = net.bind(PeerAddr::new("s")).unwrap();
        let t = net.connect(PeerAddr::new("c"), PeerAddr::new("s")).unwrap();
        struct Nop;
        impl FrameSink for Nop {
            fn on_frame(&mut self, _f: Vec<u8>) {}
            fn on_close(&mut self) {}
        }
        assert!(!t.set_sink(Box::new(Nop)));
    }

    #[test]
    fn poll_backend_round_trips() {
        // The poll(2) fallback must stay honest even on Linux where epoll
        // is the default: run a private reactor on it.
        let reactor = Reactor::new(1, crate::reactor::Backend::Poll).unwrap();
        let listener = TcpNetListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let accept = std::thread::spawn(move || listener.accept_stream().unwrap());
        let client_stream = TcpStream::connect(addr).unwrap();
        let client = TcpTransport::from_stream_on(&reactor, client_stream).unwrap();
        let server = TcpTransport::from_stream_on(&reactor, accept.join().unwrap()).unwrap();
        for i in 0..20u32 {
            client.send(i.to_le_bytes().to_vec()).unwrap();
        }
        for i in 0..20u32 {
            assert_eq!(server.recv().unwrap(), i.to_le_bytes().to_vec());
        }
        server.send(b"pong".to_vec()).unwrap();
        assert_eq!(client.recv().unwrap(), b"pong");
        client.close();
        assert_eq!(server.recv().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn write_backpressure_blocks_then_drains() {
        let (client, server) = pair();
        // Flood with more than the outbox cap while the peer isn't
        // reading; the sender must block (bounded memory), then complete
        // once the peer drains.
        let frame = vec![7u8; 256 * 1024];
        let n_frames = 32; // 8 MiB total, far over OUTBOX_CAP
        let sent = Arc::new(AtomicUsize::new(0));
        let sent2 = Arc::clone(&sent);
        let f2 = frame.clone();
        let sender = std::thread::spawn(move || {
            for _ in 0..n_frames {
                client.send(f2.clone()).unwrap();
                sent2.fetch_add(1, Ordering::SeqCst);
            }
            client
        });
        for _ in 0..n_frames {
            assert_eq!(server.recv().unwrap(), frame);
        }
        let client = sender.join().unwrap();
        assert_eq!(sent.load(Ordering::SeqCst), n_frames);
        drop(client);
    }
}
