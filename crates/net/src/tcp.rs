//! A real TCP transport.
//!
//! The paper's R-OSGi speaks its protocol over TCP; this module provides
//! the same for deployments that span actual machines. Frames are
//! length-prefixed (`u32` little-endian), and a per-connection reader
//! thread turns the byte stream back into frames, giving [`TcpTransport`]
//! the exact semantics of the in-memory transport: reliable, ordered,
//! frame-based, with `close` observable from both ends.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use alfredo_sync::channel::{self, Receiver, RecvTimeoutError, TryRecvError};
use alfredo_sync::Mutex;

use crate::transport::{CloseReason, PeerAddr, Transport, TransportError};
use crate::wire::MAX_LENGTH;

/// A [`Transport`] over a real TCP connection.
pub struct TcpTransport {
    writer: Mutex<TcpStream>,
    frames: Receiver<Vec<u8>>,
    closed: Arc<AtomicBool>,
    reason: Arc<Mutex<CloseReason>>,
    local: PeerAddr,
    peer: PeerAddr,
    stream: TcpStream,
}

/// Records `reason` as the connection's close reason unless an earlier
/// cause was already recorded (first cause wins), announcing the
/// recorded cause on the structured event hub (`net.tcp` / `close`).
/// Diagnostics go through the hub instead of stderr so tests can assert
/// on them and `cargo test -q` output stays clean.
fn record_reason(slot: &Mutex<CloseReason>, reason: CloseReason, peer: &PeerAddr) {
    let mut r = slot.lock();
    if *r == CloseReason::Unknown {
        *r = reason;
        alfredo_obs::event("net.tcp", "close", || {
            vec![
                ("peer".to_string(), peer.to_string()),
                ("reason".to_string(), format!("{reason:?}")),
            ]
        });
    }
}

impl TcpTransport {
    /// Connects to a listening [`TcpNetListener`] (or any peer speaking
    /// the framing).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        TcpTransport::from_stream(stream)
    }

    /// Wraps an accepted or connected stream.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if socket metadata is unavailable.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<TcpTransport> {
        stream.set_nodelay(true)?;
        let local = PeerAddr::new(format!("tcp://{}", stream.local_addr()?));
        let peer = PeerAddr::new(format!("tcp://{}", stream.peer_addr()?));
        let writer = stream.try_clone()?;
        let reader = stream.try_clone()?;
        let closed = Arc::new(AtomicBool::new(false));
        let reason = Arc::new(Mutex::new(CloseReason::Unknown));
        let (tx, rx) = channel::unbounded();
        let closed2 = Arc::clone(&closed);
        let reason2 = Arc::clone(&reason);
        let peer2 = peer.clone();
        std::thread::Builder::new()
            .name("tcp-reader".into())
            .spawn(move || {
                let mut reader = reader;
                let why = loop {
                    let mut len_buf = [0u8; 4];
                    if let Err(e) = reader.read_exact(&mut len_buf) {
                        break if e.kind() == std::io::ErrorKind::UnexpectedEof {
                            CloseReason::Peer
                        } else {
                            CloseReason::Io
                        };
                    }
                    let len = u32::from_le_bytes(len_buf) as u64;
                    if len > MAX_LENGTH {
                        break CloseReason::CorruptStream;
                    }
                    let mut frame = vec![0u8; len as usize];
                    if reader.read_exact(&mut frame).is_err() {
                        break CloseReason::Io;
                    }
                    if tx.send(frame).is_err() {
                        break CloseReason::Local;
                    }
                };
                record_reason(&reason2, why, &peer2);
                closed2.store(true, Ordering::SeqCst);
                // Tear the socket down both ways so the writer half and the
                // peer fail promptly instead of waiting out their timeouts
                // (a corrupt stream used to leave the socket half-open).
                let _ = reader.shutdown(Shutdown::Both);
                // Dropping tx disconnects the channel: recv() observes
                // Closed once drained.
            })?;
        Ok(TcpTransport {
            writer: Mutex::new(writer),
            frames: rx,
            closed,
            reason,
            local,
            peer,
            stream,
        })
    }
}

impl Transport for TcpTransport {
    fn send(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Closed);
        }
        let mut writer = self.writer.lock();
        let len = (frame.len() as u32).to_le_bytes();
        writer
            .write_all(&len)
            .and_then(|()| writer.write_all(&frame))
            .map_err(|_| {
                record_reason(&self.reason, CloseReason::Io, &self.peer);
                self.closed.store(true, Ordering::SeqCst);
                TransportError::Closed
            })
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        self.frames.recv().map_err(|_| TransportError::Closed)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        match self.frames.recv_timeout(timeout) {
            Ok(f) => Ok(f),
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn try_recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
        match self.frames.try_recv() {
            Ok(f) => Ok(Some(f)),
            Err(TryRecvError::Empty) => {
                if self.closed.load(Ordering::SeqCst) {
                    Err(TransportError::Closed)
                } else {
                    Ok(None)
                }
            }
            Err(TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn close(&self) {
        record_reason(&self.reason, CloseReason::Local, &self.peer);
        self.closed.store(true, Ordering::SeqCst);
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    fn close_reason(&self) -> CloseReason {
        *self.reason.lock()
    }

    fn peer_addr(&self) -> &PeerAddr {
        &self.peer
    }

    fn local_addr(&self) -> &PeerAddr {
        &self.local
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.close();
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("local", &self.local)
            .field("peer", &self.peer)
            .field("closed", &self.is_closed())
            .finish()
    }
}

/// A TCP listener yielding framed transports.
#[derive(Debug)]
pub struct TcpNetListener {
    listener: TcpListener,
    local: SocketAddr,
}

impl TcpNetListener {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<TcpNetListener> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok(TcpNetListener { listener, local })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Accepts the next connection.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn accept(&self) -> std::io::Result<TcpTransport> {
        let (stream, _) = self.listener.accept()?;
        TcpTransport::from_stream(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpTransport, TcpTransport) {
        let listener = TcpNetListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || listener.accept().unwrap());
        let client = TcpTransport::connect(addr).unwrap();
        (client, server.join().unwrap())
    }

    #[test]
    fn frames_round_trip_over_loopback() {
        let (client, server) = pair();
        for i in 0..50u32 {
            client.send(i.to_le_bytes().to_vec()).unwrap();
        }
        for i in 0..50u32 {
            assert_eq!(server.recv().unwrap(), i.to_le_bytes().to_vec());
        }
        server.send(b"pong".to_vec()).unwrap();
        assert_eq!(client.recv().unwrap(), b"pong");
    }

    #[test]
    fn large_frames_survive() {
        let (client, server) = pair();
        let big: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        client.send(big.clone()).unwrap();
        assert_eq!(server.recv().unwrap(), big);
    }

    #[test]
    fn close_is_observed_by_peer() {
        let (client, server) = pair();
        client.send(b"last".to_vec()).unwrap();
        client.close();
        assert!(client.is_closed());
        assert_eq!(server.recv().unwrap(), b"last");
        assert_eq!(server.recv().unwrap_err(), TransportError::Closed);
        assert_eq!(
            client.send(b"x".to_vec()).unwrap_err(),
            TransportError::Closed
        );
    }

    #[test]
    fn recv_timeout_elapses() {
        let (_client, server) = pair();
        assert_eq!(
            server.recv_timeout(Duration::from_millis(20)).unwrap_err(),
            TransportError::Timeout
        );
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (client, server) = pair();
        assert_eq!(server.try_recv().unwrap(), None);
        client.send(vec![1]).unwrap();
        // Give the reader thread a moment to pump the frame.
        for _ in 0..100 {
            if let Some(f) = server.try_recv().unwrap() {
                assert_eq!(f, vec![1]);
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("frame never arrived");
    }

    #[test]
    fn corrupt_length_prefix_fails_fast_with_reason() {
        let listener = TcpNetListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || listener.accept().unwrap());
        let mut raw = TcpStream::connect(addr).unwrap();
        let server = server.join().unwrap();
        // An impossible length prefix: the reader must tear the connection
        // down instead of dying silently with the socket half-open.
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        assert_eq!(server.recv().unwrap_err(), TransportError::Closed);
        assert!(server.is_closed());
        assert_eq!(server.close_reason(), CloseReason::CorruptStream);
        // The writer half observes the teardown promptly too.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            match server.send(vec![0u8; 1024]) {
                Err(TransportError::Closed) => break,
                Ok(()) if std::time::Instant::now() < deadline => continue,
                other => panic!("send kept succeeding on a dead socket: {other:?}"),
            }
        }
    }

    #[test]
    fn peer_eof_is_recorded() {
        let (client, server) = pair();
        client.close();
        assert_eq!(server.recv().unwrap_err(), TransportError::Closed);
        assert_eq!(server.close_reason(), CloseReason::Peer);
        assert_eq!(client.close_reason(), CloseReason::Local);
    }

    #[test]
    fn addresses_are_tcp_uris() {
        let (client, server) = pair();
        assert!(client.local_addr().as_str().starts_with("tcp://127.0.0.1:"));
        assert_eq!(client.peer_addr(), server.local_addr());
        assert_eq!(server.peer_addr(), client.local_addr());
    }
}
