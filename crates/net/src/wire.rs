//! Compact binary wire encoding.
//!
//! R-OSGi ships small messages (the paper: a whole service interface is
//! about 2 kBytes), so the codec favours compactness: LEB128 varints for
//! lengths and integers, length-prefixed UTF-8 strings and byte blobs.
//! `alfredo-rosgi` builds its message and value codecs on these primitives,
//! and the benchmark harness measures *actual encoded sizes* when it
//! reproduces the paper's footprint and transfer numbers.

use std::fmt;
use std::sync::Arc;

use crate::pool::BufferPool;

/// Errors produced while decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// Bytes wanted by the decoder.
        wanted: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A varint ran past its maximum width.
    VarintOverflow,
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// An enum/message tag byte was not recognized.
    InvalidTag {
        /// The context in which the tag appeared (e.g. a type name).
        context: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A declared length exceeds the decoder's sanity limit.
    LengthTooLarge(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { wanted, remaining } => {
                write!(
                    f,
                    "unexpected end of input: wanted {wanted} bytes, {remaining} remain"
                )
            }
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::InvalidUtf8 => write!(f, "string is not valid UTF-8"),
            WireError::InvalidTag { context, tag } => {
                write!(f, "invalid tag {tag:#04x} while decoding {context}")
            }
            WireError::LengthTooLarge(len) => {
                write!(f, "declared length {len} exceeds sanity limit")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum length accepted for any single string/blob, as a guard against
/// corrupt frames (16 MiB, far above anything AlfredO ships).
pub const MAX_LENGTH: u64 = 16 << 20;

/// An append-only encoder over a growable byte buffer.
///
/// # Example
///
/// ```
/// use alfredo_net::{ByteReader, ByteWriter};
///
/// # fn main() -> Result<(), alfredo_net::WireError> {
/// let mut w = ByteWriter::new();
/// w.put_varint(300);
/// w.put_str("MouseController");
/// let bytes = w.into_bytes();
///
/// let mut r = ByteReader::new(&bytes);
/// assert_eq!(r.varint()?, 300);
/// assert_eq!(r.str()?, "MouseController");
/// assert!(r.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
    /// When present, the buffer was checked out of this pool and returns
    /// to it on drop (unless detached via [`ByteWriter::into_bytes`]).
    pool: Option<Arc<BufferPool>>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Creates a writer with preallocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
            pool: None,
        }
    }

    /// Creates a writer whose buffer is checked out of `pool`.
    ///
    /// On a pool hit this performs no allocation. If the writer is
    /// dropped without [`Self::into_bytes`], the buffer goes back to the
    /// pool; `into_bytes` detaches it (the receiver is expected to return
    /// the spent frame with [`BufferPool::give`]).
    pub fn with_pool(pool: &Arc<BufferPool>) -> Self {
        ByteWriter {
            buf: pool.take(),
            pool: Some(Arc::clone(pool)),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a signed integer with zigzag encoding.
    pub fn put_svarint(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a varint length prefix followed by the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a varint length prefix followed by UTF-8 string bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Consumes the writer, returning the encoded bytes. Detaches the
    /// buffer from its pool, if any — ownership transfers to the caller.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.pool = None;
        std::mem::take(&mut self.buf)
    }

    /// Borrows the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Discards everything written so far, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl Drop for ByteWriter {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.give(std::mem::take(&mut self.buf));
        }
    }
}

/// A cursor-based decoder over a byte slice.
///
/// All read methods return [`WireError`] on malformed input; see
/// [`ByteWriter`] for a round-trip example.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` if all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                wanted: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if the input is exhausted.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than 2 bytes remain.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("slice of 8")))
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("slice of 8")))
    }

    /// Reads an LEB128 varint.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::VarintOverflow`] if the encoding exceeds 64 bits
    /// and [`WireError::UnexpectedEof`] if the input ends mid-varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Reads a zigzag-encoded signed integer.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::varint`] errors.
    pub fn svarint(&mut self) -> Result<i64, WireError> {
        let raw = self.varint()?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }

    /// Reads a boolean byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if the input is exhausted.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }

    /// Reads a length-prefixed byte blob.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LengthTooLarge`] if the prefix exceeds
    /// [`MAX_LENGTH`], or an EOF/varint error.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.varint()?;
        if len > MAX_LENGTH {
            return Err(WireError::LengthTooLarge(len));
        }
        self.take(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// As [`Self::bytes`], plus [`WireError::InvalidUtf8`].
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let raw = self.bytes()?;
        std::str::from_utf8(raw).map_err(|_| WireError::InvalidUtf8)
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xab);
        w.put_u16(0x1234);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_f64(2.5);
        w.put_bool(true);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert!(r.bool().unwrap());
        assert!(r.is_empty());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut w = ByteWriter::new();
            w.put_varint(v);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(r.varint().unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn varint_is_compact() {
        let mut w = ByteWriter::new();
        w.put_varint(100);
        assert_eq!(w.len(), 1);
        let mut w = ByteWriter::new();
        w.put_varint(300);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn svarint_round_trip() {
        for v in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            let mut w = ByteWriter::new();
            w.put_svarint(v);
            let bytes = w.into_bytes();
            assert_eq!(ByteReader::new(&bytes).svarint().unwrap(), v);
        }
    }

    #[test]
    fn strings_and_blobs() {
        let mut w = ByteWriter::new();
        w.put_str("héllo wörld");
        w.put_bytes(&[1, 2, 3]);
        w.put_str("");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.str().unwrap(), "héllo wörld");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.str().unwrap(), "");
    }

    #[test]
    fn eof_is_detected() {
        let mut r = ByteReader::new(&[0x01]);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(matches!(r.u32(), Err(WireError::UnexpectedEof { .. })));
    }

    #[test]
    fn truncated_string_is_eof() {
        let mut w = ByteWriter::new();
        w.put_str("hello");
        let mut bytes = w.into_bytes();
        bytes.truncate(3);
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.str(), Err(WireError::UnexpectedEof { .. })));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        assert_eq!(
            ByteReader::new(&bytes).str().unwrap_err(),
            WireError::InvalidUtf8
        );
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_varint(MAX_LENGTH + 1);
        let bytes = w.into_bytes();
        assert!(matches!(
            ByteReader::new(&bytes).bytes(),
            Err(WireError::LengthTooLarge(_))
        ));
    }

    #[test]
    fn varint_overflow_is_rejected() {
        // 10 continuation bytes of 0xff overflow 64 bits.
        let bytes = [0xffu8; 10];
        assert_eq!(
            ByteReader::new(&bytes).varint().unwrap_err(),
            WireError::VarintOverflow
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = WireError::InvalidTag {
            context: "Message",
            tag: 0x7f,
        };
        assert!(e.to_string().contains("Message"));
        assert!(!WireError::InvalidUtf8.to_string().is_empty());
    }
}
