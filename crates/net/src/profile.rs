//! Link profiles for the paper's network technologies.
//!
//! A [`LinkProfile`] is an analytic model of a point-to-point link:
//! propagation latency, usable bandwidth, a fixed per-message protocol
//! overhead (framing, TCP/IP or L2CAP headers), and optional uniform jitter.
//! The constants are calibrated against the paper's observations — e.g. the
//! ICMP ping baseline plotted as a dotted line in Figure 5 and the fact that
//! Bluetooth roughly triples the cost of acquiring a 2 kB service interface
//! (Table 1 vs Table 2).

use std::fmt;

use alfredo_sim::{SimDuration, SimRng};

/// An analytic point-to-point link model.
///
/// # Example
///
/// ```
/// use alfredo_net::LinkProfile;
///
/// let wlan = LinkProfile::wlan_802_11b();
/// let bt = LinkProfile::bluetooth_2_0();
/// // Bluetooth 2.0 EDR has far less usable bandwidth than 802.11b.
/// assert!(bt.bandwidth_bps() < wlan.bandwidth_bps());
/// // For a 2 kB transfer, WLAN is decisively faster.
/// assert!(wlan.transfer_time(2048) < bt.transfer_time(2048));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkProfile {
    name: &'static str,
    latency: SimDuration,
    bandwidth_bps: f64,
    per_message_overhead: u32,
    jitter_frac: f64,
    connection_setup: SimDuration,
}

impl LinkProfile {
    /// Creates a custom profile.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not strictly positive or `jitter_frac`
    /// is outside `[0, 1)`.
    pub fn new(
        name: &'static str,
        latency: SimDuration,
        bandwidth_bps: f64,
        per_message_overhead: u32,
        jitter_frac: f64,
    ) -> Self {
        assert!(
            bandwidth_bps > 0.0 && bandwidth_bps.is_finite(),
            "bandwidth must be positive"
        );
        assert!(
            (0.0..1.0).contains(&jitter_frac),
            "jitter fraction must be in [0, 1)"
        );
        LinkProfile {
            name,
            latency,
            bandwidth_bps,
            per_message_overhead,
            jitter_frac,
            connection_setup: SimDuration::ZERO,
        }
    }

    /// Builder-style: sets the one-time connection establishment latency
    /// (TCP handshake on WLAN, inquiry/paging on Bluetooth — the latter is
    /// why acquiring a service interface over BT costs ~3x the WLAN time
    /// in Tables 1 and 2 of the paper).
    pub fn with_setup(mut self, setup: SimDuration) -> Self {
        self.connection_setup = setup;
        self
    }

    /// One-time connection establishment latency.
    pub fn connection_setup(&self) -> SimDuration {
        self.connection_setup
    }

    /// 802.11b WLAN as seen by a 2008 phone: ~11 Mbit/s nominal, ~5 Mbit/s
    /// usable; one-way latency calibrated so an ICMP ping sits around the
    /// ~20 ms baseline the paper plots in Figure 5.
    pub fn wlan_802_11b() -> Self {
        LinkProfile::new(
            "802.11b WLAN",
            SimDuration::from_micros(9_500),
            5.0e6,
            60,
            0.15,
        )
    }

    /// Bluetooth 2.0 + EDR: ~2.1 Mbit/s usable, higher per-hop latency.
    pub fn bluetooth_2_0() -> Self {
        LinkProfile::new(
            "Bluetooth 2.0",
            SimDuration::from_micros(22_000),
            1.4e6,
            40,
            0.15,
        )
    }

    /// Switched 100 Mbit/s Ethernet (the paper's desktop experiments).
    pub fn ethernet_100() -> Self {
        LinkProfile::new(
            "100Mb Ethernet",
            SimDuration::from_micros(120),
            100.0e6,
            58,
            0.05,
        )
    }

    /// Switched 1000 Mbit/s Ethernet (the paper's cluster experiments).
    pub fn ethernet_1000() -> Self {
        LinkProfile::new(
            "1Gb Ethernet",
            SimDuration::from_micros(70),
            1.0e9,
            58,
            0.05,
        )
    }

    /// An idealized loopback link for baseline measurements.
    pub fn loopback() -> Self {
        LinkProfile::new("loopback", SimDuration::from_micros(5), 10.0e9, 0, 0.0)
    }

    /// The profile's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-way propagation latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Usable bandwidth in bits per second.
    pub fn bandwidth_bps(&self) -> f64 {
        self.bandwidth_bps
    }

    /// Fixed protocol overhead added to every message, in bytes.
    pub fn per_message_overhead(&self) -> u32 {
        self.per_message_overhead
    }

    /// Maximum fractional jitter applied by jittered transfers.
    pub fn jitter_frac(&self) -> f64 {
        self.jitter_frac
    }

    /// Time to serialize `payload_bytes` onto the medium (no propagation).
    pub fn transmission_time(&self, payload_bytes: usize) -> SimDuration {
        let total_bits = (payload_bytes as f64 + f64::from(self.per_message_overhead)) * 8.0;
        SimDuration::from_secs_f64(total_bits / self.bandwidth_bps)
    }

    /// One-way delivery time for a message of `payload_bytes`, with no
    /// queueing and no jitter: propagation latency + transmission time.
    pub fn transfer_time(&self, payload_bytes: usize) -> SimDuration {
        self.latency + self.transmission_time(payload_bytes)
    }

    /// Like [`Self::transfer_time`] but with uniform multiplicative jitter
    /// drawn from `rng` in `[1, 1 + jitter_frac)`.
    pub fn transfer_time_jittered(&self, payload_bytes: usize, rng: &mut SimRng) -> SimDuration {
        let base = self.transfer_time(payload_bytes);
        if self.jitter_frac == 0.0 {
            return base;
        }
        let factor = 1.0 + rng.next_f64() * self.jitter_frac;
        SimDuration::from_secs_f64(base.as_secs_f64() * factor)
    }

    /// Round-trip time for a minimal probe (an ICMP-ping analogue carrying
    /// `payload_bytes` of payload each way).
    pub fn ping_rtt(&self, payload_bytes: usize) -> SimDuration {
        self.transfer_time(payload_bytes) * 2
    }
}

impl fmt::Display for LinkProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} one-way, {:.1} Mb/s)",
            self.name,
            self.latency,
            self.bandwidth_bps / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_link_ordering_holds() {
        let wlan = LinkProfile::wlan_802_11b();
        let bt = LinkProfile::bluetooth_2_0();
        let e100 = LinkProfile::ethernet_100();
        let e1000 = LinkProfile::ethernet_1000();
        assert!(bt.bandwidth_bps() < wlan.bandwidth_bps());
        assert!(wlan.bandwidth_bps() < e100.bandwidth_bps());
        assert!(e100.bandwidth_bps() < e1000.bandwidth_bps());
        assert!(e1000.latency() < e100.latency());
        assert!(e100.latency() < wlan.latency());
        assert!(wlan.latency() < bt.latency());
    }

    #[test]
    fn wlan_ping_matches_paper_baseline() {
        // Figure 5 plots an ICMP ping baseline visibly around 20 ms on the
        // phone's WLAN; our calibration should be in that neighbourhood.
        let rtt = LinkProfile::wlan_802_11b().ping_rtt(56);
        let ms = rtt.as_millis_f64();
        assert!((15.0..30.0).contains(&ms), "WLAN ping {ms} ms");
    }

    #[test]
    fn acquire_interface_bt_vs_wlan_matches_tables() {
        // Tables 1 and 2: acquiring the ~2 kB service interface takes
        // ~94-110 ms on WLAN and ~263-312 ms on BT (several round trips).
        // One-way 2 kB transfers must therefore be ~3x apart.
        let wlan = LinkProfile::wlan_802_11b().transfer_time(2048);
        let bt = LinkProfile::bluetooth_2_0().transfer_time(2048);
        let ratio = bt.as_secs_f64() / wlan.as_secs_f64();
        assert!((2.0..4.5).contains(&ratio), "BT/WLAN ratio {ratio}");
    }

    #[test]
    fn transmission_scales_with_size() {
        let e100 = LinkProfile::ethernet_100();
        let small = e100.transmission_time(100);
        let large = e100.transmission_time(10_000);
        assert!(large > small * 10); // overhead amortizes
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let wlan = LinkProfile::wlan_802_11b();
        let mut rng = SimRng::seed_from(5);
        let base = wlan.transfer_time(500);
        for _ in 0..100 {
            let t = wlan.transfer_time_jittered(500, &mut rng);
            assert!(t >= base);
            assert!(t.as_secs_f64() <= base.as_secs_f64() * 1.16);
        }
        let mut a = SimRng::seed_from(6);
        let mut b = SimRng::seed_from(6);
        assert_eq!(
            wlan.transfer_time_jittered(500, &mut a),
            wlan.transfer_time_jittered(500, &mut b)
        );
    }

    #[test]
    fn loopback_has_no_jitter() {
        let lo = LinkProfile::loopback();
        let mut rng = SimRng::seed_from(7);
        assert_eq!(
            lo.transfer_time_jittered(100, &mut rng),
            lo.transfer_time(100)
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn invalid_bandwidth_rejected() {
        LinkProfile::new("bad", SimDuration::ZERO, 0.0, 0, 0.0);
    }
}
