#![warn(missing_docs)]

//! # alfredo-net
//!
//! The network substrate for the AlfredO reproduction.
//!
//! The paper runs R-OSGi over TCP across 802.11b WLAN, Bluetooth 2.0, and
//! switched Ethernet. This crate provides the equivalent plumbing in two
//! forms:
//!
//! * A **threaded in-memory network** ([`InMemoryNetwork`]) — real
//!   connection-oriented transports backed by channels, used by the
//!   functional tests, the examples, and the prototype applications. It
//!   behaves like loopback TCP: reliable, ordered, connection-scoped.
//! * **Link profiles** ([`LinkProfile`]) and a **simulated link**
//!   ([`SimLink`]) — analytic latency/bandwidth/queueing models of the
//!   paper's physical links, used by the benchmark harness together with
//!   `alfredo-sim` to regenerate the paper's tables and figures.
//!
//! A real **TCP transport** ([`TcpTransport`]) with the same framing is
//! available for deployments spanning actual machines.
//!
//! It also defines the **wire encoding** helpers ([`ByteWriter`],
//! [`ByteReader`]) used by `alfredo-rosgi` to serialize protocol messages,
//! so that every "bytes on the wire" number reported by the benchmarks is
//! the size of a real encoded message.

pub mod fault;
pub mod pool;
pub mod profile;
pub mod reactor;
pub mod simnet;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use fault::{DelayHandle, FaultPlan, FaultStats, FaultyTransport, PartitionHandle};
pub use pool::{BufferPool, PoolStats};
pub use profile::LinkProfile;
pub use reactor::{
    current_stats, raise_nofile_limit, Backend, FrameReassembler, FramingError, Reactor,
    ReactorStats, TimerKey, TimerWheel,
};
pub use simnet::SimLink;
pub use tcp::{TcpNetListener, TcpTransport};
pub use transport::{
    ChannelTransport, CloseReason, FrameSink, InMemoryNetwork, Listener, PeerAddr, Transport,
    TransportError,
};
pub use wire::{ByteReader, ByteWriter, WireError};
