//! Simulated links with queueing.
//!
//! [`SimLink`] wraps a [`LinkProfile`] with a serialization queue: a message
//! cannot begin transmission until the previous one has left the sender, so
//! bursts of messages experience head-of-line delay exactly as on a real
//! half-duplex radio or a single TCP connection. The benchmark harness uses
//! one `SimLink` per direction per connection.

use alfredo_sim::{SimDuration, SimRng, SimTime};

use crate::fault::FaultPlan;
use crate::profile::LinkProfile;

/// A directed link with FIFO serialization and the delay model of a
/// [`LinkProfile`].
///
/// # Example
///
/// ```
/// use alfredo_net::{LinkProfile, SimLink};
/// use alfredo_sim::SimTime;
///
/// let mut link = SimLink::new(LinkProfile::ethernet_100());
/// let a = link.send(SimTime::ZERO, 1000);
/// let b = link.send(SimTime::ZERO, 1000);
/// // The second message queues behind the first on the wire.
/// assert!(b > a);
/// ```
#[derive(Debug, Clone)]
pub struct SimLink {
    profile: LinkProfile,
    wire_free: SimTime,
    messages: u64,
    bytes: u64,
    rng: Option<SimRng>,
    faults: Option<FaultPlan>,
    fault_rng: Option<SimRng>,
    dropped: u64,
}

impl SimLink {
    /// Creates a link with no jitter applied (deterministic delays).
    pub fn new(profile: LinkProfile) -> Self {
        SimLink {
            profile,
            wire_free: SimTime::ZERO,
            messages: 0,
            bytes: 0,
            rng: None,
            faults: None,
            fault_rng: None,
            dropped: 0,
        }
    }

    /// Creates a link that applies the profile's jitter using `rng`.
    pub fn with_jitter(profile: LinkProfile, rng: SimRng) -> Self {
        SimLink {
            rng: Some(rng),
            ..SimLink::new(profile)
        }
    }

    /// Creates a link that additionally drops and delays messages per
    /// `plan` (its `drop_send`, `delay_send`, and `max_delay` fields),
    /// drawing fault decisions from the plan's own seed.
    pub fn with_faults(profile: LinkProfile, plan: FaultPlan) -> Self {
        let fault_rng = SimRng::seed_from(plan.seed);
        SimLink {
            faults: Some(plan),
            fault_rng: Some(fault_rng),
            ..SimLink::new(profile)
        }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// Sends `payload_bytes` at `now`; returns the delivery time at the
    /// receiver. Transmission starts when the wire is free (FIFO).
    pub fn send(&mut self, now: SimTime, payload_bytes: usize) -> SimTime {
        let start = self.wire_free.max(now);
        let tx = self.profile.transmission_time(payload_bytes);
        self.wire_free = start + tx;
        let prop = match &mut self.rng {
            Some(rng) => {
                // Jitter applies to propagation (interference, retries).
                let base = self.profile.latency();
                let factor = 1.0 + rng.next_f64() * self.profile.jitter_frac();
                SimDuration::from_secs_f64(base.as_secs_f64() * factor)
            }
            None => self.profile.latency(),
        };
        self.messages += 1;
        self.bytes += payload_bytes as u64;
        self.wire_free + prop
    }

    /// Sends `payload_bytes` at `now` over a lossy link; returns `None`
    /// when the message is lost in flight.
    ///
    /// A lost message still occupies the wire for its transmission time —
    /// the radio transmitted, the receiver missed it — so loss does not
    /// shorten head-of-line queueing for later messages. Delay faults add
    /// a uniformly drawn extra propagation delay up to the plan's
    /// `max_delay`.
    pub fn send_lossy(&mut self, now: SimTime, payload_bytes: usize) -> Option<SimTime> {
        let delivered = self.send(now, payload_bytes);
        let (Some(plan), Some(rng)) = (self.faults.as_ref(), self.fault_rng.as_mut()) else {
            return Some(delivered);
        };
        if plan.drop_send > 0.0 && rng.next_f64() < plan.drop_send {
            self.dropped += 1;
            return None;
        }
        if plan.delay_send > 0.0 && rng.next_f64() < plan.delay_send && !plan.max_delay.is_zero() {
            let extra = plan.max_delay.as_secs_f64() * rng.next_f64();
            return Some(delivered + SimDuration::from_secs_f64(extra));
        }
        Some(delivered)
    }

    /// Number of messages sent.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Number of messages lost by [`SimLink::send_lossy`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total payload bytes sent.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Time at which the wire becomes free for the next transmission.
    pub fn wire_free_at(&self) -> SimTime {
        self.wire_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_message_matches_profile() {
        let profile = LinkProfile::ethernet_100();
        let mut link = SimLink::new(profile.clone());
        let delivered = link.send(SimTime::ZERO, 2048);
        let expect = profile.transfer_time(2048);
        assert_eq!(delivered.duration_since(SimTime::ZERO), expect);
    }

    #[test]
    fn burst_queues_on_the_wire() {
        let profile = LinkProfile::bluetooth_2_0();
        let mut link = SimLink::new(profile.clone());
        let first = link.send(SimTime::ZERO, 10_000);
        let second = link.send(SimTime::ZERO, 10_000);
        let gap = second.duration_since(first);
        // The second message waits a full transmission time behind the first.
        assert_eq!(gap, profile.transmission_time(10_000));
    }

    #[test]
    fn idle_link_does_not_queue() {
        let profile = LinkProfile::wlan_802_11b();
        let mut link = SimLink::new(profile.clone());
        let t1 = link.send(SimTime::ZERO, 100);
        // Send long after the first transmission completed.
        let later = SimTime::from_nanos(10_000_000_000);
        let t2 = link.send(later, 100);
        assert_eq!(t2.duration_since(later), profile.transfer_time(100));
        assert!(t1 < later);
    }

    #[test]
    fn accounting_tracks_traffic() {
        let mut link = SimLink::new(LinkProfile::loopback());
        link.send(SimTime::ZERO, 10);
        link.send(SimTime::ZERO, 20);
        assert_eq!(link.messages(), 2);
        assert_eq!(link.bytes(), 30);
    }

    #[test]
    fn lossy_link_drops_deterministically() {
        let run = |seed: u64| {
            let plan = FaultPlan::seeded(seed).with_send_drop(0.25);
            let mut link = SimLink::with_faults(LinkProfile::wlan_802_11b(), plan);
            let outcomes: Vec<bool> = (0..200)
                .map(|_| link.send_lossy(SimTime::ZERO, 128).is_some())
                .collect();
            (outcomes, link.dropped(), link.messages())
        };
        let (a, dropped_a, messages_a) = run(11);
        let (b, dropped_b, _) = run(11);
        assert_eq!(a, b);
        assert_eq!(dropped_a, dropped_b);
        assert!(dropped_a > 20 && dropped_a < 80, "~25% of 200: {dropped_a}");
        // Lost frames still count as transmitted: they occupied the wire.
        assert_eq!(messages_a, 200);
        let (c, _, _) = run(12);
        assert_ne!(a, c);
    }

    #[test]
    fn faultless_lossy_send_matches_plain_send() {
        let profile = LinkProfile::ethernet_100();
        let mut plain = SimLink::new(profile.clone());
        let mut lossy = SimLink::with_faults(profile, FaultPlan::none());
        for i in 0..20 {
            let t = plain.send(SimTime::ZERO, 100 * i);
            assert_eq!(lossy.send_lossy(SimTime::ZERO, 100 * i), Some(t));
        }
        assert_eq!(lossy.dropped(), 0);
    }

    #[test]
    fn jittered_link_is_deterministic_per_seed() {
        let profile = LinkProfile::wlan_802_11b();
        let mut a = SimLink::with_jitter(profile.clone(), SimRng::seed_from(3));
        let mut b = SimLink::with_jitter(profile, SimRng::seed_from(3));
        for i in 0..20 {
            assert_eq!(
                a.send(SimTime::ZERO, 100 * i),
                b.send(SimTime::ZERO, 100 * i)
            );
        }
    }
}
