//! Simulated links with queueing.
//!
//! [`SimLink`] wraps a [`LinkProfile`] with a serialization queue: a message
//! cannot begin transmission until the previous one has left the sender, so
//! bursts of messages experience head-of-line delay exactly as on a real
//! half-duplex radio or a single TCP connection. The benchmark harness uses
//! one `SimLink` per direction per connection.

use alfredo_sim::{SimDuration, SimRng, SimTime};

use crate::profile::LinkProfile;

/// A directed link with FIFO serialization and the delay model of a
/// [`LinkProfile`].
///
/// # Example
///
/// ```
/// use alfredo_net::{LinkProfile, SimLink};
/// use alfredo_sim::SimTime;
///
/// let mut link = SimLink::new(LinkProfile::ethernet_100());
/// let a = link.send(SimTime::ZERO, 1000);
/// let b = link.send(SimTime::ZERO, 1000);
/// // The second message queues behind the first on the wire.
/// assert!(b > a);
/// ```
#[derive(Debug, Clone)]
pub struct SimLink {
    profile: LinkProfile,
    wire_free: SimTime,
    messages: u64,
    bytes: u64,
    rng: Option<SimRng>,
}

impl SimLink {
    /// Creates a link with no jitter applied (deterministic delays).
    pub fn new(profile: LinkProfile) -> Self {
        SimLink {
            profile,
            wire_free: SimTime::ZERO,
            messages: 0,
            bytes: 0,
            rng: None,
        }
    }

    /// Creates a link that applies the profile's jitter using `rng`.
    pub fn with_jitter(profile: LinkProfile, rng: SimRng) -> Self {
        SimLink {
            rng: Some(rng),
            ..SimLink::new(profile)
        }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// Sends `payload_bytes` at `now`; returns the delivery time at the
    /// receiver. Transmission starts when the wire is free (FIFO).
    pub fn send(&mut self, now: SimTime, payload_bytes: usize) -> SimTime {
        let start = self.wire_free.max(now);
        let tx = self.profile.transmission_time(payload_bytes);
        self.wire_free = start + tx;
        let prop = match &mut self.rng {
            Some(rng) => {
                // Jitter applies to propagation (interference, retries).
                let base = self.profile.latency();
                let factor = 1.0 + rng.next_f64() * self.profile.jitter_frac();
                SimDuration::from_secs_f64(base.as_secs_f64() * factor)
            }
            None => self.profile.latency(),
        };
        self.messages += 1;
        self.bytes += payload_bytes as u64;
        self.wire_free + prop
    }

    /// Number of messages sent.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total payload bytes sent.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Time at which the wire becomes free for the next transmission.
    pub fn wire_free_at(&self) -> SimTime {
        self.wire_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_message_matches_profile() {
        let profile = LinkProfile::ethernet_100();
        let mut link = SimLink::new(profile.clone());
        let delivered = link.send(SimTime::ZERO, 2048);
        let expect = profile.transfer_time(2048);
        assert_eq!(delivered.duration_since(SimTime::ZERO), expect);
    }

    #[test]
    fn burst_queues_on_the_wire() {
        let profile = LinkProfile::bluetooth_2_0();
        let mut link = SimLink::new(profile.clone());
        let first = link.send(SimTime::ZERO, 10_000);
        let second = link.send(SimTime::ZERO, 10_000);
        let gap = second.duration_since(first);
        // The second message waits a full transmission time behind the first.
        assert_eq!(gap, profile.transmission_time(10_000));
    }

    #[test]
    fn idle_link_does_not_queue() {
        let profile = LinkProfile::wlan_802_11b();
        let mut link = SimLink::new(profile.clone());
        let t1 = link.send(SimTime::ZERO, 100);
        // Send long after the first transmission completed.
        let later = SimTime::from_nanos(10_000_000_000);
        let t2 = link.send(later, 100);
        assert_eq!(t2.duration_since(later), profile.transfer_time(100));
        assert!(t1 < later);
    }

    #[test]
    fn accounting_tracks_traffic() {
        let mut link = SimLink::new(LinkProfile::loopback());
        link.send(SimTime::ZERO, 10);
        link.send(SimTime::ZERO, 20);
        assert_eq!(link.messages(), 2);
        assert_eq!(link.bytes(), 30);
    }

    #[test]
    fn jittered_link_is_deterministic_per_seed() {
        let profile = LinkProfile::wlan_802_11b();
        let mut a = SimLink::with_jitter(profile.clone(), SimRng::seed_from(3));
        let mut b = SimLink::with_jitter(profile, SimRng::seed_from(3));
        for i in 0..20 {
            assert_eq!(
                a.send(SimTime::ZERO, 100 * i),
                b.send(SimTime::ZERO, 100 * i)
            );
        }
    }
}
