//! Connection-oriented transports.
//!
//! The R-OSGi layer is written against the [`Transport`] trait, so the same
//! protocol code runs over any medium. The crate ships [`InMemoryNetwork`],
//! a loopback "fabric" in which peers bind listeners under a [`PeerAddr`]
//! and dial each other; each accepted connection yields a pair of reliable,
//! ordered, frame-based channels — the moral equivalent of loopback TCP.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use alfredo_sync::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use alfredo_sync::Mutex;
use std::collections::HashMap;

/// A network endpoint address, e.g. `"r-osgi://shop-screen:9278"`.
///
/// Addresses are opaque strings; the in-memory fabric treats them as lookup
/// keys, mirroring how R-OSGi uses URI-style service locations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerAddr(String);

impl PeerAddr {
    /// Creates an address from any string-like value.
    pub fn new(addr: impl Into<String>) -> Self {
        PeerAddr(addr.into())
    }

    /// The address as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PeerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for PeerAddr {
    fn from(s: &str) -> Self {
        PeerAddr::new(s)
    }
}

impl From<String> for PeerAddr {
    fn from(s: String) -> Self {
        PeerAddr::new(s)
    }
}

/// Errors reported by transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The connection is closed (locally or by the peer).
    Closed,
    /// A blocking receive timed out.
    Timeout,
    /// No listener is bound at the dialed address.
    ConnectionRefused(PeerAddr),
    /// An address is already bound by another listener.
    AddressInUse(PeerAddr),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => write!(f, "connection closed"),
            TransportError::Timeout => write!(f, "receive timed out"),
            TransportError::ConnectionRefused(addr) => {
                write!(f, "connection refused: no listener at {addr}")
            }
            TransportError::AddressInUse(addr) => write!(f, "address already in use: {addr}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Why a transport stopped working, when the implementation knows.
///
/// Most transports cannot always tell (a peer vanishing behind a dead
/// radio looks like silence), so [`CloseReason::Unknown`] is the default;
/// implementations that *do* know override [`Transport::close_reason`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CloseReason {
    /// Not closed yet, or the implementation cannot say.
    #[default]
    Unknown,
    /// Closed by a local `close()` call.
    Local,
    /// The peer ended the connection (EOF / clean shutdown).
    Peer,
    /// The byte stream violated the framing protocol (e.g. an impossible
    /// length prefix) and the connection was torn down defensively.
    CorruptStream,
    /// An underlying I/O error ended the connection.
    Io,
}

impl fmt::Display for CloseReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CloseReason::Unknown => "unknown",
            CloseReason::Local => "closed locally",
            CloseReason::Peer => "closed by peer",
            CloseReason::CorruptStream => "corrupt stream",
            CloseReason::Io => "i/o error",
        };
        f.write_str(s)
    }
}

enum Packet {
    Frame(Vec<u8>),
    Fin,
}

/// A push-mode consumer of inbound frames, installed with
/// [`Transport::set_sink`].
///
/// Reactor-backed transports deliver frames by *calling* the sink from an
/// I/O thread instead of queueing them for a blocking `recv()` — this is
/// what lets one I/O thread serve thousands of connections without a
/// reader thread per peer. Implementations must uphold:
///
/// * `on_frame` is called once per frame, in arrival order, from one
///   thread at a time (calls are serialized, though not necessarily from
///   the same OS thread over the connection's lifetime).
/// * `on_close` is called exactly once, after the final `on_frame`, no
///   matter how the connection ends (peer EOF, I/O error, corrupt stream,
///   or local `close()`).
/// * Callbacks run on a shared I/O thread: they may send on any transport
///   and may take locks, but must never block waiting for *another* frame
///   to arrive (that frame could only be delivered by the thread that is
///   blocked).
pub trait FrameSink: Send {
    /// One inbound frame, in order.
    fn on_frame(&mut self, frame: Vec<u8>);
    /// The connection is finished; no more frames will be delivered.
    fn on_close(&mut self);
}

/// A reliable, ordered, frame-based connection endpoint.
///
/// All methods are usable from multiple threads through a shared reference;
/// implementations must be internally synchronized.
pub trait Transport: Send + Sync {
    /// Sends one frame to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the connection is closed.
    fn send(&self, frame: Vec<u8>) -> Result<(), TransportError>;

    /// Receives the next frame, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] once the connection is closed and
    /// drained.
    fn recv(&self) -> Result<Vec<u8>, TransportError>;

    /// Receives the next frame, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Timeout`] if no frame arrives in time, or
    /// [`TransportError::Closed`] once the connection is closed and drained.
    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError>;

    /// Receives a frame if one is already queued.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] once the connection is closed and
    /// drained.
    fn try_recv(&self) -> Result<Option<Vec<u8>>, TransportError>;

    /// Closes the connection. Idempotent; the peer observes
    /// [`TransportError::Closed`] after draining in-flight frames.
    fn close(&self);

    /// Returns `true` once the connection is closed (either side).
    fn is_closed(&self) -> bool;

    /// Why the connection stopped, when the implementation knows.
    ///
    /// Defaults to [`CloseReason::Unknown`]; meaningful only once
    /// [`Transport::is_closed`] returns `true`.
    fn close_reason(&self) -> CloseReason {
        CloseReason::Unknown
    }

    /// The address of the remote peer.
    fn peer_addr(&self) -> &PeerAddr;

    /// The address of the local endpoint.
    fn local_addr(&self) -> &PeerAddr;

    /// Switches the transport from pull mode (`recv*`) to push mode: all
    /// frames not yet consumed, and every future frame, are delivered to
    /// `sink` in order, and `sink.on_close` fires exactly once when the
    /// connection ends.
    ///
    /// Returns `false` (the default) when the transport has no readiness
    /// machinery to drive a sink — the caller should keep a reader thread.
    /// After a `true` return the `recv*` methods must no longer be used.
    fn set_sink(&self, sink: Box<dyn FrameSink>) -> bool {
        drop(sink);
        false
    }
}

/// One half of an in-memory connection.
pub struct ChannelTransport {
    tx: Sender<Packet>,
    rx: Receiver<Packet>,
    /// Sender into our own receive queue, used to wake a blocked local
    /// `recv` when we close the connection ourselves.
    self_tx: Sender<Packet>,
    closed: Arc<AtomicBool>,
    local: PeerAddr,
    peer: PeerAddr,
}

impl fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("local", &self.local)
            .field("peer", &self.peer)
            .field("closed", &self.is_closed())
            .finish()
    }
}

impl ChannelTransport {
    fn handle_packet(&self, packet: Packet) -> Result<Option<Vec<u8>>, TransportError> {
        match packet {
            Packet::Frame(frame) => Ok(Some(frame)),
            Packet::Fin => {
                self.closed.store(true, Ordering::SeqCst);
                Err(TransportError::Closed)
            }
        }
    }
}

impl Transport for ChannelTransport {
    fn send(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Closed);
        }
        self.tx
            .send(Packet::Frame(frame))
            .map_err(|_| TransportError::Closed)
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        match self.rx.recv() {
            Ok(p) => self.handle_packet(p).map(|f| f.expect("Frame variant")),
            Err(_) => Err(TransportError::Closed),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(p) => self.handle_packet(p).map(|f| f.expect("Frame variant")),
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn try_recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
        match self.rx.try_recv() {
            Ok(p) => self.handle_packet(p),
            Err(TryRecvError::Empty) => {
                if self.closed.load(Ordering::SeqCst) {
                    Err(TransportError::Closed)
                } else {
                    Ok(None)
                }
            }
            Err(TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn close(&self) {
        if !self.closed.swap(true, Ordering::SeqCst) {
            // Best effort: tell the peer. Ignore failure if it's gone.
            let _ = self.tx.send(Packet::Fin);
        }
        // Always wake our own reader too: the peer may never reply (e.g.
        // it learned of the shared close flag and skips its own Fin).
        let _ = self.self_tx.send(Packet::Fin);
    }

    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    fn peer_addr(&self) -> &PeerAddr {
        &self.peer
    }

    fn local_addr(&self) -> &PeerAddr {
        &self.local
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        self.close();
    }
}

/// A bound listener from which incoming connections are accepted.
pub struct Listener {
    addr: PeerAddr,
    incoming: Receiver<ChannelTransport>,
    network: InMemoryNetwork,
}

impl fmt::Debug for Listener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Listener")
            .field("addr", &self.addr)
            .finish()
    }
}

impl Listener {
    /// The bound address.
    pub fn addr(&self) -> &PeerAddr {
        &self.addr
    }

    /// Blocks until a connection arrives.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the listener was unbound.
    pub fn accept(&self) -> Result<ChannelTransport, TransportError> {
        self.incoming.recv().map_err(|_| TransportError::Closed)
    }

    /// Waits up to `timeout` for a connection.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Timeout`] or [`TransportError::Closed`].
    pub fn accept_timeout(&self, timeout: Duration) -> Result<ChannelTransport, TransportError> {
        match self.incoming.recv_timeout(timeout) {
            Ok(t) => Ok(t),
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    /// Accepts a connection if one is already pending.
    pub fn try_accept(&self) -> Option<ChannelTransport> {
        self.incoming.try_recv().ok()
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.network.unbind(&self.addr);
    }
}

/// An in-process network fabric: a namespace of listeners plus a dialer.
///
/// Cloning is cheap; clones share the same namespace.
///
/// # Example
///
/// ```
/// use alfredo_net::{InMemoryNetwork, PeerAddr, Transport};
///
/// # fn main() -> Result<(), alfredo_net::TransportError> {
/// let net = InMemoryNetwork::new();
/// let listener = net.bind(PeerAddr::new("screen"))?;
/// let client = net.connect(PeerAddr::new("phone"), PeerAddr::new("screen"))?;
/// let server = listener.accept()?;
///
/// client.send(b"hello".to_vec())?;
/// assert_eq!(server.recv()?, b"hello");
/// assert_eq!(server.peer_addr().as_str(), "phone");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default)]
pub struct InMemoryNetwork {
    listeners: Arc<Mutex<HashMap<PeerAddr, Sender<ChannelTransport>>>>,
}

impl fmt::Debug for InMemoryNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InMemoryNetwork")
            .field("listeners", &self.listeners.lock().len())
            .finish()
    }
}

impl InMemoryNetwork {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        InMemoryNetwork::default()
    }

    /// Binds a listener at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::AddressInUse`] if the address is taken.
    pub fn bind(&self, addr: PeerAddr) -> Result<Listener, TransportError> {
        let mut listeners = self.listeners.lock();
        if listeners.contains_key(&addr) {
            return Err(TransportError::AddressInUse(addr));
        }
        let (tx, rx) = channel::unbounded();
        listeners.insert(addr.clone(), tx);
        Ok(Listener {
            addr,
            incoming: rx,
            network: self.clone(),
        })
    }

    /// Dials the listener at `to`, identifying as `from`. Returns the client
    /// half; the server half is delivered to the listener's accept queue.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::ConnectionRefused`] if nothing is bound at
    /// `to`.
    pub fn connect(
        &self,
        from: PeerAddr,
        to: PeerAddr,
    ) -> Result<ChannelTransport, TransportError> {
        let listeners = self.listeners.lock();
        let acceptor = listeners
            .get(&to)
            .ok_or_else(|| TransportError::ConnectionRefused(to.clone()))?;
        let (c2s_tx, c2s_rx) = channel::unbounded();
        let (s2c_tx, s2c_rx) = channel::unbounded();
        let closed = Arc::new(AtomicBool::new(false));
        let client = ChannelTransport {
            tx: c2s_tx.clone(),
            rx: s2c_rx,
            self_tx: s2c_tx.clone(),
            closed: Arc::clone(&closed),
            local: from.clone(),
            peer: to.clone(),
        };
        let server = ChannelTransport {
            tx: s2c_tx,
            rx: c2s_rx,
            self_tx: c2s_tx,
            closed,
            local: to,
            peer: from,
        };
        acceptor
            .send(server)
            .map_err(|_| TransportError::ConnectionRefused(client.peer.clone()))?;
        Ok(client)
    }

    /// Returns the addresses currently bound.
    pub fn bound_addrs(&self) -> Vec<PeerAddr> {
        let mut addrs: Vec<PeerAddr> = self.listeners.lock().keys().cloned().collect();
        addrs.sort();
        addrs
    }

    fn unbind(&self, addr: &PeerAddr) {
        self.listeners.lock().remove(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn pair(net: &InMemoryNetwork, name: &str) -> (ChannelTransport, ChannelTransport) {
        let listener = net.bind(PeerAddr::new(name)).unwrap();
        let client = net
            .connect(PeerAddr::new("client"), PeerAddr::new(name))
            .unwrap();
        let server = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn frames_arrive_in_order() {
        let net = InMemoryNetwork::new();
        let (client, server) = pair(&net, "ordered");
        for i in 0..100u8 {
            client.send(vec![i]).unwrap();
        }
        for i in 0..100u8 {
            assert_eq!(server.recv().unwrap(), vec![i]);
        }
    }

    #[test]
    fn bidirectional_traffic() {
        let net = InMemoryNetwork::new();
        let (client, server) = pair(&net, "bidi");
        client.send(b"ping".to_vec()).unwrap();
        assert_eq!(server.recv().unwrap(), b"ping");
        server.send(b"pong".to_vec()).unwrap();
        assert_eq!(client.recv().unwrap(), b"pong");
    }

    #[test]
    fn close_is_observed_by_peer() {
        let net = InMemoryNetwork::new();
        let (client, server) = pair(&net, "close");
        client.send(b"last".to_vec()).unwrap();
        client.close();
        // In-flight frame is still delivered, then Closed.
        assert_eq!(server.recv().unwrap(), b"last");
        assert_eq!(server.recv().unwrap_err(), TransportError::Closed);
        assert_eq!(
            client.send(b"x".to_vec()).unwrap_err(),
            TransportError::Closed
        );
    }

    #[test]
    fn recv_timeout_elapses() {
        let net = InMemoryNetwork::new();
        let (_client, server) = pair(&net, "timeout");
        let err = server.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, TransportError::Timeout);
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let net = InMemoryNetwork::new();
        let (client, server) = pair(&net, "try");
        assert_eq!(server.try_recv().unwrap(), None);
        client.send(vec![7]).unwrap();
        assert_eq!(server.try_recv().unwrap(), Some(vec![7]));
    }

    #[test]
    fn connect_to_unbound_addr_is_refused() {
        let net = InMemoryNetwork::new();
        let err = net
            .connect(PeerAddr::new("a"), PeerAddr::new("nowhere"))
            .unwrap_err();
        assert!(matches!(err, TransportError::ConnectionRefused(_)));
    }

    #[test]
    fn double_bind_is_rejected() {
        let net = InMemoryNetwork::new();
        let _l = net.bind(PeerAddr::new("dup")).unwrap();
        assert!(matches!(
            net.bind(PeerAddr::new("dup")),
            Err(TransportError::AddressInUse(_))
        ));
    }

    #[test]
    fn dropping_listener_unbinds() {
        let net = InMemoryNetwork::new();
        {
            let _l = net.bind(PeerAddr::new("temp")).unwrap();
            assert_eq!(net.bound_addrs().len(), 1);
        }
        assert!(net.bound_addrs().is_empty());
        // And the address can be rebound.
        let _l2 = net.bind(PeerAddr::new("temp")).unwrap();
    }

    #[test]
    fn addresses_are_reported() {
        let net = InMemoryNetwork::new();
        let (client, server) = pair(&net, "addrs");
        assert_eq!(client.local_addr().as_str(), "client");
        assert_eq!(client.peer_addr().as_str(), "addrs");
        assert_eq!(server.local_addr().as_str(), "addrs");
        assert_eq!(server.peer_addr().as_str(), "client");
    }

    #[test]
    fn cross_thread_traffic() {
        let net = InMemoryNetwork::new();
        let listener = net.bind(PeerAddr::new("srv")).unwrap();
        let handle = thread::spawn(move || {
            let server = listener.accept().unwrap();
            while let Ok(frame) = server.recv() {
                let mut reply = frame;
                reply.reverse();
                server.send(reply).unwrap();
            }
        });
        let client = net
            .connect(PeerAddr::new("cli"), PeerAddr::new("srv"))
            .unwrap();
        client.send(vec![1, 2, 3]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![3, 2, 1]);
        client.close();
        handle.join().unwrap();
    }

    #[test]
    fn multiple_connections_to_one_listener() {
        let net = InMemoryNetwork::new();
        let listener = net.bind(PeerAddr::new("hub")).unwrap();
        let c1 = net
            .connect(PeerAddr::new("p1"), PeerAddr::new("hub"))
            .unwrap();
        let c2 = net
            .connect(PeerAddr::new("p2"), PeerAddr::new("hub"))
            .unwrap();
        let s1 = listener.accept().unwrap();
        let s2 = listener.accept().unwrap();
        c1.send(b"one".to_vec()).unwrap();
        c2.send(b"two".to_vec()).unwrap();
        assert_eq!(s1.recv().unwrap(), b"one");
        assert_eq!(s2.recv().unwrap(), b"two");
        assert_eq!(s1.peer_addr().as_str(), "p1");
        assert_eq!(s2.peer_addr().as_str(), "p2");
    }
}
