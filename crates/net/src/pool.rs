//! A shared free-list of frame buffers.
//!
//! Every R-OSGi frame used to be encoded into a fresh `Vec<u8>` and the
//! received copy dropped after decoding — two heap round-trips per
//! message. A [`BufferPool`] lets both ends of a connection circulate a
//! small set of buffers instead: the sender checks a buffer out with
//! [`ByteWriter::with_pool`](crate::ByteWriter::with_pool), the frame
//! travels, and the receiver returns the spent frame with
//! [`BufferPool::give`]. In steady-state request/response traffic each
//! side receives about as many frames as it sends, so the send path is
//! served entirely from recycled buffers and the invoke fast path
//! performs **zero frame allocations** after warmup.
//!
//! The pool is deliberately simple — a mutex-guarded LIFO stack. Frames
//! are small (an invocation is tens of bytes) and checkout happens once
//! per frame, so a lock-free design would buy nothing measurable; the
//! contention killer in the invoke path is the call table, which is
//! sharded separately.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use alfredo_sync::Mutex;

/// Default maximum number of buffers retained by a pool.
pub const DEFAULT_MAX_POOLED: usize = 64;
/// Default per-buffer capacity above which a returned buffer is dropped
/// instead of retained (keeps one huge stream frame from pinning memory).
pub const DEFAULT_MAX_RETAINED_CAPACITY: usize = 256 * 1024;

/// Counters describing how effective a pool has been.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from a recycled buffer.
    pub hits: u64,
    /// Checkouts that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub returns: u64,
    /// Total capacity (bytes) of buffers handed out from the free list —
    /// heap traffic avoided compared to allocating each frame.
    pub bytes_reused: u64,
}

/// A shared free-list of byte buffers. Cheap to clone via [`Arc`];
/// all methods take `&self`.
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    max_pooled: usize,
    max_retained_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    bytes_reused: AtomicU64,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::with_limits(DEFAULT_MAX_POOLED, DEFAULT_MAX_RETAINED_CAPACITY)
    }
}

impl fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferPool")
            .field("pooled", &self.free.lock().len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool with default limits, ready to share via `Arc`.
    pub fn new() -> Arc<BufferPool> {
        Arc::new(BufferPool::default())
    }

    /// Creates a pool retaining at most `max_pooled` buffers, dropping
    /// returned buffers whose capacity exceeds `max_retained_capacity`.
    pub fn with_limits(max_pooled: usize, max_retained_capacity: usize) -> BufferPool {
        BufferPool {
            free: Mutex::new(Vec::new()),
            max_pooled,
            max_retained_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            returns: AtomicU64::new(0),
            bytes_reused: AtomicU64::new(0),
        }
    }

    /// Checks a cleared buffer out of the pool, allocating only when the
    /// free list is empty.
    pub fn take(&self) -> Vec<u8> {
        let buf = self.free.lock().pop();
        match buf {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_reused
                    .fetch_add(buf.capacity() as u64, Ordering::Relaxed);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Returns a spent buffer to the pool. The buffer is cleared (its
    /// capacity retained) unless the pool is full or the buffer exceeds
    /// the retained-capacity limit, in which case it is simply dropped.
    pub fn give(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > self.max_retained_capacity {
            return;
        }
        buf.clear();
        let mut free = self.free.lock();
        if free.len() < self.max_pooled {
            free.push(buf);
            self.returns.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Buffers currently waiting in the free list.
    pub fn pooled(&self) -> usize {
        self.free.lock().len()
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
            bytes_reused: self.bytes_reused.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ByteWriter;

    #[test]
    fn buffers_circulate() {
        let pool = BufferPool::new();
        let mut w = ByteWriter::with_pool(&pool);
        w.put_str("hello");
        let frame = w.into_bytes();
        assert_eq!(pool.stats().misses, 1);
        pool.give(frame);
        assert_eq!(pool.pooled(), 1);

        let mut w = ByteWriter::with_pool(&pool);
        w.put_str("world");
        let stats = pool.stats();
        assert_eq!(stats.hits, 1);
        assert!(stats.bytes_reused > 0);
        drop(w); // never detached: the writer's buffer returns on drop
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn pooled_writer_output_matches_plain_writer() {
        let pool = BufferPool::new();
        // Prime the pool with a dirty buffer.
        pool.give(b"leftover garbage".to_vec());
        let mut plain = ByteWriter::new();
        let mut pooled = ByteWriter::with_pool(&pool);
        for w in [&mut plain, &mut pooled] {
            w.put_varint(300);
            w.put_str("MouseController");
            w.put_bool(true);
        }
        assert_eq!(plain.as_slice(), pooled.as_slice());
    }

    #[test]
    fn oversized_and_excess_buffers_are_dropped() {
        let pool = BufferPool::with_limits(2, 64);
        pool.give(Vec::with_capacity(1024)); // over capacity limit
        assert_eq!(pool.pooled(), 0);
        pool.give(Vec::with_capacity(16));
        pool.give(Vec::with_capacity(16));
        pool.give(Vec::with_capacity(16)); // pool full
        assert_eq!(pool.pooled(), 2);
        // Empty buffers are worthless; don't count them as returns.
        pool.give(Vec::new());
        assert_eq!(pool.pooled(), 2);
        assert_eq!(pool.stats().returns, 2);
    }
}
