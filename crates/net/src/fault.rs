//! Deterministic fault injection for transports.
//!
//! AlfredO targets spontaneous interaction over flaky WLAN/Bluetooth links,
//! so the failure modes of the wire — loss, reordering-by-duplication,
//! corruption, latency spikes, partitions — must be first-class and
//! *reproducible*. [`FaultyTransport`] wraps any [`Transport`] and perturbs
//! traffic according to a [`FaultPlan`] driven by a seeded
//! [`alfredo_sim::SimRng`]: the same seed over the same traffic
//! produces the same faults, so chaos tests are deterministic.
//!
//! A [`PartitionHandle`] lets a test sever the link mid-flight and heal it
//! later; while partitioned the link black-holes frames in both directions
//! (the sender cannot tell a partition from a slow network, exactly as on a
//! real radio link).
//!
//! An empty plan ([`FaultPlan::none`]) is a byte-identical passthrough —
//! verified by property tests — so the wrapper can stay in place in
//! fault-free runs.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use alfredo_sim::SimRng;
use alfredo_sync::Mutex;

use crate::transport::{CloseReason, FrameSink, PeerAddr, Transport, TransportError};

/// How often a blocked `recv` re-checks the partition flag.
const RECV_POLL: Duration = Duration::from_millis(20);

/// A seeded description of the faults to inject on one transport.
///
/// All probabilities are per-frame and independent. Send-side faults apply
/// to frames leaving through the wrapped transport, receive-side faults to
/// frames arriving from it — wrap each side of a connection with its own
/// plan to model asymmetric links.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault RNG. Same seed + same traffic = same faults.
    pub seed: u64,
    /// Probability a sent frame is silently dropped.
    pub drop_send: f64,
    /// Probability a received frame is silently dropped.
    pub drop_recv: f64,
    /// Probability a sent frame is delivered twice.
    pub duplicate_send: f64,
    /// Probability one byte of a sent frame is flipped.
    pub corrupt_send: f64,
    /// Probability a sent frame is delayed before transmission.
    pub delay_send: f64,
    /// Upper bound for injected delays (uniformly drawn).
    pub max_delay: Duration,
}

impl FaultPlan {
    /// A plan that injects nothing: the wrapper becomes a passthrough.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_send: 0.0,
            drop_recv: 0.0,
            duplicate_send: 0.0,
            corrupt_send: 0.0,
            delay_send: 0.0,
            max_delay: Duration::ZERO,
        }
    }

    /// An empty plan with a fault RNG seed; combine with the `with_*`
    /// builders to enable individual fault classes.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Sets the probability of dropping a sent frame.
    #[must_use]
    pub fn with_send_drop(mut self, p: f64) -> Self {
        self.drop_send = p;
        self
    }

    /// Sets the probability of dropping a received frame.
    #[must_use]
    pub fn with_recv_drop(mut self, p: f64) -> Self {
        self.drop_recv = p;
        self
    }

    /// Sets the probability of duplicating a sent frame.
    #[must_use]
    pub fn with_duplicates(mut self, p: f64) -> Self {
        self.duplicate_send = p;
        self
    }

    /// Sets the probability of corrupting one byte of a sent frame.
    #[must_use]
    pub fn with_corruption(mut self, p: f64) -> Self {
        self.corrupt_send = p;
        self
    }

    /// Sets the probability and upper bound of delaying a sent frame.
    #[must_use]
    pub fn with_delay(mut self, p: f64, max: Duration) -> Self {
        self.delay_send = p;
        self.max_delay = max;
        self
    }

    /// `true` when the plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.drop_send == 0.0
            && self.drop_recv == 0.0
            && self.duplicate_send == 0.0
            && self.corrupt_send == 0.0
            && self.delay_send == 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// A shared switch that severs and heals a [`FaultyTransport`]'s link.
///
/// Cloneable; all clones control the same partition. While partitioned the
/// transport black-holes traffic in both directions — sends still return
/// `Ok` (the sender cannot observe a partition) and receives deliver
/// nothing.
#[derive(Clone, Default)]
pub struct PartitionHandle {
    partitioned: Arc<AtomicBool>,
}

impl PartitionHandle {
    /// Creates a healed (connected) handle.
    pub fn new() -> Self {
        PartitionHandle::default()
    }

    /// Severs the link.
    pub fn partition(&self) {
        self.partitioned.store(true, Ordering::SeqCst);
    }

    /// Restores the link.
    pub fn heal(&self) {
        self.partitioned.store(false, Ordering::SeqCst);
    }

    /// Whether the link is currently severed.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned.load(Ordering::SeqCst)
    }
}

impl fmt::Debug for PartitionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PartitionHandle")
            .field("partitioned", &self.is_partitioned())
            .finish()
    }
}

/// A shared knob that adds a fixed send delay to a [`FaultyTransport`]
/// at runtime — the link-degradation counterpart of [`PartitionHandle`].
///
/// A [`FaultPlan`] is immutable once the transport is built, which keeps
/// chaos runs reproducible but means a test cannot *change* link quality
/// mid-session. `DelayHandle` covers that: cloneable, all clones control
/// the same delay, and setting it to a non-zero duration makes every
/// subsequent send sleep that long before transmission (the frame still
/// arrives — this models a slow link, not a lossy one). Applies to the
/// send side only; wrap each half of a connection to delay both ways.
#[derive(Clone, Default)]
pub struct DelayHandle {
    micros: Arc<AtomicU64>,
}

impl DelayHandle {
    /// Creates a handle with no delay.
    pub fn new() -> Self {
        DelayHandle::default()
    }

    /// Degrades the link: every send now sleeps `delay` first.
    pub fn set_delay(&self, delay: Duration) {
        self.micros.store(
            delay.as_micros().min(u64::MAX as u128) as u64,
            Ordering::SeqCst,
        );
    }

    /// Restores the link to full speed.
    pub fn clear(&self) {
        self.micros.store(0, Ordering::SeqCst);
    }

    /// The currently configured delay, if any.
    pub fn delay(&self) -> Option<Duration> {
        match self.micros.load(Ordering::SeqCst) {
            0 => None,
            us => Some(Duration::from_micros(us)),
        }
    }
}

impl fmt::Debug for DelayHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DelayHandle")
            .field("delay", &self.delay())
            .finish()
    }
}

#[derive(Debug, Default)]
struct FaultCounters {
    dropped: AtomicU64,
    duplicated: AtomicU64,
    corrupted: AtomicU64,
    delayed: AtomicU64,
    blackholed: AtomicU64,
}

/// A snapshot of the faults a [`FaultyTransport`] has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames silently dropped (send or receive side).
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames with a flipped byte.
    pub corrupted: u64,
    /// Frames held back by an injected delay.
    pub delayed: u64,
    /// Frames swallowed by an active partition.
    pub blackholed: u64,
}

/// Receive-side fault state, shared between the wrapper and any
/// [`FrameSink`] installed through it (the reactor's push-mode delivery
/// runs the same partition/drop filter as the pull-mode `recv*` path).
struct RecvCore {
    plan: FaultPlan,
    recv_rng: Mutex<SimRng>,
    partition: PartitionHandle,
    delay: DelayHandle,
    counters: FaultCounters,
    peer: PeerAddr,
}

impl RecvCore {
    /// Counts one injected fault and announces it on the structured
    /// event hub (`net.fault` / `inject`), so chaos tests can assert on
    /// the exact faults a run suffered.
    fn note_fault(&self, kind: &'static str, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
        alfredo_obs::event("net.fault", "inject", || {
            vec![
                ("kind".to_string(), kind.to_string()),
                ("peer".to_string(), self.peer.to_string()),
            ]
        });
    }

    /// Applies receive-side faults: returns `None` if the frame is to be
    /// swallowed.
    fn filter_recv(&self, frame: Vec<u8>) -> Option<Vec<u8>> {
        if self.partition.is_partitioned() {
            self.note_fault("blackhole", &self.counters.blackholed);
            return None;
        }
        if self.plan.drop_recv > 0.0 && self.recv_rng.lock().next_f64() < self.plan.drop_recv {
            self.note_fault("drop", &self.counters.dropped);
            return None;
        }
        Some(frame)
    }
}

/// A sink wrapper that runs receive-side faults before forwarding.
struct FaultySink {
    core: Arc<RecvCore>,
    inner: Box<dyn FrameSink>,
}

impl FrameSink for FaultySink {
    fn on_frame(&mut self, frame: Vec<u8>) {
        if let Some(frame) = self.core.filter_recv(frame) {
            self.inner.on_frame(frame);
        }
    }

    fn on_close(&mut self) {
        self.inner.on_close();
    }
}

/// A [`Transport`] wrapper that injects faults per a [`FaultPlan`].
///
/// Fault decisions come from two seeded RNG streams (one per direction)
/// split from the plan's seed, so a single-threaded caller replaying the
/// same traffic sees the identical fault sequence. With concurrent senders
/// the *decisions* stay seeded but their assignment to frames follows
/// thread interleaving.
///
/// Composes over reactor-backed transports: [`Transport::set_sink`] is
/// forwarded with the receive-side filter (partition black-hole, seeded
/// drops) interposed at the non-blocking layer. Send-side faults are
/// applied before the frame reaches the wrapped transport either way.
/// Note that an injected *delay* sleeps on the sending thread.
pub struct FaultyTransport {
    inner: Box<dyn Transport>,
    send_rng: Mutex<SimRng>,
    recv: Arc<RecvCore>,
}

impl FaultyTransport {
    /// Wraps `inner` with a fresh (healed) partition handle.
    pub fn new(inner: Box<dyn Transport>, plan: FaultPlan) -> Self {
        FaultyTransport::with_partition(inner, plan, PartitionHandle::new())
    }

    /// Wraps `inner`, sharing `partition` — wrap both halves of a
    /// connection with clones of one handle to partition it atomically.
    pub fn with_partition(
        inner: Box<dyn Transport>,
        plan: FaultPlan,
        partition: PartitionHandle,
    ) -> Self {
        let mut root = SimRng::seed_from(plan.seed);
        let send_rng = root.split();
        let recv_rng = root.split();
        let peer = inner.peer_addr().clone();
        FaultyTransport {
            inner,
            send_rng: Mutex::new(send_rng),
            recv: Arc::new(RecvCore {
                plan,
                recv_rng: Mutex::new(recv_rng),
                partition,
                delay: DelayHandle::new(),
                counters: FaultCounters::default(),
                peer,
            }),
        }
    }

    /// A handle controlling this transport's partition state.
    pub fn partition_handle(&self) -> PartitionHandle {
        self.recv.partition.clone()
    }

    /// A handle controlling this transport's runtime send delay.
    pub fn delay_handle(&self) -> DelayHandle {
        self.recv.delay.clone()
    }

    /// The plan this transport injects.
    pub fn plan(&self) -> &FaultPlan {
        &self.recv.plan
    }

    /// Counters of the faults injected so far.
    pub fn stats(&self) -> FaultStats {
        let c = &self.recv.counters;
        FaultStats {
            dropped: c.dropped.load(Ordering::Relaxed),
            duplicated: c.duplicated.load(Ordering::Relaxed),
            corrupted: c.corrupted.load(Ordering::Relaxed),
            delayed: c.delayed.load(Ordering::Relaxed),
            blackholed: c.blackholed.load(Ordering::Relaxed),
        }
    }

    fn note_fault(&self, kind: &'static str, counter: &AtomicU64) {
        self.recv.note_fault(kind, counter);
    }

    fn filter_recv(&self, frame: Vec<u8>) -> Option<Vec<u8>> {
        self.recv.filter_recv(frame)
    }
}

impl fmt::Debug for FaultyTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyTransport")
            .field("plan", &self.recv.plan)
            .field("partitioned", &self.recv.partition.is_partitioned())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Transport for FaultyTransport {
    fn send(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        if self.recv.partition.is_partitioned() {
            if self.inner.is_closed() {
                return Err(TransportError::Closed);
            }
            // A partition black-holes traffic: the sender cannot tell it
            // from a slow network, so the send itself succeeds.
            self.note_fault("blackhole", &self.recv.counters.blackholed);
            return Ok(());
        }
        // The runtime delay knob sits outside the seeded plan (and its
        // noop shortcut): it models link *quality* changing mid-run, not
        // a reproducible fault draw.
        if let Some(d) = self.recv.delay.delay() {
            self.note_fault("delay", &self.recv.counters.delayed);
            std::thread::sleep(d);
        }
        if self.recv.plan.is_noop() {
            return self.inner.send(frame);
        }
        let mut frame = frame;
        let (duplicate, delay_for) = {
            let mut rng = self.send_rng.lock();
            if self.recv.plan.drop_send > 0.0 && rng.next_f64() < self.recv.plan.drop_send {
                self.note_fault("drop", &self.recv.counters.dropped);
                return Ok(());
            }
            let duplicate = self.recv.plan.duplicate_send > 0.0
                && rng.next_f64() < self.recv.plan.duplicate_send;
            if self.recv.plan.corrupt_send > 0.0
                && rng.next_f64() < self.recv.plan.corrupt_send
                && !frame.is_empty()
            {
                let idx = rng.next_below(frame.len() as u64) as usize;
                frame[idx] ^= 0xA5;
                self.note_fault("corrupt", &self.recv.counters.corrupted);
            }
            let delay_for = if self.recv.plan.delay_send > 0.0
                && rng.next_f64() < self.recv.plan.delay_send
                && !self.recv.plan.max_delay.is_zero()
            {
                Some(self.recv.plan.max_delay.mul_f64(rng.next_f64()))
            } else {
                None
            };
            (duplicate, delay_for)
        };
        if let Some(d) = delay_for {
            self.note_fault("delay", &self.recv.counters.delayed);
            std::thread::sleep(d);
        }
        if duplicate {
            self.note_fault("duplicate", &self.recv.counters.duplicated);
            self.inner.send(frame.clone())?;
        }
        self.inner.send(frame)
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        loop {
            // While partitioned, poll in short slices so frames arriving
            // mid-partition are swallowed promptly instead of queueing
            // for delivery after the heal. While healthy, block — every
            // frame still goes through `filter_recv` at delivery time,
            // so a partition engaged mid-wait swallows it all the same,
            // and the healthy path pays no timed-wait overhead.
            if self.recv.partition.is_partitioned() {
                match self.inner.recv_timeout(RECV_POLL) {
                    Ok(frame) => {
                        if let Some(frame) = self.filter_recv(frame) {
                            return Ok(frame);
                        }
                    }
                    Err(TransportError::Timeout) => continue,
                    Err(e) => return Err(e),
                }
                continue;
            }
            match self.inner.recv() {
                Ok(frame) => {
                    if let Some(frame) = self.filter_recv(frame) {
                        return Ok(frame);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(TransportError::Timeout);
            }
            let slice = if self.recv.partition.is_partitioned() {
                remaining.min(RECV_POLL)
            } else {
                remaining
            };
            match self.inner.recv_timeout(slice) {
                Ok(frame) => {
                    if let Some(frame) = self.filter_recv(frame) {
                        return Ok(frame);
                    }
                }
                Err(TransportError::Timeout) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn try_recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
        loop {
            match self.inner.try_recv()? {
                Some(frame) => {
                    if let Some(frame) = self.filter_recv(frame) {
                        return Ok(Some(frame));
                    }
                }
                None => return Ok(None),
            }
        }
    }

    fn close(&self) {
        self.inner.close();
    }

    fn is_closed(&self) -> bool {
        self.inner.is_closed()
    }

    fn close_reason(&self) -> CloseReason {
        self.inner.close_reason()
    }

    fn peer_addr(&self) -> &PeerAddr {
        self.inner.peer_addr()
    }

    fn local_addr(&self) -> &PeerAddr {
        self.inner.local_addr()
    }

    fn set_sink(&self, sink: Box<dyn FrameSink>) -> bool {
        self.inner.set_sink(Box::new(FaultySink {
            core: Arc::clone(&self.recv),
            inner: sink,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InMemoryNetwork;

    fn faulty_pair(plan: FaultPlan) -> (FaultyTransport, Box<dyn Transport>) {
        let net = InMemoryNetwork::new();
        let listener = net.bind(PeerAddr::new("srv")).unwrap();
        let client = net
            .connect(PeerAddr::new("cli"), PeerAddr::new("srv"))
            .unwrap();
        let server = listener.accept().unwrap();
        (
            FaultyTransport::new(Box::new(client), plan),
            Box::new(server),
        )
    }

    fn drain(server: &dyn Transport) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Ok(f) = server.recv_timeout(Duration::from_millis(50)) {
            out.push(f);
        }
        out
    }

    #[test]
    fn empty_plan_is_passthrough() {
        let (client, server) = faulty_pair(FaultPlan::none());
        for i in 0..32u8 {
            client.send(vec![i, i.wrapping_mul(3)]).unwrap();
        }
        let got = drain(server.as_ref());
        assert_eq!(got.len(), 32);
        for (i, f) in got.iter().enumerate() {
            assert_eq!(f, &vec![i as u8, (i as u8).wrapping_mul(3)]);
        }
        assert_eq!(client.stats(), FaultStats::default());
    }

    #[test]
    fn drops_are_deterministic_per_seed() {
        let count_delivered = |seed: u64| {
            let (client, server) = faulty_pair(FaultPlan::seeded(seed).with_send_drop(0.3));
            for i in 0..100u8 {
                client.send(vec![i]).unwrap();
            }
            let delivered: Vec<u8> = drain(server.as_ref()).iter().map(|f| f[0]).collect();
            (delivered, client.stats().dropped)
        };
        let (a, dropped_a) = count_delivered(7);
        let (b, dropped_b) = count_delivered(7);
        let (c, _) = count_delivered(8);
        assert_eq!(a, b, "same seed, same drops");
        assert_eq!(dropped_a, dropped_b);
        assert!(dropped_a > 0, "30% of 100 frames should drop some");
        assert_ne!(a, c, "different seed, different drops");
    }

    #[test]
    fn duplicates_deliver_twice() {
        let (client, server) = faulty_pair(FaultPlan::seeded(1).with_duplicates(1.0));
        client.send(vec![9]).unwrap();
        let got = drain(server.as_ref());
        assert_eq!(got, vec![vec![9], vec![9]]);
        assert_eq!(client.stats().duplicated, 1);
    }

    #[test]
    fn corruption_flips_one_byte() {
        let (client, server) = faulty_pair(FaultPlan::seeded(2).with_corruption(1.0));
        let original = vec![0u8; 16];
        client.send(original.clone()).unwrap();
        let got = drain(server.as_ref());
        assert_eq!(got.len(), 1);
        let differing = got[0]
            .iter()
            .zip(original.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(differing, 1);
        assert_eq!(client.stats().corrupted, 1);
    }

    #[test]
    fn partition_blackholes_then_heals() {
        let (client, server) = faulty_pair(FaultPlan::none());
        let handle = client.partition_handle();
        handle.partition();
        client.send(vec![1]).unwrap(); // swallowed, but Ok
        assert!(server
            .recv_timeout(Duration::from_millis(60))
            .is_err_and(|e| e == TransportError::Timeout));
        handle.heal();
        client.send(vec![2]).unwrap();
        assert_eq!(
            server.recv_timeout(Duration::from_secs(1)).unwrap(),
            vec![2]
        );
        assert_eq!(client.stats().blackholed, 1);
    }

    #[test]
    fn incoming_frames_during_partition_are_swallowed() {
        let (client, server) = faulty_pair(FaultPlan::none());
        let handle = client.partition_handle();
        handle.partition();
        server.send(vec![7]).unwrap();
        // The faulty side must not deliver a frame that "arrived" while
        // the link was severed, even after the heal.
        assert_eq!(
            client.recv_timeout(Duration::from_millis(80)).unwrap_err(),
            TransportError::Timeout
        );
        handle.heal();
        server.send(vec![8]).unwrap();
        assert_eq!(
            client.recv_timeout(Duration::from_secs(1)).unwrap(),
            vec![8]
        );
    }

    #[test]
    fn delay_handle_degrades_and_restores_mid_run() {
        let (client, server) = faulty_pair(FaultPlan::none());
        let delay = client.delay_handle();

        // Healthy phase: passthrough, no fault counted.
        client.send(vec![1]).unwrap();
        assert_eq!(
            server.recv_timeout(Duration::from_secs(1)).unwrap(),
            vec![1]
        );
        assert_eq!(client.stats().delayed, 0);

        // Degraded phase: every send sleeps the configured delay first.
        delay.set_delay(Duration::from_millis(25));
        let start = Instant::now();
        client.send(vec![2]).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "send must stall for the configured delay"
        );
        assert_eq!(
            server.recv_timeout(Duration::from_secs(1)).unwrap(),
            vec![2]
        );
        assert_eq!(client.stats().delayed, 1);

        // Restored: back to passthrough.
        delay.clear();
        let start = Instant::now();
        client.send(vec![3]).unwrap();
        assert!(start.elapsed() < Duration::from_millis(20));
        assert_eq!(
            server.recv_timeout(Duration::from_secs(1)).unwrap(),
            vec![3]
        );
        assert_eq!(client.stats().delayed, 1);
    }

    #[test]
    fn delay_holds_frames_back() {
        let (client, server) =
            faulty_pair(FaultPlan::seeded(3).with_delay(1.0, Duration::from_millis(30)));
        let start = Instant::now();
        client.send(vec![5]).unwrap();
        assert_eq!(
            server.recv_timeout(Duration::from_secs(1)).unwrap(),
            vec![5]
        );
        assert_eq!(client.stats().delayed, 1);
        // Not asserting a lower bound on elapsed time (the draw may be
        // near zero); just that the frame survived the delay path.
        let _ = start;
    }
}
