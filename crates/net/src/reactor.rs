//! The I/O reactor: readiness-driven socket multiplexing on a fixed
//! thread budget.
//!
//! Before this module existed every TCP endpoint burned a dedicated
//! reader thread (`read_exact` loops) plus a heartbeat thread, so the
//! process cost of a connection was two OS threads — fine for 16 phones,
//! structurally impossible for thousands. The reactor inverts that:
//!
//! * **One or a few poller threads** (`min(4, cores)` by default, capped
//!   well under the bench guard of 8) own *all* connections. Sockets are
//!   non-blocking; `epoll(7)` reports readiness on Linux, with a
//!   `poll(2)` fallback (`ALFREDO_FORCE_POLL=1` selects it explicitly).
//!   Both backends are hand-rolled `extern "C"` bindings — the workspace
//!   stays zero-dependency.
//! * **Per-connection state machines** replace the blocking loops: an
//!   inbound reassembly state (length-prefix header, then body, fed from
//!   a shared scratch buffer) and an outbound frame queue drained with
//!   vectored writes.
//! * **A flush-coalescing doorbell** (a non-blocking `UnixStream` pair)
//!   wakes a poller at most once per batch of sends: the first send that
//!   schedules a connection rings the bell, subsequent sends see
//!   `write_scheduled` already set and just enqueue. When the socket
//!   buffer has room, senders skip the reactor entirely and write
//!   directly under the outbox lock.
//! * **A shared timer wheel** ([`TimerWheel`]) runs every heartbeat and
//!   lease TTL in the process on one thread, instead of one thread per
//!   endpoint.
//!
//! Backpressure: each connection's outbox is capped (1 MiB). Application
//! threads block in `send` until the peer drains; reactor and timer
//! threads never block (they are marked with a thread-local and enqueue
//! unconditionally), because a blocked poller would deadlock the very
//! connections that could relieve the pressure.
//!
//! Resource accounting is exported through the process-global metrics
//! registry ([`alfredo_obs::global_metrics`]): `net.open_connections`,
//! `net.io_threads`, and `net.timer_entries` gauges, surfaced by the web
//! gateway's `GET /metrics` and by `EndpointStats`.

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

use alfredo_sync::{Condvar, Mutex};

use crate::transport::{CloseReason, FrameSink, PeerAddr, TransportError};
use crate::wire::MAX_LENGTH;

/// Cap on buffered-but-unsent bytes per connection before application
/// `send` calls block (reactor/timer threads are exempt — see module docs).
pub const OUTBOX_CAP: usize = 1 << 20;

/// Max `IoSlice`s per vectored write.
const MAX_IOV: usize = 32;

/// Token reserved for a poller's doorbell.
const DOORBELL_TOKEN: u64 = u64::MAX;

// ---------------------------------------------------------------------------
// Raw syscall bindings (std already links libc; no crates needed).
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    pub const EPOLL_CLOEXEC: i32 = 0x8_0000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    /// Mirror of the kernel's `struct epoll_event`; packed on x86-64,
    /// naturally aligned elsewhere (matching glibc).
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

mod psys {
    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    #[cfg(target_os = "linux")]
    pub type Nfds = u64;
    #[cfg(not(target_os = "linux"))]
    pub type Nfds = u32;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: Nfds, timeout: i32) -> i32;
    }
}

/// Raises the process soft `RLIMIT_NOFILE` toward `want` (clamped to the
/// hard limit) and returns the resulting soft limit. Best-effort: on any
/// syscall failure the current (or assumed) limit is returned. Used by the
/// scale bench so 1000-phone sweeps don't die on the default 1024-FD cap.
pub fn raise_nofile_limit(want: u64) -> u64 {
    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: i32 = 8;

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    unsafe {
        let mut lim = RLimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return 1024;
        }
        if lim.cur >= want {
            return lim.cur;
        }
        let target = RLimit {
            cur: want.min(lim.max),
            max: lim.max,
        };
        if setrlimit(RLIMIT_NOFILE, &target) == 0 {
            target.cur
        } else {
            lim.cur
        }
    }
}

// ---------------------------------------------------------------------------
// Reactor-thread marker: sends from these threads must never block.
// ---------------------------------------------------------------------------

thread_local! {
    static IN_REACTOR: Cell<bool> = const { Cell::new(false) };
}

fn mark_reactor_thread() {
    IN_REACTOR.with(|c| c.set(true));
}

fn on_reactor_thread() -> bool {
    IN_REACTOR.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// Selector: epoll on Linux, poll(2) fallback.
// ---------------------------------------------------------------------------

/// Which readiness syscall a [`Reactor`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `epoll(7)` — Linux only.
    #[cfg(target_os = "linux")]
    Epoll,
    /// Portable `poll(2)`; rebuilds the fd set every wait.
    Poll,
}

impl Backend {
    /// The platform default (`epoll` on Linux, `poll` elsewhere), unless
    /// `ALFREDO_FORCE_POLL=1` forces the fallback.
    pub fn default_for_platform() -> Backend {
        if std::env::var("ALFREDO_FORCE_POLL").is_ok_and(|v| v == "1") {
            return Backend::Poll;
        }
        #[cfg(target_os = "linux")]
        {
            Backend::Epoll
        }
        #[cfg(not(target_os = "linux"))]
        {
            Backend::Poll
        }
    }
}

/// One readiness event: `(token, readable, writable)`.
type Event = (u64, bool, bool);

enum Selector {
    #[cfg(target_os = "linux")]
    Epoll { epfd: i32 },
    /// `poll(2)` keeps no kernel state; the fd set is rebuilt from the
    /// connection map before every wait.
    Poll,
}

impl Selector {
    fn new(backend: Backend) -> io::Result<Selector> {
        match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => {
                let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(Selector::Epoll { epfd })
            }
            Backend::Poll => Ok(Selector::Poll),
        }
    }

    fn register(&self, fd: i32, token: u64, writable: bool) {
        #[cfg(target_os = "linux")]
        if let Selector::Epoll { epfd } = self {
            let mut ev = sys::EpollEvent {
                events: sys::EPOLLIN | if writable { sys::EPOLLOUT } else { 0 },
                data: token,
            };
            unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) };
        }
        let _ = (fd, token, writable);
    }

    fn update(&self, fd: i32, token: u64, writable: bool) {
        #[cfg(target_os = "linux")]
        if let Selector::Epoll { epfd } = self {
            let mut ev = sys::EpollEvent {
                events: sys::EPOLLIN | if writable { sys::EPOLLOUT } else { 0 },
                data: token,
            };
            unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_MOD, fd, &mut ev) };
        }
        let _ = (fd, token, writable);
    }

    fn deregister(&self, fd: i32) {
        #[cfg(target_os = "linux")]
        if let Selector::Epoll { epfd } = self {
            let mut ev = sys::EpollEvent { events: 0, data: 0 };
            unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
        }
        let _ = fd;
    }

    /// Blocks until at least one fd is ready, filling `out`.
    /// `poll_set` supplies the fd list for the `poll` backend.
    fn wait(&self, out: &mut Vec<Event>, poll_set: &[(i32, u64, bool)]) {
        out.clear();
        match self {
            #[cfg(target_os = "linux")]
            Selector::Epoll { epfd } => {
                let mut events = [sys::EpollEvent { events: 0, data: 0 }; 256];
                let n = unsafe { sys::epoll_wait(*epfd, events.as_mut_ptr(), 256, -1) };
                for ev in events.iter().take(n.max(0) as usize) {
                    // Copy out of the (possibly packed) struct.
                    let bits = { ev.events };
                    let token = { ev.data };
                    let err = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
                    // Errors/hangups surface through a read() that fails
                    // or returns EOF, so report them as readability.
                    out.push((
                        token,
                        bits & sys::EPOLLIN != 0 || err,
                        bits & sys::EPOLLOUT != 0,
                    ));
                }
            }
            Selector::Poll => {
                let mut fds: Vec<psys::PollFd> = poll_set
                    .iter()
                    .map(|&(fd, _, writable)| psys::PollFd {
                        fd,
                        events: psys::POLLIN | if writable { psys::POLLOUT } else { 0 },
                        revents: 0,
                    })
                    .collect();
                let n = unsafe { psys::poll(fds.as_mut_ptr(), fds.len() as psys::Nfds, -1) };
                if n <= 0 {
                    return;
                }
                for (pfd, &(_, token, _)) in fds.iter().zip(poll_set) {
                    let err = pfd.revents & (psys::POLLERR | psys::POLLHUP) != 0;
                    if pfd.revents != 0 {
                        out.push((
                            token,
                            pfd.revents & psys::POLLIN != 0 || err,
                            pfd.revents & psys::POLLOUT != 0,
                        ));
                    }
                }
            }
        }
    }
}

impl Drop for Selector {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Selector::Epoll { epfd } = self {
            unsafe { sys::close(*epfd) };
        }
    }
}

// ---------------------------------------------------------------------------
// Connection state machine.
// ---------------------------------------------------------------------------

/// Inbound reassembly: a 4-byte little-endian length prefix, then the body.
struct ReadState {
    hdr: [u8; 4],
    hdr_len: usize,
    body: Vec<u8>,
    /// Total body length once the header is complete; `usize::MAX` while
    /// still reading the header.
    need: usize,
}

impl ReadState {
    fn new() -> ReadState {
        ReadState {
            hdr: [0; 4],
            hdr_len: 0,
            body: Vec::new(),
            need: usize::MAX,
        }
    }

    /// Feeds raw bytes in, appending completed frames to `frames`.
    /// Returns `false` on a framing violation (impossible length prefix).
    fn feed(&mut self, mut buf: &[u8], frames: &mut Vec<Vec<u8>>) -> bool {
        while !buf.is_empty() {
            if self.need == usize::MAX {
                let take = (4 - self.hdr_len).min(buf.len());
                self.hdr[self.hdr_len..self.hdr_len + take].copy_from_slice(&buf[..take]);
                self.hdr_len += take;
                buf = &buf[take..];
                if self.hdr_len < 4 {
                    return true;
                }
                let len = u32::from_le_bytes(self.hdr) as u64;
                if len > MAX_LENGTH {
                    return false;
                }
                self.need = len as usize;
                self.body = Vec::with_capacity(self.need);
            }
            let take = (self.need - self.body.len()).min(buf.len());
            self.body.extend_from_slice(&buf[..take]);
            buf = &buf[take..];
            if self.body.len() == self.need {
                frames.push(std::mem::take(&mut self.body));
                self.hdr_len = 0;
                self.need = usize::MAX;
            }
        }
        true
    }
}

/// The byte stream violated the framing protocol: a length prefix
/// exceeded [`MAX_LENGTH`]. The stream cannot be
/// resynchronized — drop the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FramingError;

impl std::fmt::Display for FramingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("frame length prefix exceeds the maximum frame size")
    }
}

impl std::error::Error for FramingError {}

/// Incremental frame reassembly over the reactor's wire format: a 4-byte
/// little-endian length prefix followed by the body.
///
/// This wraps the exact state machine the reactor feeds socket reads
/// through, exposed so tests and alternative transports can drive it with
/// arbitrary byte streams. Torn input accumulates across `feed` calls;
/// completed frames pop out in order; an impossible length prefix
/// (> [`MAX_LENGTH`]) is a permanent
/// [`FramingError`] — the reassembler rejects all further input rather
/// than allocating an attacker-controlled buffer.
#[derive(Default)]
pub struct FrameReassembler {
    state: Option<ReadState>,
    poisoned: bool,
}

impl FrameReassembler {
    /// An empty reassembler awaiting the first header byte.
    pub fn new() -> FrameReassembler {
        FrameReassembler::default()
    }

    /// Feeds raw bytes in, returning the frames they completed (possibly
    /// none — the input may end mid-header or mid-body).
    ///
    /// # Errors
    ///
    /// Returns [`FramingError`] when a length prefix exceeds the maximum
    /// frame size; the reassembler stays poisoned and every later `feed`
    /// fails too.
    pub fn feed(&mut self, buf: &[u8]) -> Result<Vec<Vec<u8>>, FramingError> {
        if self.poisoned {
            return Err(FramingError);
        }
        let state = self.state.get_or_insert_with(ReadState::new);
        let mut frames = Vec::new();
        if state.feed(buf, &mut frames) {
            Ok(frames)
        } else {
            self.poisoned = true;
            self.state = None;
            Err(FramingError)
        }
    }

    /// Bytes of partial-frame state currently buffered (header bytes plus
    /// body bytes received so far). Bounded by 4 +
    /// [`MAX_LENGTH`] by construction.
    pub fn buffered(&self) -> usize {
        self.state
            .as_ref()
            .map(|s| s.hdr_len + s.body.len())
            .unwrap_or(0)
    }

    /// Capacity of the in-progress body buffer — what `feed` has actually
    /// allocated. Never exceeds [`MAX_LENGTH`]:
    /// the length prefix is validated *before* the allocation.
    pub fn buffered_capacity(&self) -> usize {
        self.state.as_ref().map(|s| s.body.capacity()).unwrap_or(0)
    }
}

struct OutFrame {
    prefix: [u8; 4],
    body: Vec<u8>,
}

impl OutFrame {
    fn len(&self) -> usize {
        4 + self.body.len()
    }
}

struct Outbox {
    q: VecDeque<OutFrame>,
    /// Unwritten bytes across the whole queue.
    bytes: usize,
    /// Bytes of `q[0]` already written (prefix counts first).
    front_off: usize,
    /// Whether the selector is currently watching for writability.
    epollout: bool,
    /// Local close requested: flush what's queued, then FIN.
    closing: bool,
}

struct Inbox {
    q: VecDeque<Vec<u8>>,
    fin: bool,
    /// `on_close` already delivered to a sink (exactly-once guard).
    fin_delivered: bool,
}

/// One reactor-managed connection. Shared by the owning transport and the
/// poller's connection map; the map entry is removed at teardown, which
/// breaks the only reference cycle.
pub(crate) struct Conn {
    token: u64,
    stream: TcpStream,
    poller: Arc<Poller>,
    local: PeerAddr,
    peer: PeerAddr,
    /// User-visible closed flag: sends fail once set.
    closed: AtomicBool,
    /// Fully torn down (deregistered from the poller).
    dead: AtomicBool,
    reason: Mutex<CloseReason>,
    read: Mutex<ReadState>,
    inbox: Mutex<Inbox>,
    inbox_cv: Condvar,
    /// Lock order: `sink` before `inbox` (never the reverse).
    sink: Mutex<Option<Box<dyn FrameSink>>>,
    out: Mutex<Outbox>,
    out_cv: Condvar,
    /// True while the connection sits in a poller kick queue or has
    /// EPOLLOUT armed — further sends skip the doorbell.
    write_scheduled: AtomicBool,
}

impl Conn {
    fn record_reason(&self, reason: CloseReason) {
        let mut r = self.reason.lock();
        if *r == CloseReason::Unknown {
            *r = reason;
            alfredo_obs::event("net.tcp", "close", || {
                vec![
                    ("peer".to_string(), self.peer.to_string()),
                    ("reason".to_string(), format!("{reason:?}")),
                ]
            });
        }
    }

    pub(crate) fn close_reason(&self) -> CloseReason {
        *self.reason.lock()
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    pub(crate) fn local_addr(&self) -> &PeerAddr {
        &self.local
    }

    pub(crate) fn peer_addr(&self) -> &PeerAddr {
        &self.peer
    }

    /// Queues one frame, writing directly to the socket when the outbox is
    /// empty (the common case: no reactor round-trip at all). Blocks on the
    /// outbox cap unless called from a reactor/timer thread.
    pub(crate) fn send(self: &Arc<Self>, frame: Vec<u8>) -> Result<(), TransportError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Closed);
        }
        let mut out = self.out.lock();
        if !on_reactor_thread() {
            while out.bytes >= OUTBOX_CAP && !out.closing && !self.closed.load(Ordering::SeqCst) {
                out = self.out_cv.wait(out);
            }
        }
        if out.closing || self.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Closed);
        }
        let prefix = (frame.len() as u32).to_le_bytes();
        let total = 4 + frame.len();
        if out.q.is_empty() && !out.epollout {
            // Fast path: socket buffer likely has room; write inline under
            // the outbox lock (ordering preserved — the lock serializes).
            match write_now(&self.stream, &prefix, &frame) {
                Ok(n) if n == total => return Ok(()),
                Ok(n) => {
                    out.q.push_back(OutFrame {
                        prefix,
                        body: frame,
                    });
                    out.front_off = n;
                    out.bytes = total - n;
                }
                Err(_) => {
                    drop(out);
                    self.record_reason(CloseReason::Io);
                    self.closed.store(true, Ordering::SeqCst);
                    self.request_teardown();
                    return Err(TransportError::Closed);
                }
            }
        } else {
            out.q.push_back(OutFrame {
                prefix,
                body: frame,
            });
            out.bytes += total;
        }
        let need_kick = !out.epollout;
        drop(out);
        if need_kick && !self.write_scheduled.swap(true, Ordering::SeqCst) {
            self.poller.kick(Arc::clone(self));
        }
        Ok(())
    }

    pub(crate) fn recv(&self) -> Result<Vec<u8>, TransportError> {
        let mut inbox = self.inbox.lock();
        loop {
            if let Some(f) = inbox.q.pop_front() {
                return Ok(f);
            }
            if inbox.fin || self.closed.load(Ordering::SeqCst) {
                return Err(TransportError::Closed);
            }
            inbox = self.inbox_cv.wait(inbox);
        }
    }

    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        let deadline = Instant::now() + timeout;
        let mut inbox = self.inbox.lock();
        loop {
            if let Some(f) = inbox.q.pop_front() {
                return Ok(f);
            }
            if inbox.fin || self.closed.load(Ordering::SeqCst) {
                return Err(TransportError::Closed);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            let (guard, _) = self.inbox_cv.wait_timeout(inbox, deadline - now);
            inbox = guard;
        }
    }

    pub(crate) fn try_recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
        let mut inbox = self.inbox.lock();
        if let Some(f) = inbox.q.pop_front() {
            return Ok(Some(f));
        }
        if inbox.fin || self.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Closed);
        }
        Ok(None)
    }

    /// Switches to push-mode delivery; queued frames drain into the sink
    /// first so ordering is preserved across the switch.
    pub(crate) fn set_sink(&self, mut new_sink: Box<dyn FrameSink>) {
        let mut sink = self.sink.lock();
        let (drained, fin) = {
            let mut inbox = self.inbox.lock();
            let drained: Vec<Vec<u8>> = inbox.q.drain(..).collect();
            (drained, inbox.fin)
        };
        for f in drained {
            new_sink.on_frame(f);
        }
        if fin {
            let deliver = {
                let mut inbox = self.inbox.lock();
                let first = !inbox.fin_delivered;
                inbox.fin_delivered = true;
                first
            };
            if deliver {
                new_sink.on_close();
            }
        }
        *sink = Some(new_sink);
    }

    /// Local graceful close: new sends fail immediately, the poller
    /// flushes anything already queued, then sends FIN and tears down.
    pub(crate) fn close(self: &Arc<Self>) {
        self.record_reason(CloseReason::Local);
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut out = self.out.lock();
            out.closing = true;
            self.out_cv.notify_all();
        }
        {
            let _inbox = self.inbox.lock();
            self.inbox_cv.notify_all();
        }
        self.request_teardown();
    }

    /// Asks the owning poller to finish this connection (flush + FIN +
    /// deregister). Safe from any thread.
    fn request_teardown(self: &Arc<Self>) {
        {
            let mut out = self.out.lock();
            out.closing = true;
        }
        if !self.write_scheduled.swap(true, Ordering::SeqCst) {
            self.poller.kick(Arc::clone(self));
        } else {
            // Already scheduled for a flush; make sure the poller actually
            // wakes to observe `closing` even if EPOLLOUT never fires.
            self.poller.ring();
        }
    }

    fn fd(&self) -> i32 {
        self.stream.as_raw_fd()
    }
}

/// Writes `prefix` + `body` starting from offset 0 until done or the
/// socket would block; returns total bytes written.
fn write_now(stream: &TcpStream, prefix: &[u8; 4], body: &[u8]) -> io::Result<usize> {
    let mut off = 0usize;
    let total = 4 + body.len();
    loop {
        let slices = [
            IoSlice::new(&prefix[off.min(4)..]),
            IoSlice::new(&body[off.saturating_sub(4)..]),
        ];
        match (&mut &*stream).write_vectored(&slices) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "write zero")),
            Ok(n) => {
                off += n;
                if off >= total {
                    return Ok(total);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(off),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Poller: one I/O thread.
// ---------------------------------------------------------------------------

struct Poller {
    selector: Selector,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    kicks: Mutex<Vec<Arc<Conn>>>,
    /// Coalesces doorbell writes: set when a wake is already pending.
    bell_pending: AtomicBool,
    bell_tx: Mutex<UnixStream>,
    bell_rx: UnixStream,
    stop: Arc<AtomicBool>,
    open_gauge: alfredo_obs::Gauge,
}

impl Poller {
    fn new(backend: Backend, stop: Arc<AtomicBool>) -> io::Result<Poller> {
        let (bell_tx, bell_rx) = UnixStream::pair()?;
        bell_tx.set_nonblocking(true)?;
        bell_rx.set_nonblocking(true)?;
        let selector = Selector::new(backend)?;
        selector.register(bell_rx.as_raw_fd(), DOORBELL_TOKEN, false);
        Ok(Poller {
            selector,
            conns: Mutex::new(HashMap::new()),
            kicks: Mutex::new(Vec::new()),
            bell_pending: AtomicBool::new(false),
            bell_tx: Mutex::new(bell_tx),
            bell_rx,
            stop,
            open_gauge: alfredo_obs::global_metrics().gauge("net.open_connections"),
        })
    }

    /// Schedules `conn` for a flush/teardown pass and wakes the poller.
    fn kick(&self, conn: Arc<Conn>) {
        self.kicks.lock().push(conn);
        self.ring();
    }

    fn ring(&self) {
        if !self.bell_pending.swap(true, Ordering::SeqCst) {
            let _ = self.bell_tx.lock().write(&[1]);
        }
    }

    fn register(self: &Arc<Self>, conn: &Arc<Conn>) {
        self.conns.lock().insert(conn.token, Arc::clone(conn));
        self.selector.register(conn.fd(), conn.token, false);
        self.open_gauge.add(1);
        // The poll backend rebuilds its fd set per wait, so it must wake
        // to notice the newcomer; epoll picks up new fds while blocked.
        if matches!(self.selector, Selector::Poll) {
            self.ring();
        }
    }

    fn run(self: Arc<Self>) {
        mark_reactor_thread();
        let mut scratch = vec![0u8; 64 * 1024];
        let mut events: Vec<Event> = Vec::with_capacity(256);
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut poll_set: Vec<(i32, u64, bool)> = Vec::new();
        loop {
            poll_set.clear();
            if matches!(self.selector, Selector::Poll) {
                poll_set.push((self.bell_rx.as_raw_fd(), DOORBELL_TOKEN, false));
                for conn in self.conns.lock().values() {
                    let writable = conn.out.lock().epollout;
                    poll_set.push((conn.fd(), conn.token, writable));
                }
            }
            self.selector.wait(&mut events, &poll_set);
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            for &(token, readable, writable) in &events {
                if token == DOORBELL_TOKEN {
                    self.drain_bell();
                    continue;
                }
                let conn = self.conns.lock().get(&token).cloned();
                let Some(conn) = conn else { continue };
                if readable {
                    self.handle_readable(&conn, &mut scratch, &mut frames);
                }
                if writable && !conn.dead.load(Ordering::SeqCst) {
                    self.flush(&conn);
                }
            }
            self.process_kicks();
        }
    }

    fn drain_bell(&self) {
        // Drain the pipe *before* clearing the pending flag: a kicker that
        // saw the flag set (and skipped its write) pushed its kick before
        // the flag could clear, so the process_kicks pass that follows
        // this drain is guaranteed to observe it. Clearing first would let
        // the drain swallow a byte whose wakeup was still owed.
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.bell_rx).read(&mut buf) {
            if n < buf.len() {
                break;
            }
        }
        self.bell_pending.store(false, Ordering::SeqCst);
    }

    fn process_kicks(self: &Arc<Self>) {
        loop {
            let batch: Vec<Arc<Conn>> = std::mem::take(&mut *self.kicks.lock());
            if batch.is_empty() {
                return;
            }
            for conn in batch {
                if !conn.dead.load(Ordering::SeqCst) {
                    self.flush(&conn);
                }
            }
        }
    }

    /// Drains the outbox with vectored writes. Arms/disarms EPOLLOUT as
    /// needed and completes a pending graceful close once drained.
    fn flush(self: &Arc<Self>, conn: &Arc<Conn>) {
        let mut out = conn.out.lock();
        loop {
            if out.q.is_empty() {
                break;
            }
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOV);
            for (i, f) in out.q.iter().enumerate() {
                if slices.len() + 2 > MAX_IOV {
                    break;
                }
                let off = if i == 0 { out.front_off } else { 0 };
                if off < 4 {
                    slices.push(IoSlice::new(&f.prefix[off..]));
                    slices.push(IoSlice::new(&f.body));
                } else {
                    slices.push(IoSlice::new(&f.body[off - 4..]));
                }
            }
            match (&mut &conn.stream).write_vectored(&slices) {
                Ok(0) => {
                    drop(out);
                    self.teardown(conn, CloseReason::Io);
                    return;
                }
                Ok(mut n) => {
                    out.bytes -= n;
                    while n > 0 {
                        let front_remaining = out.q[0].len() - out.front_off;
                        if n >= front_remaining {
                            n -= front_remaining;
                            out.q.pop_front();
                            out.front_off = 0;
                        } else {
                            out.front_off += n;
                            n = 0;
                        }
                    }
                    if out.bytes < OUTBOX_CAP {
                        conn.out_cv.notify_all();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if !out.epollout {
                        out.epollout = true;
                        self.selector.update(conn.fd(), conn.token, true);
                    }
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    drop(out);
                    self.teardown(conn, CloseReason::Io);
                    return;
                }
            }
        }
        // Outbox drained.
        if out.epollout {
            out.epollout = false;
            self.selector.update(conn.fd(), conn.token, false);
        }
        conn.write_scheduled.store(false, Ordering::SeqCst);
        conn.out_cv.notify_all();
        let closing = out.closing;
        drop(out);
        if closing {
            self.teardown(conn, CloseReason::Local);
        }
    }

    fn handle_readable(
        self: &Arc<Self>,
        conn: &Arc<Conn>,
        scratch: &mut [u8],
        frames: &mut Vec<Vec<u8>>,
    ) {
        let discard = conn.out.lock().closing;
        let mut read = conn.read.lock();
        loop {
            match (&mut &conn.stream).read(scratch) {
                Ok(0) => {
                    drop(read);
                    self.teardown(conn, CloseReason::Peer);
                    return;
                }
                Ok(n) => {
                    if discard {
                        continue;
                    }
                    frames.clear();
                    if !read.feed(&scratch[..n], frames) {
                        drop(read);
                        self.teardown(conn, CloseReason::CorruptStream);
                        return;
                    }
                    for f in frames.drain(..) {
                        deliver_frame(conn, f);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    drop(read);
                    self.teardown(conn, CloseReason::Io);
                    return;
                }
            }
        }
    }

    /// Final teardown: record the cause, fail senders, FIN the socket,
    /// deregister, and deliver end-of-stream exactly once.
    fn teardown(self: &Arc<Self>, conn: &Arc<Conn>, reason: CloseReason) {
        if conn.dead.swap(true, Ordering::SeqCst) {
            return;
        }
        conn.record_reason(reason);
        conn.closed.store(true, Ordering::SeqCst);
        {
            let mut out = conn.out.lock();
            out.q.clear();
            out.bytes = 0;
            out.closing = true;
            conn.out_cv.notify_all();
        }
        let _ = conn.stream.shutdown(Shutdown::Both);
        self.selector.deregister(conn.fd());
        if self.conns.lock().remove(&conn.token).is_some() {
            self.open_gauge.add(-1);
        }
        deliver_fin(conn);
    }
}

/// Delivers one inbound frame: into the sink when installed, else the
/// pull-mode inbox. The inbox push happens under the sink lock so a
/// concurrent `set_sink` cannot strand a frame behind the mode switch.
fn deliver_frame(conn: &Conn, frame: Vec<u8>) {
    let mut sink = conn.sink.lock();
    if let Some(s) = sink.as_mut() {
        s.on_frame(frame);
    } else {
        let mut inbox = conn.inbox.lock();
        inbox.q.push_back(frame);
        conn.inbox_cv.notify_all();
    }
}

/// Marks end-of-stream and fires `on_close` exactly once if a sink is
/// installed (otherwise pull-mode readers observe `fin`).
fn deliver_fin(conn: &Conn) {
    let mut sink = conn.sink.lock();
    let deliver = {
        let mut inbox = conn.inbox.lock();
        inbox.fin = true;
        conn.inbox_cv.notify_all();
        if sink.is_some() && !inbox.fin_delivered {
            inbox.fin_delivered = true;
            true
        } else {
            false
        }
    };
    if deliver {
        if let Some(s) = sink.as_mut() {
            s.on_close();
        }
    }
}

// ---------------------------------------------------------------------------
// Timer wheel.
// ---------------------------------------------------------------------------

const WHEEL_SLOTS: usize = 256;
/// Idle park bound: a parked wheel re-checks liveness this often so the
/// thread exits once every user handle is dropped.
const WHEEL_IDLE_PARK: Duration = Duration::from_millis(500);

struct TimerEntry {
    rounds: u64,
    f: Box<dyn FnOnce() + Send>,
}

struct WheelState {
    slots: Vec<HashMap<u64, TimerEntry>>,
    cursor: usize,
    next_tick_at: Option<Instant>,
    entries: usize,
    next_id: u64,
    started: bool,
}

struct WheelInner {
    state: Mutex<WheelState>,
    cv: Condvar,
    tick: Duration,
    gauge: alfredo_obs::Gauge,
}

/// Handle to a scheduled timer, used to [`TimerWheel::cancel`] it.
#[derive(Debug, Clone, Copy)]
pub struct TimerKey {
    id: u64,
    slot: usize,
}

/// A hashed timer wheel: every heartbeat and lease TTL in the process
/// runs as a callback on one shared thread, instead of one parked thread
/// per endpoint.
///
/// Callbacks run on the wheel thread, which is marked as a reactor thread
/// — sends from callbacks never block on outbox backpressure. Callbacks
/// must be short; a long callback delays every other timer.
#[derive(Clone)]
pub struct TimerWheel {
    inner: Arc<WheelInner>,
}

impl std::fmt::Debug for TimerWheel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("entries", &self.inner.state.lock().entries)
            .finish()
    }
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel::new(Duration::from_millis(8))
    }
}

impl TimerWheel {
    /// Creates a wheel with the given tick granularity. The driving thread
    /// spawns lazily on the first `schedule` and exits once every clone of
    /// the wheel is dropped.
    pub fn new(tick: Duration) -> TimerWheel {
        TimerWheel {
            inner: Arc::new(WheelInner {
                state: Mutex::new(WheelState {
                    slots: (0..WHEEL_SLOTS).map(|_| HashMap::new()).collect(),
                    cursor: 0,
                    next_tick_at: None,
                    entries: 0,
                    next_id: 0,
                    started: false,
                }),
                cv: Condvar::new(),
                tick: tick.max(Duration::from_millis(1)),
                gauge: alfredo_obs::global_metrics().gauge("net.timer_entries"),
            }),
        }
    }

    /// Runs `f` once, roughly `after` from now (rounded up to the tick).
    pub fn schedule(&self, after: Duration, f: Box<dyn FnOnce() + Send>) -> TimerKey {
        let inner = &self.inner;
        let mut st = inner.state.lock();
        if !st.started {
            st.started = true;
            let weak = Arc::downgrade(inner);
            std::thread::Builder::new()
                .name("alfredo-timer-wheel".into())
                .spawn(move || wheel_thread(weak))
                .expect("spawn timer wheel thread");
        }
        let ticks = (after.as_nanos().div_ceil(inner.tick.as_nanos()).max(1)) as u64;
        let slot = (st.cursor + ticks as usize) % WHEEL_SLOTS;
        let rounds = (ticks - 1) / WHEEL_SLOTS as u64;
        let id = st.next_id;
        st.next_id += 1;
        st.slots[slot].insert(id, TimerEntry { rounds, f });
        st.entries += 1;
        inner.gauge.add(1);
        if st.next_tick_at.is_none() {
            st.next_tick_at = Some(Instant::now() + inner.tick);
        }
        inner.cv.notify_all();
        TimerKey { id, slot }
    }

    /// Cancels a scheduled timer; returns `false` if it already fired
    /// (or was cancelled before).
    pub fn cancel(&self, key: TimerKey) -> bool {
        let mut st = self.inner.state.lock();
        if st.slots[key.slot].remove(&key.id).is_some() {
            st.entries -= 1;
            self.inner.gauge.add(-1);
            true
        } else {
            false
        }
    }

    /// Number of pending timers.
    pub fn entries(&self) -> usize {
        self.inner.state.lock().entries
    }
}

fn wheel_thread(weak: Weak<WheelInner>) {
    mark_reactor_thread();
    loop {
        let Some(inner) = weak.upgrade() else { return };
        let mut due: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        {
            let mut st = inner.state.lock();
            if st.entries == 0 {
                st.next_tick_at = None;
                let (guard, _) = inner.cv.wait_timeout(st, WHEEL_IDLE_PARK);
                drop(guard);
                continue;
            }
            let target = *st
                .next_tick_at
                .get_or_insert_with(|| Instant::now() + inner.tick);
            let now = Instant::now();
            if now < target {
                let wait = (target - now).min(WHEEL_IDLE_PARK);
                let (guard, _) = inner.cv.wait_timeout(st, wait);
                drop(guard);
                continue;
            }
            // One tick elapsed: advance the cursor and collect due timers.
            st.cursor = (st.cursor + 1) % WHEEL_SLOTS;
            let cursor = st.cursor;
            let fire: Vec<u64> = st.slots[cursor]
                .iter_mut()
                .filter_map(|(id, e)| {
                    if e.rounds == 0 {
                        Some(*id)
                    } else {
                        e.rounds -= 1;
                        None
                    }
                })
                .collect();
            for id in fire {
                if let Some(e) = st.slots[cursor].remove(&id) {
                    due.push(e.f);
                    st.entries -= 1;
                    inner.gauge.add(-1);
                }
            }
            st.next_tick_at = Some(target + inner.tick);
        }
        for f in due {
            f();
        }
    }
}

// ---------------------------------------------------------------------------
// The reactor.
// ---------------------------------------------------------------------------

struct ReactorInner {
    pollers: Vec<Arc<Poller>>,
    next: AtomicUsize,
    next_token: AtomicU64,
    wheel: TimerWheel,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    io_gauge: alfredo_obs::Gauge,
}

/// A readiness-driven I/O core: a fixed set of poller threads plus a
/// shared [`TimerWheel`]. Most code uses [`Reactor::global`]; tests can
/// build private instances (e.g. to exercise the `poll(2)` backend).
pub struct Reactor {
    inner: Arc<ReactorInner>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("io_threads", &self.inner.pollers.len())
            .finish()
    }
}

/// Point-in-time reactor resource counts, read from the process-global
/// gauges (zero until the first reactor/timer activity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Connections currently registered with any reactor.
    pub open_connections: u64,
    /// Poller threads across all live reactors.
    pub io_threads: u64,
    /// Pending timer-wheel entries.
    pub timer_entries: u64,
}

/// Reads the reactor gauges. Cheap; safe to call even if no reactor has
/// ever started (all zeros).
pub fn current_stats() -> ReactorStats {
    let m = alfredo_obs::global_metrics();
    ReactorStats {
        open_connections: m.gauge("net.open_connections").get().max(0) as u64,
        io_threads: m.gauge("net.io_threads").get().max(0) as u64,
        timer_entries: m.gauge("net.timer_entries").get().max(0) as u64,
    }
}

impl Reactor {
    /// Builds a reactor with `io_threads` pollers on the given backend.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the selector or doorbell cannot
    /// be created.
    pub fn new(io_threads: usize, backend: Backend) -> io::Result<Reactor> {
        let io_threads = io_threads.clamp(1, 8);
        let stop = Arc::new(AtomicBool::new(false));
        let mut pollers = Vec::with_capacity(io_threads);
        let mut threads = Vec::with_capacity(io_threads);
        for i in 0..io_threads {
            let poller = Arc::new(Poller::new(backend, Arc::clone(&stop))?);
            let runner = Arc::clone(&poller);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("alfredo-io-{i}"))
                    .spawn(move || runner.run())?,
            );
            pollers.push(poller);
        }
        let io_gauge = alfredo_obs::global_metrics().gauge("net.io_threads");
        io_gauge.add(io_threads as i64);
        Ok(Reactor {
            inner: Arc::new(ReactorInner {
                pollers,
                next: AtomicUsize::new(0),
                next_token: AtomicU64::new(0),
                wheel: TimerWheel::default(),
                stop,
                threads: Mutex::new(threads),
                io_gauge,
            }),
        })
    }

    /// The process-wide reactor, started on first use. Thread count comes
    /// from `ALFREDO_IO_THREADS` or defaults to `min(4, cores)`; backend
    /// from [`Backend::default_for_platform`].
    pub fn global() -> &'static Reactor {
        static GLOBAL: OnceLock<Reactor> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::env::var("ALFREDO_IO_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get().min(4))
                        .unwrap_or(2)
                });
            Reactor::new(threads, Backend::default_for_platform()).expect("start global reactor")
        })
    }

    /// The reactor's shared timer wheel.
    pub fn timer(&self) -> &TimerWheel {
        &self.inner.wheel
    }

    /// Number of poller threads.
    pub fn io_threads(&self) -> usize {
        self.inner.pollers.len()
    }

    /// Adopts a stream: makes it non-blocking and hands it to the
    /// least-recently-used poller.
    pub(crate) fn register(&self, stream: TcpStream) -> io::Result<Arc<Conn>> {
        stream.set_nodelay(true)?;
        let local = PeerAddr::new(format!("tcp://{}", stream.local_addr()?));
        let peer = PeerAddr::new(format!("tcp://{}", stream.peer_addr()?));
        stream.set_nonblocking(true)?;
        let idx = self.inner.next.fetch_add(1, Ordering::Relaxed) % self.inner.pollers.len();
        let poller = Arc::clone(&self.inner.pollers[idx]);
        let token = self.inner.next_token.fetch_add(1, Ordering::Relaxed);
        let conn = Arc::new(Conn {
            token,
            stream,
            poller: Arc::clone(&poller),
            local,
            peer,
            closed: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            reason: Mutex::new(CloseReason::Unknown),
            read: Mutex::new(ReadState::new()),
            inbox: Mutex::new(Inbox {
                q: VecDeque::new(),
                fin: false,
                fin_delivered: false,
            }),
            inbox_cv: Condvar::new(),
            sink: Mutex::new(None),
            out: Mutex::new(Outbox {
                q: VecDeque::new(),
                bytes: 0,
                front_off: 0,
                epollout: false,
                closing: false,
            }),
            out_cv: Condvar::new(),
            write_scheduled: AtomicBool::new(false),
        });
        poller.register(&conn);
        Ok(conn)
    }
}

impl Drop for ReactorInner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for p in &self.pollers {
            p.ring();
        }
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
        // Fail over any connections still registered so blocked readers
        // and writers observe Closed instead of hanging.
        for p in &self.pollers {
            let conns: Vec<Arc<Conn>> = p.conns.lock().drain().map(|(_, c)| c).collect();
            for conn in conns {
                if !conn.dead.swap(true, Ordering::SeqCst) {
                    conn.record_reason(CloseReason::Local);
                    conn.closed.store(true, Ordering::SeqCst);
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    {
                        let mut out = conn.out.lock();
                        out.q.clear();
                        out.bytes = 0;
                        conn.out_cv.notify_all();
                    }
                    alfredo_obs::global_metrics()
                        .gauge("net.open_connections")
                        .add(-1);
                    deliver_fin(&conn);
                }
            }
        }
        self.io_gauge.add(-(self.pollers.len() as i64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn read_state_reassembles_across_splits() {
        let mut rs = ReadState::new();
        let mut frames = Vec::new();
        // Two frames, fed one byte at a time.
        let mut wire = Vec::new();
        for body in [&b"hello"[..], &b"world!"[..]] {
            wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
            wire.extend_from_slice(body);
        }
        for b in &wire {
            assert!(rs.feed(std::slice::from_ref(b), &mut frames));
        }
        assert_eq!(frames, vec![b"hello".to_vec(), b"world!".to_vec()]);
    }

    #[test]
    fn read_state_rejects_oversized_prefix() {
        let mut rs = ReadState::new();
        let mut frames = Vec::new();
        assert!(!rs.feed(&u32::MAX.to_le_bytes(), &mut frames));
        assert!(frames.is_empty());
    }

    #[test]
    fn timer_wheel_fires_and_cancels() {
        let wheel = TimerWheel::new(Duration::from_millis(2));
        let fired = Arc::new(AtomicUsize::new(0));
        let f1 = Arc::clone(&fired);
        let _k1 = wheel.schedule(
            Duration::from_millis(10),
            Box::new(move || {
                f1.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let f2 = Arc::clone(&fired);
        let k2 = wheel.schedule(
            Duration::from_millis(10),
            Box::new(move || {
                f2.fetch_add(100, Ordering::SeqCst);
            }),
        );
        assert!(wheel.cancel(k2));
        assert!(!wheel.cancel(k2));
        let deadline = Instant::now() + Duration::from_secs(2);
        while fired.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(wheel.entries(), 0);
    }

    #[test]
    fn timer_wheel_long_delays_use_rounds() {
        // A delay longer than one wheel revolution must not fire early.
        let wheel = TimerWheel::new(Duration::from_millis(1));
        let fired = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&fired);
        // 300 ticks > 256 slots → rounds > 0.
        wheel.schedule(
            Duration::from_millis(300),
            Box::new(move || f.store(true, Ordering::SeqCst)),
        );
        std::thread::sleep(Duration::from_millis(120));
        assert!(!fired.load(Ordering::SeqCst), "fired a full round early");
        let deadline = Instant::now() + Duration::from_secs(3);
        while !fired.load(Ordering::SeqCst) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(fired.load(Ordering::SeqCst));
    }
}
