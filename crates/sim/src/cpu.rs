//! Queueing CPU model.
//!
//! Work is expressed in abstract *cycles*; a [`CpuModel`] with clock rate
//! `clock_hz` executes `clock_hz` cycles per virtual second per core. Each
//! submission is assigned to the earliest-available core (FIFO per core, no
//! preemption), which reproduces the saturation behaviour of the paper's
//! server experiments: latency stays flat while load is below capacity and
//! blows up once the arrival rate exceeds what the cores can drain.

use crate::time::{SimDuration, SimTime};

/// A multi-core processor with FIFO queueing.
///
/// # Example
///
/// ```
/// use alfredo_sim::{CpuModel, SimTime};
///
/// // A 1 MHz single-core CPU: 1000 cycles take 1 ms.
/// let mut cpu = CpuModel::new(1_000_000.0, 1);
/// let done = cpu.submit(SimTime::ZERO, 1000);
/// assert_eq!(done.as_millis(), 1);
/// // A second job queues behind the first.
/// let done2 = cpu.submit(SimTime::ZERO, 1000);
/// assert_eq!(done2.as_millis(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CpuModel {
    clock_hz: f64,
    core_free: Vec<SimTime>,
    total_busy: SimDuration,
    jobs: u64,
}

impl CpuModel {
    /// Creates a CPU with the given clock rate (cycles per second) and core
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is not strictly positive or `cores` is zero.
    pub fn new(clock_hz: f64, cores: usize) -> Self {
        assert!(
            clock_hz > 0.0 && clock_hz.is_finite(),
            "clock_hz must be positive and finite"
        );
        assert!(cores > 0, "cores must be nonzero");
        CpuModel {
            clock_hz,
            core_free: vec![SimTime::ZERO; cores],
            total_busy: SimDuration::ZERO,
            jobs: 0,
        }
    }

    /// The configured clock rate in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.core_free.len()
    }

    /// Wall time the CPU needs to execute `cycles` with no queueing.
    pub fn service_time(&self, cycles: u64) -> SimDuration {
        SimDuration::from_secs_f64(cycles as f64 / self.clock_hz)
    }

    /// Submits a job arriving at `now` requiring `cycles` of work and returns
    /// its completion time. The job is placed on the core that frees up
    /// first; it starts at `max(now, core_free)`.
    pub fn submit(&mut self, now: SimTime, cycles: u64) -> SimTime {
        let service = self.service_time(cycles);
        let core = self.earliest_core();
        let start = self.core_free[core].max(now);
        let end = start + service;
        self.core_free[core] = end;
        self.total_busy += service;
        self.jobs += 1;
        end
    }

    /// Time at which the next submission could start executing if it arrived
    /// at `now` (i.e. `max(now, earliest core free time)`).
    pub fn next_start(&self, now: SimTime) -> SimTime {
        self.core_free[self.earliest_core()].max(now)
    }

    /// Queueing delay a job arriving at `now` would experience before
    /// starting to execute.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.next_start(now).duration_since(now)
    }

    /// Total busy time accumulated across all cores.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Number of jobs submitted so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over the window `[SimTime::ZERO, now]`, in `[0, 1+]`
    /// (can exceed 1 transiently if work is queued beyond `now`).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.total_busy.as_secs_f64() / (now.as_secs_f64() * self.cores() as f64)
    }

    fn earliest_core(&self) -> usize {
        self.core_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("cores is nonzero")
    }

    /// Publishes the current utilization into `gauge`, so threads that
    /// cannot hold `&mut CpuModel` (it is single-owner) can still read
    /// the device's load — the placement control loop samples the gauge
    /// on its own cadence.
    pub fn publish(&self, now: SimTime, gauge: &CpuGauge) {
        gauge.set(self.utilization(now));
    }
}

/// A thread-shareable snapshot of a [`CpuModel`]'s utilization.
///
/// `CpuModel` is a single-owner queueing model (`submit` needs `&mut`),
/// but the placement control loop runs on other threads and only needs
/// the latest utilization figure. The model's owner calls
/// [`CpuModel::publish`] (or [`CpuGauge::set`] directly) whenever it
/// advances; readers call [`CpuGauge::get`] lock-free. Cloneable — all
/// clones share the same cell.
///
/// # Example
///
/// ```
/// use alfredo_sim::{CpuGauge, CpuModel, SimTime};
///
/// let mut cpu = CpuModel::new(1_000_000.0, 1);
/// let gauge = CpuGauge::new();
/// cpu.submit(SimTime::ZERO, 500_000); // 0.5 s of work
/// cpu.publish(SimTime::from_nanos(1_000_000_000), &gauge);
/// assert!((gauge.get() - 0.5).abs() < 1e-6);
/// ```
#[derive(Clone, Default, Debug)]
pub struct CpuGauge {
    // Utilization in parts-per-million: an AtomicU64 keeps the cell
    // lock-free without needing atomic f64 support.
    ppm: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl CpuGauge {
    /// Creates a gauge reading 0.0 (idle).
    pub fn new() -> Self {
        CpuGauge::default()
    }

    /// Stores a utilization value; negatives and NaN clamp to 0.0.
    pub fn set(&self, utilization: f64) {
        let clamped = if utilization.is_finite() && utilization > 0.0 {
            utilization
        } else {
            0.0
        };
        self.ppm
            .store((clamped * 1e6) as u64, std::sync::atomic::Ordering::Relaxed);
    }

    /// The last published utilization (`[0, 1+]`; can exceed 1 when work
    /// is queued beyond the publish instant).
    pub fn get(&self) -> f64 {
        self.ppm.load(std::sync::atomic::Ordering::Relaxed) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_fifo_queues() {
        let mut cpu = CpuModel::new(1_000_000.0, 1);
        let a = cpu.submit(SimTime::ZERO, 500);
        let b = cpu.submit(SimTime::ZERO, 500);
        assert_eq!(a.as_micros(), 500);
        assert_eq!(b.as_micros(), 1000);
        assert_eq!(cpu.jobs(), 2);
    }

    #[test]
    fn multi_core_runs_in_parallel() {
        let mut cpu = CpuModel::new(1_000_000.0, 2);
        let a = cpu.submit(SimTime::ZERO, 1000);
        let b = cpu.submit(SimTime::ZERO, 1000);
        let c = cpu.submit(SimTime::ZERO, 1000);
        assert_eq!(a.as_millis(), 1);
        assert_eq!(b.as_millis(), 1);
        assert_eq!(c.as_millis(), 2);
    }

    #[test]
    fn idle_cpu_starts_at_arrival() {
        let mut cpu = CpuModel::new(1_000_000.0, 1);
        let arrival = SimTime::from_nanos(5_000_000);
        let done = cpu.submit(arrival, 1000);
        assert_eq!(done.as_millis(), 6);
        assert_eq!(cpu.backlog(SimTime::ZERO).as_millis(), 6);
    }

    #[test]
    fn service_time_scales_with_clock() {
        let fast = CpuModel::new(2_000_000.0, 1);
        let slow = CpuModel::new(1_000_000.0, 1);
        assert_eq!(fast.service_time(2000).as_millis(), 1);
        assert_eq!(slow.service_time(2000).as_millis(), 2);
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut cpu = CpuModel::new(1_000_000.0, 1);
        cpu.submit(SimTime::ZERO, 500_000); // 0.5 s of work
        let at_1s = SimTime::from_nanos(1_000_000_000);
        assert!((cpu.utilization(at_1s) - 0.5).abs() < 1e-9);
        assert_eq!(cpu.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn gauge_clamps_and_shares() {
        let gauge = CpuGauge::new();
        assert_eq!(gauge.get(), 0.0);
        let reader = gauge.clone();
        gauge.set(0.75);
        assert!((reader.get() - 0.75).abs() < 1e-6);
        gauge.set(-1.0);
        assert_eq!(reader.get(), 0.0);
        gauge.set(f64::NAN);
        assert_eq!(reader.get(), 0.0);
        gauge.set(1.25); // transient overload publishes as-is
        assert!((reader.get() - 1.25).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "cores must be nonzero")]
    fn zero_cores_rejected() {
        CpuModel::new(1e6, 0);
    }

    #[test]
    #[should_panic(expected = "clock_hz must be positive")]
    fn bad_clock_rejected() {
        CpuModel::new(0.0, 1);
    }
}
