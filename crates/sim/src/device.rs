//! Device profiles matching the paper's testbed.
//!
//! Section 4 of the paper runs its experiments on four device classes. The
//! profiles below carry the published clock rates and core counts; the
//! remaining knobs (cycles per protocol operation) live with the workloads in
//! `alfredo-bench` and are documented in `EXPERIMENTS.md`.
//!
//! | Profile | Paper hardware |
//! |---|---|
//! | [`DeviceProfile::nokia_9300i`] | Nokia 9300i, 150 MHz ARM9, WLAN 802.11b |
//! | [`DeviceProfile::sony_ericsson_m600i`] | Sony Ericsson M600i, 208 MHz ARM9, Bluetooth 2.0 |
//! | [`DeviceProfile::pentium4_desktop`] | single-core Pentium 4 class desktop |
//! | [`DeviceProfile::opteron_node`] | two-processor dual-core AMD Opteron 2.2 GHz |

use std::fmt;

use crate::cpu::CpuModel;

/// A named device class: CPU clock, core count, and memory budget.
///
/// # Example
///
/// ```
/// use alfredo_sim::DeviceProfile;
///
/// let phone = DeviceProfile::nokia_9300i();
/// assert_eq!(phone.cores(), 1);
/// assert!(phone.clock_hz() < DeviceProfile::pentium4_desktop().clock_hz());
/// let cpu = phone.cpu();
/// assert_eq!(cpu.cores(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    name: &'static str,
    clock_hz: f64,
    cores: usize,
    memory_bytes: u64,
    is_phone: bool,
}

impl DeviceProfile {
    /// Creates a custom device profile.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is not strictly positive or `cores` is zero.
    pub fn new(
        name: &'static str,
        clock_hz: f64,
        cores: usize,
        memory_bytes: u64,
        is_phone: bool,
    ) -> Self {
        assert!(clock_hz > 0.0, "clock_hz must be positive");
        assert!(cores > 0, "cores must be nonzero");
        DeviceProfile {
            name,
            clock_hz,
            cores,
            memory_bytes,
            is_phone,
        }
    }

    /// Nokia 9300i communicator: 150 MHz ARM9, 64 MB, WLAN-capable.
    pub fn nokia_9300i() -> Self {
        DeviceProfile::new("Nokia 9300i", 150e6, 1, 64 << 20, true)
    }

    /// Sony Ericsson M600i: 208 MHz ARM9, 64 MB, Bluetooth 2.0.
    pub fn sony_ericsson_m600i() -> Self {
        DeviceProfile::new("Sony Ericsson M600i", 208e6, 1, 64 << 20, true)
    }

    /// Single-core Pentium 4 class desktop (the paper's server and
    /// single-machine client host).
    pub fn pentium4_desktop() -> Self {
        DeviceProfile::new("Pentium 4 desktop", 3.0e9, 1, 1 << 30, false)
    }

    /// Two-processor dual-core AMD Opteron 2.2 GHz cluster node.
    pub fn opteron_node() -> Self {
        DeviceProfile::new("Opteron 2x2 2.2GHz", 2.2e9, 4, 4 << 30, false)
    }

    /// An iPhone-class device (browser-only client in Section 5.2):
    /// 412 MHz ARM11.
    pub fn iphone() -> Self {
        DeviceProfile::new("Apple iPhone", 412e6, 1, 128 << 20, true)
    }

    /// The profile's human-readable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// CPU clock rate in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Number of CPU cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Installed memory in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    /// Whether this device class is a phone (resource-constrained client).
    pub fn is_phone(&self) -> bool {
        self.is_phone
    }

    /// Builds a fresh [`CpuModel`] for this device.
    pub fn cpu(&self) -> CpuModel {
        CpuModel::new(self.clock_hz, self.cores)
    }

    /// Relative speed of this device versus `other` (clock-rate ratio,
    /// ignoring core count). Used for sanity checks such as the paper's
    /// observation that the M600i is ~40 % faster than the 9300i.
    pub fn speedup_over(&self, other: &DeviceProfile) -> f64 {
        self.clock_hz / other.clock_hz
    }
}

impl fmt::Display for DeviceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.0} MHz x{})",
            self.name,
            self.clock_hz / 1e6,
            self.cores
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_device_relationships_hold() {
        let nokia = DeviceProfile::nokia_9300i();
        let se = DeviceProfile::sony_ericsson_m600i();
        // The paper reports the M600i (208 MHz) is about 40% faster than
        // the 9300i (150 MHz) on CPU-bound phases.
        let speedup = se.speedup_over(&nokia);
        assert!(
            (1.3..1.5).contains(&speedup),
            "expected ~1.39x, got {speedup}"
        );
        assert!(nokia.is_phone() && se.is_phone());
        assert!(!DeviceProfile::pentium4_desktop().is_phone());
    }

    #[test]
    fn opteron_has_four_cores() {
        let node = DeviceProfile::opteron_node();
        assert_eq!(node.cores(), 4);
        assert_eq!(node.cpu().cores(), 4);
    }

    #[test]
    fn display_is_informative() {
        let s = DeviceProfile::nokia_9300i().to_string();
        assert!(s.contains("Nokia"), "{s}");
        assert!(s.contains("150"), "{s}");
    }

    #[test]
    #[should_panic(expected = "cores must be nonzero")]
    fn invalid_profile_rejected() {
        DeviceProfile::new("bad", 1e6, 0, 0, false);
    }
}
