#![warn(missing_docs)]

//! # alfredo-sim
//!
//! A deterministic discrete-event simulator used as the testbed substrate for
//! the AlfredO reproduction.
//!
//! The original paper evaluated AlfredO on physical hardware — a Nokia 9300i
//! and a Sony Ericsson M600i phone, a Pentium 4 desktop, and a cluster of
//! dual-core Opteron machines — connected over 802.11b WLAN, Bluetooth 2.0,
//! and switched Ethernet. None of that hardware is available here, so the
//! experiments run instead on this simulator: virtual time, an event queue,
//! and queueing CPU models calibrated to the paper's device classes.
//!
//! The crate is deliberately small:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`Simulation`] — an event loop generic over a user-supplied world state.
//! * [`CpuModel`] — a multi-core FIFO queueing processor model that converts
//!   abstract *work cycles* into busy time.
//! * [`DeviceProfile`] — named device classes matching the paper's testbed.
//! * [`Summary`] — streaming statistics (mean, min/max, percentiles).
//! * [`SimRng`] — a deterministic splittable random number generator.
//!
//! # Example
//!
//! ```
//! use alfredo_sim::{Simulation, SimDuration};
//!
//! let mut sim = Simulation::new(0u64);
//! sim.schedule(SimDuration::from_millis(5), |count: &mut u64, _ctx| *count += 1);
//! sim.run();
//! assert_eq!(*sim.state(), 1);
//! assert_eq!(sim.now().as_millis(), 5);
//! ```

mod cpu;
mod device;
mod rng;
mod sim;
mod stats;
mod time;

pub use cpu::{CpuGauge, CpuModel};
pub use device::DeviceProfile;
pub use rng::SimRng;
pub use sim::{Ctx, Simulation};
pub use stats::Summary;
pub use time::{SimDuration, SimTime};
