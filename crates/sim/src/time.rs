//! Virtual time types.
//!
//! The simulator measures time in integer nanoseconds so that event ordering
//! is exact and runs are bit-for-bit reproducible. [`SimTime`] is a point on
//! the virtual timeline; [`SimDuration`] is a span between two points.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since the start of the simulation.
///
/// # Example
///
/// ```
/// use alfredo_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(100);
/// assert_eq!(t.as_millis(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Example
///
/// ```
/// use alfredo_sim::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 2500);
/// assert!((d.as_secs_f64() - 0.0025).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns the raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time in whole microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time in whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the time in seconds as a floating-point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Returns the later of two time points.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from floating-point seconds, rounding to the
    /// nearest nanosecond. Negative and non-finite inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration in milliseconds as a floating-point value.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration in seconds as a floating-point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        let u = t + SimDuration::from_millis(5);
        assert_eq!(u.duration_since(t), SimDuration::from_millis(5));
        assert_eq!(u - SimDuration::from_millis(15), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_backwards() {
        SimTime::ZERO.duration_since(SimTime::from_nanos(1));
    }

    #[test]
    fn duration_from_secs_f64_saturates() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.001),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn display_chooses_unit() {
        assert_eq!(SimDuration::from_nanos(15).to_string(), "15ns");
        assert_eq!(SimDuration::from_micros(15).to_string(), "15.000us");
        assert_eq!(SimDuration::from_millis(15).to_string(), "15.000ms");
        assert_eq!(SimDuration::from_secs(15).to_string(), "15.000s");
    }

    #[test]
    fn saturating_sub_stops_at_zero() {
        let small = SimDuration::from_millis(1);
        let big = SimDuration::from_millis(2);
        assert_eq!(small.saturating_sub(big), SimDuration::ZERO);
        assert_eq!(big.saturating_sub(small), SimDuration::from_millis(1));
    }

    #[test]
    fn scalar_mul_div() {
        let d = SimDuration::from_millis(4);
        assert_eq!(d * 3, SimDuration::from_millis(12));
        assert_eq!(d / 2, SimDuration::from_millis(2));
    }
}
