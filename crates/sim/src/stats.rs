//! Streaming statistics for experiment reporting.

use std::fmt;

use crate::time::SimDuration;

/// Collects samples and reports count, mean, min/max, standard deviation and
/// percentiles. Samples are retained so exact percentiles can be computed,
/// matching how the paper reports "average invocation time over ≥90 s".
///
/// # Example
///
/// ```
/// use alfredo_sim::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sum: f64,
    sum_sq: f64,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "non-finite sample: {value}");
        self.samples.push(value);
        self.sum += value;
        self.sum_sq += value * value;
        self.sorted = false;
    }

    /// Records a duration sample in milliseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum / self.samples.len() as f64
        }
    }

    /// Population standard deviation, or 0.0 if empty.
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / n as f64 - mean * mean).max(0.0).sqrt()
    }

    /// Smallest sample, or 0.0 if empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample, or 0.0 if empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Exact percentile in `[0, 100]` by nearest-rank, or 0.0 if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.samples[rank.clamp(1, n) - 1]
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Borrow the raw samples (unsorted order is not guaranteed once a
    /// percentile has been queried).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count(),
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(99.0), 0.0);
    }

    #[test]
    fn basic_moments() {
        let mut s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.median(), 4.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut s: Summary = (1..=100).map(f64::from).collect();
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(95.0), 95.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn record_duration_uses_millis() {
        let mut s = Summary::new();
        s.record_duration(SimDuration::from_micros(1500));
        assert!((s.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn extend_and_display() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("n=3"), "{text}");
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_out_of_range_panics() {
        Summary::new().percentile(101.0);
    }
}
