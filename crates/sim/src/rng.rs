//! Deterministic random number generation.
//!
//! All stochastic elements of the simulated testbed (link jitter, workload
//! think times) draw from a [`SimRng`] seeded explicitly, so every experiment
//! run is reproducible. The generator is SplitMix64 — tiny, fast, and good
//! enough for simulation noise — wrapped with a `split` operation so that
//! independent components can derive uncorrelated streams from one seed.

/// A deterministic, splittable RNG for simulation use.
///
/// # Example
///
/// ```
/// use alfredo_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let mut child = a.split();
/// // The child stream differs from the parent's continuation.
/// assert_ne!(child.next_u64(), a.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from an explicit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derives an independent child generator. The parent advances by one
    /// step so that repeated splits produce distinct streams.
    pub fn split(&mut self) -> SimRng {
        SimRng {
            state: self.next_u64() ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift bounded sampling; bias is negligible for
        // simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_f64 requires lo < hi");
        lo + self.next_f64() * (hi - lo)
    }

    /// An exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.next_f64(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl Default for SimRng {
    fn default() -> Self {
        SimRng::seed_from(0x05ee_da1f_2ed0_cafe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SimRng::seed_from(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should appear");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::seed_from(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((4.7..5.3).contains(&mean), "mean {mean}");
    }

    #[test]
    fn split_streams_diverge() {
        let mut parent = SimRng::seed_from(9);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let s1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be nonzero")]
    fn zero_bound_panics() {
        SimRng::seed_from(0).next_below(0);
    }
}
