//! The discrete-event engine.
//!
//! A [`Simulation`] owns a user-defined world state `S` and a time-ordered
//! queue of events. Each event is a closure receiving `&mut S` and a
//! [`Ctx`] handle through which it can read the clock and schedule further
//! events. Events at the same timestamp run in insertion order (FIFO), which
//! keeps runs deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

type EventFn<S> = Box<dyn FnOnce(&mut S, &mut Ctx<S>)>;

struct Scheduled<S> {
    at: SimTime,
    seq: u64,
    run: EventFn<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<S> Eq for Scheduled<S> {}

impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties break on sequence number: lower seq (scheduled earlier) first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Scheduling context passed to every event handler.
///
/// Allows a running event to read the current virtual time and enqueue
/// follow-up events without borrowing the whole [`Simulation`].
pub struct Ctx<S> {
    now: SimTime,
    next_seq: u64,
    pending: Vec<Scheduled<S>>,
    stop: bool,
}

impl<S> Ctx<S> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to run `delay` after the current time.
    pub fn schedule<F>(&mut self, delay: SimDuration, event: F)
    where
        F: FnOnce(&mut S, &mut Ctx<S>) + 'static,
    {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at an absolute virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past relative to the current event.
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut S, &mut Ctx<S>) + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(Scheduled {
            at,
            seq,
            run: Box::new(event),
        });
    }

    /// Requests the event loop to stop after the current event returns.
    /// Remaining queued events are discarded by [`Simulation::run`].
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

impl<S> std::fmt::Debug for Ctx<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("now", &self.now)
            .field("pending", &self.pending.len())
            .finish()
    }
}

/// A discrete-event simulation over a world state `S`.
///
/// # Example
///
/// ```
/// use alfredo_sim::{SimDuration, Simulation};
///
/// // Count how many pings fit in one virtual second at a 100 ms period.
/// let mut sim = Simulation::new(0u32);
/// fn ping(count: &mut u32, ctx: &mut alfredo_sim::Ctx<u32>) {
///     if ctx.now().as_millis() >= 1000 {
///         return;
///     }
///     *count += 1;
///     ctx.schedule(SimDuration::from_millis(100), ping);
/// }
/// sim.schedule(SimDuration::ZERO, ping);
/// sim.run();
/// assert_eq!(*sim.state(), 10);
/// ```
pub struct Simulation<S> {
    state: S,
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<Scheduled<S>>,
    executed: u64,
}

impl<S> Simulation<S> {
    /// Creates a simulation at time zero with the given world state.
    pub fn new(state: S) -> Self {
        Simulation {
            state,
            now: SimTime::ZERO,
            next_seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the world state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the simulation, returning the world state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Total number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently queued.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` to run `delay` after the current time.
    pub fn schedule<F>(&mut self, delay: SimDuration, event: F)
    where
        F: FnOnce(&mut S, &mut Ctx<S>) + 'static,
    {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at an absolute virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut S, &mut Ctx<S>) + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            run: Box::new(event),
        });
    }

    /// Runs a single event if one is queued. Returns `true` if an event ran.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event queue yielded a past event");
        self.now = ev.at;
        let mut ctx = Ctx {
            now: self.now,
            next_seq: self.next_seq,
            pending: Vec::new(),
            stop: false,
        };
        (ev.run)(&mut self.state, &mut ctx);
        self.executed += 1;
        self.next_seq = ctx.next_seq;
        let stop = ctx.stop;
        for p in ctx.pending {
            self.queue.push(p);
        }
        if stop {
            self.queue.clear();
        }
        true
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue is empty or the clock passes `deadline`.
    /// Events scheduled after the deadline remain queued; the clock is left
    /// at the last executed event (or advanced to `deadline` if the next
    /// event lies beyond it).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                self.now = deadline;
                return;
            }
            self.step();
        }
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for Simulation<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .field("state", &self.state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulation::new(Vec::new());
        sim.schedule(SimDuration::from_millis(30), |log: &mut Vec<u32>, _| {
            log.push(3)
        });
        sim.schedule(SimDuration::from_millis(10), |log: &mut Vec<u32>, _| {
            log.push(1)
        });
        sim.schedule(SimDuration::from_millis(20), |log: &mut Vec<u32>, _| {
            log.push(2)
        });
        sim.run();
        assert_eq!(sim.state(), &[1, 2, 3]);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn simultaneous_events_run_fifo() {
        let mut sim = Simulation::new(Vec::new());
        for i in 0..10u32 {
            sim.schedule(SimDuration::from_millis(5), move |log: &mut Vec<u32>, _| {
                log.push(i)
            });
        }
        sim.run();
        assert_eq!(sim.state(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn nested_scheduling_advances_clock() {
        let mut sim = Simulation::new(0u64);
        sim.schedule(SimDuration::from_millis(1), |_, ctx| {
            ctx.schedule(SimDuration::from_millis(2), |s: &mut u64, ctx| {
                *s = ctx.now().as_millis();
            });
        });
        sim.run();
        assert_eq!(*sim.state(), 3);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(0u32);
        fn tick(s: &mut u32, ctx: &mut Ctx<u32>) {
            *s += 1;
            ctx.schedule(SimDuration::from_millis(10), tick);
        }
        sim.schedule(SimDuration::ZERO, tick);
        sim.run_until(SimTime::from_nanos(95_000_000));
        // ticks at 0,10,...,90 => 10 ticks
        assert_eq!(*sim.state(), 10);
        assert_eq!(sim.now(), SimTime::from_nanos(95_000_000));
        assert_eq!(sim.events_pending(), 1);
    }

    #[test]
    fn stop_clears_queue() {
        let mut sim = Simulation::new(0u32);
        sim.schedule(SimDuration::from_millis(1), |s: &mut u32, ctx| {
            *s += 1;
            ctx.stop();
        });
        sim.schedule(SimDuration::from_millis(2), |s: &mut u32, _| *s += 100);
        sim.run();
        assert_eq!(*sim.state(), 1);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new(());
        sim.schedule(SimDuration::from_millis(5), |_, ctx| {
            ctx.schedule_at(SimTime::ZERO, |_, _| {});
        });
        sim.run();
    }

    #[test]
    fn state_accessors() {
        let mut sim = Simulation::new(41u32);
        *sim.state_mut() += 1;
        assert_eq!(*sim.state(), 42);
        assert_eq!(sim.into_state(), 42);
    }
}
