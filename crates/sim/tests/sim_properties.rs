//! Property-based tests for the discrete-event engine invariants.

use alfredo_sim::{CpuModel, SimDuration, SimRng, SimTime, Simulation, Summary};
use proptest::prelude::*;

proptest! {
    /// Events always execute in non-decreasing time order, regardless of the
    /// order in which they were scheduled.
    #[test]
    fn events_execute_in_time_order(delays in prop::collection::vec(0u64..10_000, 1..64)) {
        let mut sim = Simulation::new(Vec::<u64>::new());
        for d in &delays {
            let at = SimDuration::from_micros(*d);
            sim.schedule(at, |log: &mut Vec<u64>, ctx| log.push(ctx.now().as_nanos()));
        }
        sim.run();
        let log = sim.state();
        prop_assert_eq!(log.len(), delays.len());
        prop_assert!(log.windows(2).all(|w| w[0] <= w[1]));
    }

    /// An event never runs before its scheduled time.
    #[test]
    fn no_event_runs_early(delays in prop::collection::vec(0u64..10_000, 1..32)) {
        let mut sim = Simulation::new(Vec::<(u64, u64)>::new());
        for d in &delays {
            let want = SimDuration::from_micros(*d).as_nanos();
            sim.schedule(SimDuration::from_micros(*d), move |log: &mut Vec<(u64, u64)>, ctx| {
                log.push((want, ctx.now().as_nanos()));
            });
        }
        sim.run();
        for (want, got) in sim.state() {
            prop_assert_eq!(want, got);
        }
    }

    /// CPU completion times are FIFO per core: a job submitted later never
    /// completes before an identical job submitted earlier.
    #[test]
    fn cpu_fifo_completion(
        cycles in prop::collection::vec(1u64..1_000_000, 1..40),
        cores in 1usize..4,
    ) {
        let mut cpu = CpuModel::new(1e8, cores);
        let mut last_end_per_size: Option<SimTime> = None;
        let mut prev = SimTime::ZERO;
        for c in cycles {
            let end = cpu.submit(SimTime::ZERO, c);
            prop_assert!(end >= SimTime::ZERO);
            // Total busy time is monotone.
            prop_assert!(cpu.total_busy().as_nanos() > 0);
            if cores == 1 {
                // Single core: strictly sequential.
                prop_assert!(end > prev);
                prev = end;
            }
            last_end_per_size = Some(end);
        }
        prop_assert!(last_end_per_size.is_some());
    }

    /// CPU conservation: total busy time equals the sum of per-job service
    /// times.
    #[test]
    fn cpu_conserves_work(cycles in prop::collection::vec(1u64..1_000_000, 1..40)) {
        let mut cpu = CpuModel::new(1e9, 2);
        let mut expect = SimDuration::ZERO;
        for c in &cycles {
            expect += cpu.service_time(*c);
            cpu.submit(SimTime::ZERO, *c);
        }
        let got = cpu.total_busy();
        let diff = got.as_nanos().abs_diff(expect.as_nanos());
        prop_assert!(diff <= cycles.len() as u64, "rounding drift too large: {diff}");
    }

    /// Summary mean lies between min and max.
    #[test]
    fn summary_mean_bounded(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let s: Summary = values.iter().copied().collect();
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert_eq!(s.count(), values.len());
    }

    /// Percentiles are monotone in p.
    #[test]
    fn summary_percentiles_monotone(values in prop::collection::vec(0f64..1e6, 1..100)) {
        let mut s: Summary = values.into_iter().collect();
        let p25 = s.percentile(25.0);
        let p50 = s.percentile(50.0);
        let p99 = s.percentile(99.0);
        prop_assert!(p25 <= p50 && p50 <= p99);
    }

    /// RNG bounded sampling stays in range and identical seeds agree.
    #[test]
    fn rng_determinism(seed in any::<u64>(), bound in 1u64..1000) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..50 {
            let x = a.next_below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.next_below(bound));
        }
    }
}
