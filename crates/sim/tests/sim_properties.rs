//! Randomized tests for the discrete-event engine invariants, driven by
//! the deterministic [`SimRng`] so failures are reproducible from the seed.

use alfredo_sim::{CpuModel, SimDuration, SimRng, SimTime, Simulation, Summary};

const SEED: u64 = 0x51a1_0e5d;
const CASES: usize = 60;

/// Events always execute in non-decreasing time order, regardless of the
/// order in which they were scheduled.
#[test]
fn events_execute_in_time_order() {
    let mut rng = SimRng::seed_from(SEED);
    for _ in 0..CASES {
        let delays: Vec<u64> = (0..1 + rng.next_below(63))
            .map(|_| rng.next_below(10_000))
            .collect();
        let mut sim = Simulation::new(Vec::<u64>::new());
        for d in &delays {
            let at = SimDuration::from_micros(*d);
            sim.schedule(at, |log: &mut Vec<u64>, ctx| log.push(ctx.now().as_nanos()));
        }
        sim.run();
        let log = sim.state();
        assert_eq!(log.len(), delays.len());
        assert!(log.windows(2).all(|w| w[0] <= w[1]));
    }
}

/// An event never runs before its scheduled time.
#[test]
fn no_event_runs_early() {
    let mut rng = SimRng::seed_from(SEED ^ 1);
    for _ in 0..CASES {
        let delays: Vec<u64> = (0..1 + rng.next_below(31))
            .map(|_| rng.next_below(10_000))
            .collect();
        let mut sim = Simulation::new(Vec::<(u64, u64)>::new());
        for d in &delays {
            let want = SimDuration::from_micros(*d).as_nanos();
            sim.schedule(
                SimDuration::from_micros(*d),
                move |log: &mut Vec<(u64, u64)>, ctx| {
                    log.push((want, ctx.now().as_nanos()));
                },
            );
        }
        sim.run();
        for (want, got) in sim.state() {
            assert_eq!(want, got);
        }
    }
}

/// CPU completion times are FIFO per core: a job submitted later never
/// completes before an identical job submitted earlier.
#[test]
fn cpu_fifo_completion() {
    let mut rng = SimRng::seed_from(SEED ^ 2);
    for _ in 0..CASES {
        let cores = 1 + rng.next_below(3) as usize;
        let cycles: Vec<u64> = (0..1 + rng.next_below(39))
            .map(|_| 1 + rng.next_below(1_000_000 - 1))
            .collect();
        let mut cpu = CpuModel::new(1e8, cores);
        let mut last_end: Option<SimTime> = None;
        let mut prev = SimTime::ZERO;
        for c in cycles {
            let end = cpu.submit(SimTime::ZERO, c);
            assert!(end >= SimTime::ZERO);
            // Total busy time is monotone.
            assert!(cpu.total_busy().as_nanos() > 0);
            if cores == 1 {
                // Single core: strictly sequential.
                assert!(end > prev);
                prev = end;
            }
            last_end = Some(end);
        }
        assert!(last_end.is_some());
    }
}

/// CPU conservation: total busy time equals the sum of per-job service
/// times.
#[test]
fn cpu_conserves_work() {
    let mut rng = SimRng::seed_from(SEED ^ 3);
    for _ in 0..CASES {
        let cycles: Vec<u64> = (0..1 + rng.next_below(39))
            .map(|_| 1 + rng.next_below(1_000_000 - 1))
            .collect();
        let mut cpu = CpuModel::new(1e9, 2);
        let mut expect = SimDuration::ZERO;
        for c in &cycles {
            expect += cpu.service_time(*c);
            cpu.submit(SimTime::ZERO, *c);
        }
        let got = cpu.total_busy();
        let diff = got.as_nanos().abs_diff(expect.as_nanos());
        assert!(
            diff <= cycles.len() as u64,
            "rounding drift too large: {diff}"
        );
    }
}

/// Summary mean lies between min and max.
#[test]
fn summary_mean_bounded() {
    let mut rng = SimRng::seed_from(SEED ^ 4);
    for _ in 0..CASES {
        let values: Vec<f64> = (0..1 + rng.next_below(99))
            .map(|_| rng.uniform_f64(-1e6, 1e6))
            .collect();
        let s: Summary = values.iter().copied().collect();
        assert!(s.mean() >= s.min() - 1e-9);
        assert!(s.mean() <= s.max() + 1e-9);
        assert_eq!(s.count(), values.len());
    }
}

/// Percentiles are monotone in p.
#[test]
fn summary_percentiles_monotone() {
    let mut rng = SimRng::seed_from(SEED ^ 5);
    for _ in 0..CASES {
        let values: Vec<f64> = (0..1 + rng.next_below(99))
            .map(|_| rng.uniform_f64(0.0, 1e6))
            .collect();
        let mut s: Summary = values.into_iter().collect();
        let p25 = s.percentile(25.0);
        let p50 = s.percentile(50.0);
        let p99 = s.percentile(99.0);
        assert!(p25 <= p50 && p50 <= p99);
    }
}

/// RNG bounded sampling stays in range and identical seeds agree.
#[test]
fn rng_determinism() {
    let mut meta = SimRng::seed_from(SEED ^ 6);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let bound = 1 + meta.next_below(999);
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..50 {
            let x = a.next_below(bound);
            assert!(x < bound);
            assert_eq!(x, b.next_below(bound));
        }
    }
}
