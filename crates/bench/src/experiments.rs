//! The experiment drivers: one function per table/figure of the paper,
//! plus the ablations called out in `DESIGN.md` §4.
//!
//! Each driver returns a structured result (so tests can assert the
//! paper's qualitative claims) with a `render()` method for the `repro`
//! binary's output.

use alfredo_apps::shop::SHOP_INTERFACE;
use alfredo_apps::{register_mouse_controller, register_shop, sample_catalog, MOUSE_INTERFACE};
use alfredo_core::{serve_device, AlfredOEngine, EngineConfig, FootprintItem, FootprintReport};
use alfredo_net::{InMemoryNetwork, LinkProfile, PeerAddr};
use alfredo_osgi::Framework;
use alfredo_rosgi::DiscoveryDirectory;
use alfredo_sim::{DeviceProfile, SimDuration, Summary};
use alfredo_ui::DeviceCapabilities;

use crate::calib;
use crate::model::{
    mouse_wire_sizes, shop_wire_sizes, InvocationLoadSim, LoadConfig, PhoneLoopConfig,
    PhoneLoopSim, StartupBreakdown, StartupModel,
};
use crate::report::{Series, Table};

fn ms(d: SimDuration) -> String {
    format!("{:.0}", d.as_millis_f64())
}

// ---------------------------------------------------------------------
// §4.1 — Resource consumption
// ---------------------------------------------------------------------

/// The §4.1 result: file footprints of shippable artifacts and runtime
/// memory of both applications, measured on live sessions.
#[derive(Debug)]
pub struct FootprintResult {
    /// The measurements.
    pub report: FootprintReport,
    /// MouseController runtime memory (bytes).
    pub mouse_runtime: u64,
    /// AlfredOShop runtime memory (bytes).
    pub shop_runtime: u64,
}

impl FootprintResult {
    /// Renders the §4.1 table.
    pub fn render(&self) -> String {
        format!("== §4.1 Resource consumption ==\n{}\n", self.report)
    }

    /// CSV rows: `experiment,item,bytes,paper_bytes`.
    pub fn csv(&self) -> String {
        let mut out = String::from("experiment,item,bytes,paper_bytes\n");
        for item in self.report.items() {
            out.push_str(&format!(
                "footprint,{:?},{},{}\n",
                item.name,
                item.bytes,
                item.paper_bytes.map(|b| b.to_string()).unwrap_or_default()
            ));
        }
        out
    }
}

/// Runs the resource-consumption experiment on live in-memory sessions.
pub fn footprint() -> FootprintResult {
    let mut report = FootprintReport::new();

    // Platform footprint: the compiled client binary, if discoverable.
    if let Some((path, bytes)) = platform_binary() {
        report.push(FootprintItem::with_paper(
            format!("core platform (binary: {})", path),
            bytes,
            290 * 1024,
        ));
    }

    // Shippable artifact sizes (exact encoded bytes).
    let mouse_sizes = mouse_wire_sizes();
    let shop_sizes = shop_wire_sizes();
    report.push(FootprintItem::with_paper(
        "MouseController shipped bundle (iface+descriptor)",
        mouse_sizes.service_bundle as u64,
        2 * 1024,
    ));
    report.push(FootprintItem::with_paper(
        "AlfredOShop shipped bundle (iface+descriptor)",
        shop_sizes.service_bundle as u64,
        2 * 1024,
    ));

    // Live sessions: proxy bundle footprints and runtime memory.
    let (mouse_proxy, mouse_runtime, renderer_artifacts) = live_mouse_measurements();
    let (shop_proxy, shop_runtime) = live_shop_measurements();
    report.push(FootprintItem::with_paper(
        "MouseController proxy bundle (generated)",
        mouse_proxy,
        6 * 1024,
    ));
    report.push(FootprintItem::with_paper(
        "AlfredOShop proxy bundle (generated)",
        shop_proxy,
        7 * 1024,
    ));
    for (name, bytes) in renderer_artifacts {
        report.push(FootprintItem::new(name, bytes));
    }
    report.push(FootprintItem::with_paper(
        "MouseController runtime memory (RGB snapshot dominates)",
        mouse_runtime,
        200 * 1024,
    ));
    report.push(FootprintItem::with_paper(
        "AlfredOShop runtime memory",
        shop_runtime,
        30 * 1024,
    ));

    FootprintResult {
        report,
        mouse_runtime,
        shop_runtime,
    }
}

fn platform_binary() -> Option<(String, u64)> {
    // Prefer the quickstart example (a minimal client); fall back to the
    // running binary.
    for candidate in [
        "target/release/examples/quickstart",
        "target/debug/examples/quickstart",
    ] {
        if let Ok(meta) = std::fs::metadata(candidate) {
            return Some((candidate.to_owned(), meta.len()));
        }
    }
    let exe = std::env::current_exe().ok()?;
    let meta = std::fs::metadata(&exe).ok()?;
    Some((exe.file_name()?.to_string_lossy().into_owned(), meta.len()))
}

/// Runs a real MouseController session and measures the proxy footprint,
/// runtime memory (after a snapshot arrived), and rendered-artifact sizes.
fn live_mouse_measurements() -> (u64, u64, Vec<(String, u64)>) {
    let net = InMemoryNetwork::new();
    let fw = Framework::new();
    let (service, _reg) = register_mouse_controller(&fw, 1280, 800).expect("register");
    let device = serve_device(&net, fw, PeerAddr::new("fp-laptop")).expect("serve");
    let engine = AlfredOEngine::new(
        Framework::new(),
        net,
        DiscoveryDirectory::new(),
        EngineConfig::phone("fp-phone", DeviceCapabilities::nokia_9300i()),
    );
    let conn = engine
        .connect(&PeerAddr::new("fp-laptop"))
        .expect("connect");
    let session = conn.acquire(MOUSE_INTERFACE).expect("acquire");
    // Drive a snapshot into the session so runtime memory includes the
    // bitmap, as in the paper's measurement.
    let mut runtime = session.memory_footprint() as u64;
    for i in 0..200u64 {
        service.maybe_publish_snapshot(i, 0);
        session.pump_events().expect("pump");
        let m = session.memory_footprint() as u64;
        if m > 150_000 {
            runtime = m;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let proxy = session.proxy_footprint() as u64;

    // Renderer artifacts for the same UI on different backends.
    let ui = &session.descriptor().ui;
    let mut renderers = Vec::new();
    use alfredo_ui::render::{GridRenderer, HtmlRenderer, Renderer, WidgetRenderer};
    for (name, rendered) in [
        (
            "grid renderer artifact (AWT stand-in)",
            GridRenderer::default().render(ui, &DeviceCapabilities::nokia_9300i()),
        ),
        (
            "widget renderer artifact (SWT stand-in)",
            WidgetRenderer::default().render(ui, &DeviceCapabilities::nokia_9300i()),
        ),
        (
            "html renderer artifact (servlet stand-in)",
            HtmlRenderer::default().render(ui, &DeviceCapabilities::iphone()),
        ),
    ] {
        if let Ok(r) = rendered {
            renderers.push((name.to_owned(), r.memory_footprint() as u64));
        }
    }
    session.close();
    conn.close();
    device.stop();
    (proxy, runtime, renderers)
}

fn live_shop_measurements() -> (u64, u64) {
    let net = InMemoryNetwork::new();
    let fw = Framework::new();
    register_shop(&fw, sample_catalog()).expect("register");
    let device = serve_device(&net, fw, PeerAddr::new("fp-screen")).expect("serve");
    let engine = AlfredOEngine::new(
        Framework::new(),
        net,
        DiscoveryDirectory::new(),
        EngineConfig::phone("fp-phone2", DeviceCapabilities::nokia_9300i()),
    );
    let conn = engine
        .connect(&PeerAddr::new("fp-screen"))
        .expect("connect");
    let session = conn.acquire(SHOP_INTERFACE).expect("acquire");
    // Interact a bit so state is realistic.
    session
        .handle_event(&alfredo_ui::UiEvent::Click {
            control: "refresh".into(),
        })
        .expect("refresh");
    session
        .handle_event(&alfredo_ui::UiEvent::Selected {
            control: "categories".into(),
            index: 0,
        })
        .expect("select");
    let runtime = session.memory_footprint() as u64;
    let proxy = session.proxy_footprint() as u64;
    session.close();
    conn.close();
    device.stop();
    (proxy, runtime)
}

// ---------------------------------------------------------------------
// Tables 1 & 2
// ---------------------------------------------------------------------

/// The result of a Table 1/2 run.
#[derive(Debug)]
pub struct StartupResult {
    /// Table title.
    pub title: String,
    /// MouseController phases.
    pub mouse: StartupBreakdown,
    /// AlfredOShop phases.
    pub shop: StartupBreakdown,
    /// The paper's total times (ms) for the side-by-side.
    pub paper_totals: (u64, u64),
}

impl StartupResult {
    /// Renders in the paper's row layout.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            self.title.clone(),
            vec!["MouseController".into(), "AlfredOShop".into()],
        );
        t.row(
            "Acquire service interface",
            vec![ms(self.mouse.acquire), ms(self.shop.acquire)],
        );
        t.row(
            "Build proxy bundle",
            vec![ms(self.mouse.build), ms(self.shop.build)],
        );
        t.row(
            "Install proxy bundle",
            vec![ms(self.mouse.install), ms(self.shop.install)],
        );
        t.row(
            "Start proxy bundle",
            vec![ms(self.mouse.start), ms(self.shop.start)],
        );
        t.row(
            "Total start time",
            vec![ms(self.mouse.total()), ms(self.shop.total())],
        );
        t.row(
            "(paper total)",
            vec![
                format!("{}", self.paper_totals.0),
                format!("{}", self.paper_totals.1),
            ],
        );
        t.render()
    }

    /// CSV rows: `experiment,phase,mouse_ms,shop_ms`.
    pub fn csv(&self) -> String {
        let id = if self.title.contains("Table 1") {
            "table1"
        } else {
            "table2"
        };
        let mut out = String::from("experiment,phase,mouse_ms,shop_ms\n");
        for (phase, m, s) in [
            ("acquire", self.mouse.acquire, self.shop.acquire),
            ("build", self.mouse.build, self.shop.build),
            ("install", self.mouse.install, self.shop.install),
            ("start", self.mouse.start, self.shop.start),
            ("total", self.mouse.total(), self.shop.total()),
        ] {
            out.push_str(&format!(
                "{id},{phase},{:.1},{:.1}\n",
                m.as_millis_f64(),
                s.as_millis_f64()
            ));
        }
        out
    }
}

fn startup(
    phone: DeviceProfile,
    link: LinkProfile,
    title: &str,
    paper: (u64, u64),
) -> StartupResult {
    let model = StartupModel { phone, link };
    StartupResult {
        title: title.to_owned(),
        mouse: model.run(mouse_wire_sizes(), calib::START_MOUSE_CYCLES),
        shop: model.run(shop_wire_sizes(), calib::START_SHOP_CYCLES),
        paper_totals: paper,
    }
}

/// Table 1: initial delay on a Nokia 9300i over WLAN.
pub fn table1() -> StartupResult {
    startup(
        calib::nokia_9300i(),
        calib::phone_wlan(),
        "Table 1 — initial delay, Nokia 9300i over WLAN (ms)",
        (4922, 4282),
    )
}

/// Table 2: initial delay on a Sony Ericsson M600i over Bluetooth.
pub fn table2() -> StartupResult {
    startup(
        calib::sony_ericsson_m600i(),
        calib::phone_bluetooth(),
        "Table 2 — initial delay, SE M600i over Bluetooth (ms)",
        (3296, 2699),
    )
}

// ---------------------------------------------------------------------
// Figures 3 & 4
// ---------------------------------------------------------------------

/// The result of a scalability figure.
#[derive(Debug)]
pub struct ScalabilityResult {
    /// Figure title.
    pub title: String,
    /// (clients, mean latency ms, p95 ms) per step.
    pub points: Vec<(usize, f64, f64)>,
}

impl ScalabilityResult {
    /// Mean latency at a given client count, if simulated.
    pub fn mean_at(&self, clients: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|(c, _, _)| *c == clients)
            .map(|(_, m, _)| *m)
    }

    /// Renders the series.
    pub fn render(&self) -> String {
        let mut s = Series::new(self.title.clone(), "clients", "mean ms");
        for (c, mean, _) in &self.points {
            s.push(*c as f64, *mean);
        }
        s.render()
    }

    /// CSV rows: `experiment,clients,mean_ms,p95_ms`.
    pub fn csv(&self) -> String {
        let id = if self.title.contains("Figure 3") {
            "fig3"
        } else {
            "fig4"
        };
        let mut out = String::from("experiment,clients,mean_ms,p95_ms\n");
        for (c, mean, p95) in &self.points {
            out.push_str(&format!("{id},{c},{mean:.3},{p95:.3}\n"));
        }
        out
    }
}

fn run_load(
    title: &str,
    steps: &[usize],
    config: impl Fn(usize) -> LoadConfig,
) -> ScalabilityResult {
    let mut points = Vec::new();
    for &clients in steps {
        let mut summary = InvocationLoadSim::new(config(clients)).run();
        points.push((clients, summary.mean(), summary.percentile(95.0)));
    }
    ScalabilityResult {
        title: title.to_owned(),
        points,
    }
}

/// Figure 3: invocation time with 1–128 concurrent clients on a single
/// client machine.
pub fn fig3(measure_secs: u64) -> ScalabilityResult {
    run_load(
        "Figure 3 — invocation time vs clients (1 machine, 100 Mb LAN)",
        &[1, 2, 4, 8, 16, 32, 64, 128],
        |clients| LoadConfig {
            measure_window: SimDuration::from_secs(measure_secs),
            ..LoadConfig::fig3(clients)
        },
    )
}

/// Figure 4: invocation time with 6–384 clients on six cluster nodes,
/// plus the 540/600 overload points discussed in the text.
pub fn fig4(measure_secs: u64) -> ScalabilityResult {
    run_load(
        "Figure 4 — invocation time vs clients (6 cluster nodes, 1 Gb LAN)",
        &[6, 12, 24, 48, 96, 192, 384, 540, 600],
        |clients| LoadConfig {
            measure_window: SimDuration::from_secs(measure_secs),
            ..LoadConfig::fig4(clients)
        },
    )
}

// ---------------------------------------------------------------------
// Figures 5 & 6
// ---------------------------------------------------------------------

/// The result of a phone-side figure.
#[derive(Debug)]
pub struct PhoneLoopResult {
    /// Figure title.
    pub title: String,
    /// (services, mean latency ms).
    pub points: Vec<(usize, f64)>,
    /// The ping baseline in ms.
    pub ping_ms: f64,
}

impl PhoneLoopResult {
    /// Mean over all steps.
    pub fn overall_mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|(_, m)| m).sum::<f64>() / self.points.len() as f64
    }

    /// Renders the series with the ping baseline.
    pub fn render(&self) -> String {
        let mut s = Series::new(self.title.clone(), "services", "mean ms")
            .with_baseline("ICMP ping", self.ping_ms);
        for (n, mean) in &self.points {
            s.push(*n as f64, *mean);
        }
        s.render()
    }

    /// CSV rows: `experiment,services,mean_ms,ping_ms`.
    pub fn csv(&self) -> String {
        let id = if self.title.contains("Figure 5") {
            "fig5"
        } else {
            "fig6"
        };
        let mut out = String::from("experiment,services,mean_ms,ping_ms\n");
        for (n, mean) in &self.points {
            out.push_str(&format!("{id},{n},{mean:.3},{:.3}\n", self.ping_ms));
        }
        out
    }
}

fn run_phone_loop(title: &str, config: PhoneLoopConfig) -> PhoneLoopResult {
    let sim = PhoneLoopSim::new(config);
    let mut points = Vec::new();
    for services in [5usize, 10, 15, 20, 25, 30, 35, 40] {
        let summary: Summary = sim.run(services);
        points.push((services, summary.mean()));
    }
    PhoneLoopResult {
        title: title.to_owned(),
        points,
        ping_ms: sim.ping_baseline().as_millis_f64(),
    }
}

/// Figure 5: invocation time vs. number of services on a Nokia 9300i over
/// 802.11b WLAN.
pub fn fig5() -> PhoneLoopResult {
    run_phone_loop(
        "Figure 5 — invocation time vs services, Nokia 9300i over WLAN",
        PhoneLoopConfig::fig5(),
    )
}

/// Figure 6: the same on a Sony Ericsson M600i over Bluetooth 2.0.
pub fn fig6() -> PhoneLoopResult {
    run_phone_loop(
        "Figure 6 — invocation time vs services, SE M600i over Bluetooth",
        PhoneLoopConfig::fig6(),
    )
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// Results of the design-choice ablations of `DESIGN.md` §4.
#[derive(Debug)]
pub struct AblationResult {
    /// (link name, cold-start ms, cached-repeat ms).
    pub proxy_cache: Vec<(&'static str, f64, f64)>,
    /// (link name, remote-call ms, offloaded-local ms).
    pub offload: Vec<(&'static str, f64, f64)>,
    /// (link name, description-ship ms, code-ship ms).
    pub presentation: Vec<(&'static str, f64, f64)>,
    /// (link name, remote-get ms, replica-read ms) — the data-tier
    /// synchronization extension.
    pub data_replica: Vec<(&'static str, f64, f64)>,
}

impl AblationResult {
    /// Renders the three tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut t = Table::new(
            "Ablation A — proxy caching (Nokia 9300i, MouseController)",
            vec!["cold start (ms)".into(), "cached repeat (ms)".into()],
        );
        for (link, cold, cached) in &self.proxy_cache {
            t.row(*link, vec![format!("{cold:.0}"), format!("{cached:.0}")]);
        }
        out.push_str(&t.render());
        out.push('\n');

        let mut t = Table::new(
            "Ablation B — logic offload (compare() on the phone vs remote)",
            vec!["remote call (ms)".into(), "offloaded local (ms)".into()],
        );
        for (link, remote, local) in &self.offload {
            t.row(*link, vec![format!("{remote:.1}"), format!("{local:.1}")]);
        }
        out.push_str(&t.render());
        out.push('\n');

        let mut t = Table::new(
            "Ablation C — shipping a description vs shipping UI code",
            vec!["description (ms)".into(), "code bundle (ms)".into()],
        );
        for (link, desc, code) in &self.presentation {
            t.row(*link, vec![format!("{desc:.1}"), format!("{code:.1}")]);
        }
        out.push_str(&t.render());
        out.push('\n');

        let mut t = Table::new(
            "Ablation D — data-tier reads: remote get vs synchronized replica",
            vec!["remote get (ms)".into(), "replica read (ms)".into()],
        );
        for (link, remote, local) in &self.data_replica {
            t.row(*link, vec![format!("{remote:.2}"), format!("{local:.4}")]);
        }
        out.push_str(&t.render());
        out
    }
}

/// Runs the ablations.
pub fn ablations() -> AblationResult {
    let phone = calib::nokia_9300i();
    let cpu = phone.cpu();
    let links: Vec<(&'static str, LinkProfile)> = vec![
        ("100Mb LAN", calib::lan_100()),
        ("802.11b WLAN", calib::phone_wlan()),
        ("Bluetooth 2.0", calib::phone_bluetooth()),
    ];

    // A: proxy caching. Cold = full Table-1 pipeline; cached = acquire
    // only (validate the lease, skip build+install; start still runs).
    let mouse = mouse_wire_sizes();
    let proxy_cache = links
        .iter()
        .map(|(name, link)| {
            let model = StartupModel {
                phone: phone.clone(),
                link: link.clone(),
            };
            let b = model.run(mouse, calib::START_MOUSE_CYCLES);
            let cold = b.total().as_millis_f64();
            let cached = (b.acquire + b.start).as_millis_f64();
            (*name, cold, cached)
        })
        .collect();

    // B: logic offload. The comparison costs ~2 M cycles of pure compute.
    const COMPARE_CYCLES: u64 = 2_000_000;
    const MARSHAL_CYCLES: u64 = 1_000_000;
    let server = calib::pentium4_desktop();
    let offload = links
        .iter()
        .map(|(name, link)| {
            let remote = cpu.service_time(MARSHAL_CYCLES)
                + link.ping_rtt(200)
                + server.cpu().service_time(COMPARE_CYCLES);
            let local = cpu.service_time(COMPARE_CYCLES);
            (*name, remote.as_millis_f64(), local.as_millis_f64())
        })
        .collect();

    // C: description vs code. The description is the real encoded UI;
    // a code-bearing presentation bundle is ~40 kB (the paper's renderer
    // size) and additionally requires trust.
    let description_bytes = alfredo_apps::MouseControllerService::descriptor()
        .ui
        .encode()
        .len();
    let code_bytes = 40 * 1024;
    let presentation = links
        .iter()
        .map(|(name, link)| {
            let desc = link.transfer_time(description_bytes).as_millis_f64();
            let code = link.transfer_time(code_bytes).as_millis_f64();
            (*name, desc, code)
        })
        .collect();

    // D: data-tier reads. A remote `get` pays marshal + RTT + lookup per
    // read; a synchronized replica reads from local memory (a hash lookup,
    // ~5k cycles on the phone), having paid one snapshot up front.
    const REPLICA_READ_CYCLES: u64 = 5_000;
    const REMOTE_GET_MARSHAL_CYCLES: u64 = 500_000;
    let data_replica = links
        .iter()
        .map(|(name, link)| {
            let remote = cpu.service_time(REMOTE_GET_MARSHAL_CYCLES)
                + link.ping_rtt(80)
                + server.cpu().service_time(200_000);
            let local = cpu.service_time(REPLICA_READ_CYCLES);
            (*name, remote.as_millis_f64(), local.as_millis_f64())
        })
        .collect();

    AblationResult {
        proxy_cache,
        offload,
        presentation,
        data_replica,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let t1 = table1();
        // Build dominates every other phase.
        assert!(t1.mouse.build > t1.mouse.acquire + t1.mouse.install + t1.mouse.start);
        // MouseController starts slower than the shop (1000 vs 359 ms).
        assert!(t1.mouse.start > t1.shop.start * 2);
        // The shop's bigger payload makes its acquire slower.
        assert!(t1.shop.acquire > t1.mouse.acquire);
        // Totals within 2x of the paper's.
        let total = t1.mouse.total().as_millis_f64();
        assert!((2500.0..9000.0).contains(&total), "{total}");
    }

    #[test]
    fn table2_is_faster_cpu_slower_network() {
        let t1 = table1();
        let t2 = table2();
        // CPU phases: the M600i is ~40% faster.
        assert!(t2.mouse.build < t1.mouse.build);
        let speedup = t1.mouse.build.as_secs_f64() / t2.mouse.build.as_secs_f64();
        assert!((1.25..1.55).contains(&speedup), "{speedup}");
        // Network phase: Bluetooth acquire is ~3x WLAN acquire.
        let ratio = t2.mouse.acquire.as_secs_f64() / t1.mouse.acquire.as_secs_f64();
        assert!((1.8..4.5).contains(&ratio), "acquire BT/WLAN {ratio}");
        // Totals: the M600i is faster overall despite the slower link.
        assert!(t2.mouse.total() < t1.mouse.total());
    }

    #[test]
    fn fig3_stays_low_to_128_clients() {
        let r = fig3(8);
        let one = r.mean_at(1).unwrap();
        let full = r.mean_at(128).unwrap();
        assert!((0.4..2.0).contains(&one), "1 client: {one} ms (paper ~1)");
        assert!(full < 4.0, "128 clients: {full} ms (paper < 2.5)");
        assert!(full >= one);
    }

    #[test]
    fn fig4_knee_is_between_400_and_800() {
        let r = fig4(8);
        let at384 = r.mean_at(384).unwrap();
        let at540 = r.mean_at(540).unwrap();
        let at600 = r.mean_at(600).unwrap();
        assert!(at384 < 5.0, "384 clients: {at384} ms (paper 2.2)");
        assert!(at540 < 20.0, "540 clients: {at540} ms (paper 3.6)");
        assert!(
            at600 > at540 * 4.0,
            "overload blowup: {at540} -> {at600} ms (paper >42)"
        );
    }

    #[test]
    fn fig5_fig6_flat_and_comparable() {
        let f5 = fig5();
        let f6 = fig6();
        // Around 100 ms, flat in the service count, above the ping line.
        assert!(
            (60.0..160.0).contains(&f5.overall_mean()),
            "{}",
            f5.overall_mean()
        );
        let spread = f5.points.iter().map(|(_, m)| *m).fold(0.0f64, f64::max)
            - f5.points
                .iter()
                .map(|(_, m)| *m)
                .fold(f64::INFINITY, f64::min);
        assert!(spread < 40.0, "fig5 spread {spread}");
        assert!(f5.overall_mean() > f5.ping_ms);
        // BT is comparable (well within 2x) despite 4x less bandwidth.
        let ratio = f6.overall_mean() / f5.overall_mean();
        assert!((0.5..2.0).contains(&ratio), "fig6/fig5 {ratio}");
    }

    #[test]
    fn ablation_offload_crossover() {
        let a = ablations();
        // On a fast LAN, calling remotely beats local phone compute; on
        // slow phone links, offloading wins.
        let lan = a
            .offload
            .iter()
            .find(|(n, _, _)| *n == "100Mb LAN")
            .unwrap();
        assert!(lan.1 < lan.2, "LAN: remote {} < local {}", lan.1, lan.2);
        let bt = a
            .offload
            .iter()
            .find(|(n, _, _)| *n == "Bluetooth 2.0")
            .unwrap();
        assert!(bt.1 > bt.2, "BT: remote {} > local {}", bt.1, bt.2);
    }

    #[test]
    fn ablation_proxy_cache_saves_build_time() {
        let a = ablations();
        for (link, cold, cached) in &a.proxy_cache {
            assert!(cached * 2.0 < *cold, "{link}: {cached} vs {cold}");
        }
    }

    #[test]
    fn ablation_description_is_cheaper_than_code() {
        let a = ablations();
        for (link, desc, code) in &a.presentation {
            assert!(desc < code, "{link}: {desc} vs {code}");
        }
    }

    #[test]
    fn ablation_replica_reads_beat_remote_gets_on_every_link() {
        let a = ablations();
        for (link, remote, local) in &a.data_replica {
            assert!(
                *local * 10.0 < *remote,
                "{link}: local {local} vs remote {remote}"
            );
        }
    }
}
