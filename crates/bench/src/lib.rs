#![warn(missing_docs)]

//! # alfredo-bench
//!
//! The benchmark harness that regenerates **every table and figure** of
//! the AlfredO paper's evaluation (§4) on the simulated testbed:
//!
//! | Experiment | Paper artifact | Module |
//! |---|---|---|
//! | `footprint` | §4.1 resource consumption | [`experiments::footprint`] |
//! | `table1` | Table 1 — start-up latency, Nokia 9300i over WLAN | [`experiments::table1`] |
//! | `table2` | Table 2 — start-up latency, SE M600i over Bluetooth | [`experiments::table2`] |
//! | `fig3` | Fig. 3 — invocation time vs. concurrent clients (one machine) | [`experiments::fig3`] |
//! | `fig4` | Fig. 4 — invocation time vs. clients on six cluster nodes | [`experiments::fig4`] |
//! | `fig5` | Fig. 5 — invocation time vs. #services, Nokia over WLAN | [`experiments::fig5`] |
//! | `fig6` | Fig. 6 — invocation time vs. #services, M600i over Bluetooth | [`experiments::fig6`] |
//! | `ablate` | design-choice ablations (DESIGN.md §4) | [`experiments::ablations`] |
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p alfredo-bench --release --bin repro
//! ```
//!
//! The harness mixes two levels of fidelity:
//!
//! * **Real protocol artifacts** — every byte count fed into the network
//!   model is the size of a genuinely encoded message produced by
//!   `alfredo-rosgi`/`alfredo-apps` (service bundles, invocations,
//!   responses, descriptors).
//! * **Modelled time** — CPU work and link delays run on the
//!   `alfredo-sim` discrete-event testbed with the device and link
//!   calibration in [`calib`] (each constant is justified there and in
//!   `EXPERIMENTS.md`).

pub mod calib;
pub mod experiments;
pub mod model;
pub mod report;
pub mod timing;
