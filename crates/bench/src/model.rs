//! The modelled testbed: real protocol bytes + simulated time.
//!
//! Three models cover the paper's evaluation:
//!
//! * [`StartupModel`] — the four start-up phases of Tables 1 and 2
//!   (acquire / build / install / start). No contention is involved, so
//!   the phases are closed-form over the device's [`CpuModel`] and the
//!   link profile.
//! * [`InvocationLoadSim`] — Figures 3 and 4: open-loop clients invoking
//!   every 100 ms against one server, with FIFO CPU queueing on every
//!   machine and FIFO serialization on every link. The reported number is
//!   the mean invocation latency of the last-started client over its
//!   measurement window, exactly as the paper measures.
//! * [`PhoneLoopSim`] — Figures 5 and 6: a phone sequentially invoking
//!   one method on each of its acquired services (a closed loop — one
//!   outstanding invocation at a time, which is why the paper's curves
//!   stay flat as the service count grows).

use alfredo_net::{LinkProfile, SimLink};
use alfredo_osgi::{Properties, ServiceCallError, Value};
use alfredo_rosgi::Message;
use alfredo_sim::{CpuModel, DeviceProfile, SimDuration, SimRng, SimTime, Simulation, Summary};

use crate::calib;

/// Real wire sizes for one application's protocol exchanges, computed by
/// encoding genuine messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppWireSizes {
    /// The `ServiceBundle` reply (interface + types + descriptor).
    pub service_bundle: usize,
    /// The `FetchService` request.
    pub fetch_request: usize,
    /// A typical `Invoke` frame.
    pub invoke: usize,
    /// A typical `Response` frame.
    pub response: usize,
}

/// Computes the real wire sizes for the MouseController.
pub fn mouse_wire_sizes() -> AppWireSizes {
    use alfredo_apps::MouseControllerService;
    let bundle = Message::ServiceBundle {
        interface: MouseControllerService::interface(),
        injected_types: vec![],
        smart_proxy: None,
        descriptor: Some(MouseControllerService::descriptor().encode()),
    };
    AppWireSizes {
        service_bundle: bundle.wire_size(),
        fetch_request: Message::FetchService {
            interface: alfredo_apps::MOUSE_INTERFACE.into(),
        }
        .wire_size(),
        invoke: Message::Invoke {
            call_id: 42,
            interface: alfredo_apps::MOUSE_INTERFACE.into(),
            method: "move".into(),
            args: vec![Value::I64(10), Value::I64(-5)],
        }
        .wire_size(),
        response: Message::Response {
            call_id: 42,
            result: Ok(Value::Unit),
        }
        .wire_size(),
    }
}

/// Computes the real wire sizes for AlfredOShop.
pub fn shop_wire_sizes() -> AppWireSizes {
    use alfredo_apps::shop::Product;
    use alfredo_apps::ShopService;
    let bundle = Message::ServiceBundle {
        interface: ShopService::interface(),
        injected_types: vec![Product::type_descriptor()],
        smart_proxy: None,
        descriptor: Some(ShopService::descriptor().encode()),
    };
    AppWireSizes {
        service_bundle: bundle.wire_size(),
        fetch_request: Message::FetchService {
            interface: alfredo_apps::SHOP_INTERFACE.into(),
        }
        .wire_size(),
        invoke: Message::Invoke {
            call_id: 42,
            interface: alfredo_apps::SHOP_INTERFACE.into(),
            method: "products".into(),
            args: vec![Value::from("Beds")],
        }
        .wire_size(),
        response: Message::Response {
            call_id: 42,
            result: Ok(Value::from(vec![
                "Queen Bed 'Aurora'",
                "King Bed 'Borealis'",
            ])),
        }
        .wire_size(),
    }
}

/// A generic small invocation (used by the scalability figures, which
/// invoke "the same service method" repeatedly).
pub fn generic_invoke_sizes() -> (usize, usize) {
    let invoke = Message::Invoke {
        call_id: 7,
        interface: "bench.Echo".into(),
        method: "poke".into(),
        args: vec![Value::I64(1)],
    }
    .wire_size();
    let response = Message::Response {
        call_id: 7,
        result: Ok(Value::I64(1)),
    }
    .wire_size();
    (invoke, response)
}

/// An encoded invocation-failure frame (used by failure-path tests).
pub fn error_response_size() -> usize {
    Message::Response {
        call_id: 7,
        result: Err(ServiceCallError::ServiceGone),
    }
    .wire_size()
}

/// A remote event frame carrying a small payload.
pub fn event_size() -> usize {
    Message::RemoteEvent {
        topic: "mouse/snapshot".into(),
        properties: Properties::new().with("seq", 1i64),
    }
    .wire_size()
}

// ---------------------------------------------------------------------
// Tables 1 & 2
// ---------------------------------------------------------------------

/// The modelled start-up phases for one app on one phone over one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartupBreakdown {
    /// "Acquire service interface".
    pub acquire: SimDuration,
    /// "Build proxy bundle".
    pub build: SimDuration,
    /// "Install proxy bundle".
    pub install: SimDuration,
    /// "Start proxy bundle".
    pub start: SimDuration,
}

impl StartupBreakdown {
    /// "Total start time".
    pub fn total(&self) -> SimDuration {
        self.acquire + self.build + self.install + self.start
    }
}

/// Closed-form model of the Table 1/2 pipeline.
#[derive(Debug, Clone)]
pub struct StartupModel {
    /// The phone.
    pub phone: DeviceProfile,
    /// The link to the target device.
    pub link: LinkProfile,
}

impl StartupModel {
    /// Models one acquisition of an app whose `ServiceBundle` weighs
    /// `sizes.service_bundle` bytes and whose proxy start costs
    /// `start_cycles`.
    pub fn run(&self, sizes: AppWireSizes, start_cycles: u64) -> StartupBreakdown {
        let cpu = self.phone.cpu();
        // Acquire: connection setup + the fetch round trips + shipping
        // the bundle + parsing it.
        let network = self.link.connection_setup()
            + self.link.latency() * 2 * u64::from(calib::ACQUIRE_ROUND_TRIPS)
            + self.link.transmission_time(sizes.fetch_request)
            + self.link.transmission_time(sizes.service_bundle);
        let acquire = network + cpu.service_time(calib::PARSE_BUNDLE_CYCLES);
        StartupBreakdown {
            acquire,
            build: cpu.service_time(calib::BUILD_PROXY_CYCLES),
            install: cpu.service_time(calib::INSTALL_PROXY_CYCLES),
            start: cpu.service_time(start_cycles),
        }
    }
}

// ---------------------------------------------------------------------
// Figures 3 & 4
// ---------------------------------------------------------------------

/// Configuration of the open-loop invocation load simulation.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total concurrent clients.
    pub clients: usize,
    /// Number of physical client machines (clients are spread
    /// round-robin).
    pub client_machines: usize,
    /// The client machines' device class.
    pub client_profile: DeviceProfile,
    /// The server's device class.
    pub server_profile: DeviceProfile,
    /// The network between machines.
    pub link: LinkProfile,
    /// Gap between successive client start-ups (paper: 1 s).
    pub client_start_interval: SimDuration,
    /// How long the last client is measured for (paper: ≥ 90 s).
    pub measure_window: SimDuration,
    /// Invocation period per client (paper: 100 ms).
    pub invoke_period: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl LoadConfig {
    /// Figure 3's setup: one P4 client machine, P4 server, 100 Mb
    /// Ethernet.
    pub fn fig3(clients: usize) -> Self {
        LoadConfig {
            clients,
            client_machines: 1,
            client_profile: calib::pentium4_desktop(),
            server_profile: calib::pentium4_desktop(),
            link: calib::lan_100(),
            client_start_interval: SimDuration::from_millis(100),
            measure_window: SimDuration::from_secs(90),
            invoke_period: SimDuration::from_millis(100),
            seed: 0x0f16_0003,
        }
    }

    /// Figure 4's setup: six Opteron client machines, Opteron server,
    /// 1 Gb Ethernet.
    pub fn fig4(clients: usize) -> Self {
        LoadConfig {
            clients,
            client_machines: 6,
            client_profile: calib::opteron_node(),
            server_profile: calib::opteron_node(),
            link: calib::lan_1000(),
            client_start_interval: SimDuration::from_millis(100),
            measure_window: SimDuration::from_secs(90),
            invoke_period: SimDuration::from_millis(100),
            seed: 0x0f16_0004,
        }
    }
}

struct LoadWorld {
    server_cpu: CpuModel,
    client_cpus: Vec<CpuModel>,
    up_links: Vec<SimLink>,
    down_links: Vec<SimLink>,
    rng: SimRng,
    measured: Summary,
    measure_from: SimTime,
    measure_until: SimTime,
    invoke_size: usize,
    response_size: usize,
    client_cycles: u64,
    server_cycles: u64,
    period: SimDuration,
    total_invocations: u64,
}

/// The open-loop load simulation of Figures 3 and 4.
#[derive(Debug)]
pub struct InvocationLoadSim {
    config: LoadConfig,
}

impl InvocationLoadSim {
    /// Creates the simulation.
    pub fn new(config: LoadConfig) -> Self {
        InvocationLoadSim { config }
    }

    /// Runs it; returns the measured client's latency summary (ms).
    pub fn run(&self) -> Summary {
        let cfg = &self.config;
        assert!(cfg.clients > 0, "need at least one client");
        let (invoke_size, response_size) = generic_invoke_sizes();
        let machines = cfg.client_machines;
        let last_start = SimTime::ZERO + cfg.client_start_interval * (cfg.clients as u64 - 1);
        // Warm-up: give the last client 2 s before measuring it.
        let measure_from = last_start + SimDuration::from_secs(2);
        let measure_until = measure_from + cfg.measure_window;

        let world = LoadWorld {
            server_cpu: cfg.server_profile.cpu(),
            client_cpus: (0..machines).map(|_| cfg.client_profile.cpu()).collect(),
            up_links: (0..machines)
                .map(|i| {
                    SimLink::with_jitter(cfg.link.clone(), SimRng::seed_from(cfg.seed ^ i as u64))
                })
                .collect(),
            down_links: (0..machines)
                .map(|i| {
                    SimLink::with_jitter(
                        cfg.link.clone(),
                        SimRng::seed_from(cfg.seed ^ (0x1000 + i as u64)),
                    )
                })
                .collect(),
            rng: SimRng::seed_from(cfg.seed),
            measured: Summary::new(),
            measure_from,
            measure_until,
            invoke_size,
            response_size,
            client_cycles: calib::DESKTOP_CLIENT_INVOKE_CYCLES,
            server_cycles: calib::SERVER_INVOKE_CYCLES,
            period: cfg.invoke_period,
            total_invocations: 0,
        };
        let mut sim = Simulation::new(world);
        let measured_client = cfg.clients - 1;
        for client in 0..cfg.clients {
            let machine = client % machines;
            let start = cfg.client_start_interval * client as u64;
            let is_measured = client == measured_client;
            sim.schedule(start, move |w: &mut LoadWorld, ctx| {
                schedule_invocation(w, ctx, machine, is_measured);
            });
        }
        sim.run_until(measure_until + SimDuration::from_secs(1));
        sim.into_state().measured
    }
}

/// One invocation chain: client CPU → up link → server CPU → down link →
/// client CPU, then the next period is scheduled.
fn schedule_invocation(
    w: &mut LoadWorld,
    ctx: &mut alfredo_sim::Ctx<LoadWorld>,
    machine: usize,
    is_measured: bool,
) {
    let issued = ctx.now();
    if issued > w.measure_until {
        return; // experiment over for this client
    }
    w.total_invocations += 1;

    // Open loop: the next invocation is timer-driven — it fires one
    // period after this one was *issued*, whether or not this one has
    // completed. Overload therefore builds real queues (the blowup past
    // the knee in Figure 4).
    let jitter = SimDuration::from_nanos(w.rng.next_below(2_000_000));
    ctx.schedule_at(issued + w.period + jitter, move |w: &mut LoadWorld, ctx| {
        schedule_invocation(w, ctx, machine, is_measured);
    });

    // Phase 1: client-side marshalling on the shared machine CPU.
    let marshal_done = w.client_cpus[machine].submit(issued, w.client_cycles);
    ctx.schedule_at(marshal_done, move |w: &mut LoadWorld, ctx| {
        // Phase 2: request over the machine's uplink.
        let at_server = w.up_links[machine].send(ctx.now(), w.invoke_size);
        ctx.schedule_at(at_server, move |w: &mut LoadWorld, ctx| {
            // Phase 3: service execution on the server.
            let served = w.server_cpu.submit(ctx.now(), w.server_cycles);
            ctx.schedule_at(served, move |w: &mut LoadWorld, ctx| {
                // Phase 4: response over the downlink.
                let at_client = w.down_links[machine].send(ctx.now(), w.response_size);
                ctx.schedule_at(at_client, move |w: &mut LoadWorld, ctx| {
                    // Phase 5: unmarshal on the client machine.
                    let done = w.client_cpus[machine].submit(ctx.now(), w.client_cycles / 2);
                    ctx.schedule_at(done, move |w: &mut LoadWorld, ctx| {
                        let latency = ctx.now().duration_since(issued);
                        if is_measured && ctx.now() >= w.measure_from {
                            w.measured.record_duration(latency);
                        }
                    });
                });
            });
        });
    });
}

// ---------------------------------------------------------------------
// Figures 5 & 6
// ---------------------------------------------------------------------

/// Configuration of the phone-side closed-loop experiment.
#[derive(Debug, Clone)]
pub struct PhoneLoopConfig {
    /// The phone.
    pub phone: DeviceProfile,
    /// The phone's link to the server.
    pub link: LinkProfile,
    /// The server's device class.
    pub server_profile: DeviceProfile,
    /// Invocations measured per service-count step.
    pub invocations_per_step: usize,
    /// RNG seed.
    pub seed: u64,
}

impl PhoneLoopConfig {
    /// Figure 5's setup: Nokia 9300i over WLAN against a desktop.
    pub fn fig5() -> Self {
        PhoneLoopConfig {
            phone: calib::nokia_9300i(),
            link: calib::phone_wlan(),
            server_profile: calib::pentium4_desktop(),
            invocations_per_step: 200,
            seed: 0x0f16_0005,
        }
    }

    /// Figure 6's setup: SE M600i over Bluetooth against a desktop.
    pub fn fig6() -> Self {
        PhoneLoopConfig {
            phone: calib::sony_ericsson_m600i(),
            link: calib::phone_bluetooth(),
            server_profile: calib::pentium4_desktop(),
            invocations_per_step: 200,
            seed: 0x0f16_0006,
        }
    }
}

/// The closed-loop phone simulation of Figures 5 and 6.
#[derive(Debug)]
pub struct PhoneLoopSim {
    config: PhoneLoopConfig,
}

impl PhoneLoopSim {
    /// Creates the simulation.
    pub fn new(config: PhoneLoopConfig) -> Self {
        PhoneLoopSim { config }
    }

    /// Mean invocation latency with `services` acquired services.
    ///
    /// The phone invokes one method on each acquired service in turn
    /// (sequentially — one outstanding call, as a single-threaded phone
    /// client does), so per-invocation latency is essentially flat in the
    /// service count; the per-service registry bookkeeping adds a small
    /// linear term.
    pub fn run(&self, services: usize) -> Summary {
        let cfg = &self.config;
        let phone_cpu = cfg.phone.cpu();
        let server_cpu = cfg.server_profile.cpu();
        let (invoke_size, response_size) = generic_invoke_sizes();
        let mut rng = SimRng::seed_from(cfg.seed ^ services as u64);
        let mut link = SimLink::with_jitter(cfg.link.clone(), rng.split());
        let mut summary = Summary::new();
        let mut now = SimTime::ZERO;
        // Proxy table lookup grows (mildly) with the number of installed
        // proxies: ~40k cycles per additional service.
        let lookup_cycles = 40_000u64 * services as u64;
        for _ in 0..cfg.invocations_per_step {
            let issued = now;
            let marshal = phone_cpu.service_time(calib::PHONE_INVOKE_CYCLES + lookup_cycles);
            now += marshal;
            let at_server = link.send(now, invoke_size);
            let served = server_cpu.service_time(calib::SERVER_INVOKE_CYCLES)
                + SimDuration::from_nanos(rng.next_below(100_000));
            let back = at_server + served;
            let delivered = link.send(back, response_size);
            let unmarshal = phone_cpu.service_time(calib::PHONE_INVOKE_CYCLES / 4);
            now = delivered + unmarshal;
            summary.record_duration(now.duration_since(issued));
        }
        summary
    }

    /// The ICMP ping baseline (the dotted line of Figures 5 and 6).
    pub fn ping_baseline(&self) -> SimDuration {
        self.config.link.ping_rtt(56)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_are_realistic() {
        let mouse = mouse_wire_sizes();
        let shop = shop_wire_sizes();
        // "The amount of data transferred to the phone accounts for about
        // 2 kBytes for each application."
        assert!(
            (800..4000).contains(&mouse.service_bundle),
            "mouse bundle {} bytes",
            mouse.service_bundle
        );
        assert!(
            (800..6000).contains(&shop.service_bundle),
            "shop bundle {} bytes",
            shop.service_bundle
        );
        // The shop ships a bigger descriptor (richer UI + types), as in
        // Table 1 (110 ms vs 94 ms acquire).
        assert!(shop.service_bundle > mouse.service_bundle);
        // Invocations are tiny.
        assert!(mouse.invoke < 100);
        assert!(shop.response < 200);
        assert!(event_size() < 100);
        assert!(error_response_size() < 50);
    }

    #[test]
    fn startup_model_reproduces_table1_shape() {
        let model = StartupModel {
            phone: calib::nokia_9300i(),
            link: calib::phone_wlan(),
        };
        let b = model.run(mouse_wire_sizes(), calib::START_MOUSE_CYCLES);
        // Build dominates; network only matters in acquire.
        assert!(b.build > b.install + b.start + b.acquire);
        assert!(b.acquire < b.install);
        // Totals land in the paper's "a few seconds" regime.
        let total_s = b.total().as_secs_f64();
        assert!((3.0..7.0).contains(&total_s), "total {total_s} s");
    }

    #[test]
    fn load_sim_single_client_is_around_a_millisecond() {
        let summary = InvocationLoadSim::new(LoadConfig {
            measure_window: SimDuration::from_secs(10),
            ..LoadConfig::fig3(1)
        })
        .run();
        assert!(summary.count() > 50);
        let mean = summary.mean();
        assert!((0.4..2.0).contains(&mean), "mean {mean} ms vs paper ~1 ms");
    }

    #[test]
    fn load_sim_latency_rises_with_clients() {
        let short = |n| {
            InvocationLoadSim::new(LoadConfig {
                measure_window: SimDuration::from_secs(10),
                ..LoadConfig::fig3(n)
            })
            .run()
            .mean()
        };
        let one = short(1);
        let many = short(64);
        assert!(many >= one, "latency must not drop with load");
        assert!(many < 5.0, "still below saturation at 64 clients");
    }

    #[test]
    fn phone_loop_is_flat_in_service_count() {
        let sim = PhoneLoopSim::new(PhoneLoopConfig::fig5());
        let low = sim.run(5).mean();
        let high = sim.run(40).mean();
        assert!((60.0..160.0).contains(&low), "{low} ms vs paper ~100");
        assert!(
            (high - low).abs() < 0.35 * low,
            "flat-ish: {low} -> {high} ms"
        );
        // Above the ping baseline.
        assert!(low > sim.ping_baseline().as_millis_f64());
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let a = PhoneLoopSim::new(PhoneLoopConfig::fig5()).run(10).mean();
        let b = PhoneLoopSim::new(PhoneLoopConfig::fig5()).run(10).mean();
        assert_eq!(a, b);
        let c = InvocationLoadSim::new(LoadConfig {
            measure_window: SimDuration::from_secs(5),
            ..LoadConfig::fig3(4)
        })
        .run()
        .mean();
        let d = InvocationLoadSim::new(LoadConfig {
            measure_window: SimDuration::from_secs(5),
            ..LoadConfig::fig3(4)
        })
        .run()
        .mean();
        assert_eq!(c, d);
    }
}
