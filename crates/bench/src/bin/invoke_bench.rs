//! Invocation fast-path benchmark: measures the zero-allocation invoke
//! pipeline (pooled wire buffers + borrowed encoding + sharded call
//! table + pipelined async calls) against the legacy path
//! (`EndpointConfig::with_legacy_invoke_path`), which reproduces the
//! pre-optimization costs: owned `Message` values, per-frame buffer
//! allocation, a single-shard call table, and no frame recycling.
//!
//! ```text
//! cargo run --release -p alfredo-bench --bin invoke_bench
//! cargo run --release -p alfredo-bench --bin invoke_bench -- --quick
//! ```
//!
//! Emits `BENCH_invoke.json` in the working directory with `{p50, p95,
//! calls/sec, bytes/call}` per scenario plus the endpoint's pool and
//! call-slot counters.

use std::sync::Arc;
use std::time::Instant;

use alfredo_bench::timing::{self, Measurement};
use alfredo_net::{FaultPlan, FaultyTransport, InMemoryNetwork, PeerAddr};
use alfredo_obs::Obs;
use alfredo_osgi::{FnService, Framework, Json, Properties, ServiceCallError, Value};
use alfredo_rosgi::{
    EndpointConfig, HeartbeatConfig, RemoteEndpoint, RetryPolicy, PROP_IDEMPOTENT_METHODS,
};
use std::time::Duration;

const INTERFACE: &str = "bench.Echo";

/// A phone/device pair over the in-memory fabric, both sides using the
/// same invoke-path flavor (the serve path differs too, so the legacy
/// baseline must be legacy on both ends).
struct Pair {
    phone: Arc<RemoteEndpoint>,
    device: RemoteEndpoint,
    _device_fw: Framework,
}

impl Pair {
    fn establish(addr: &str, legacy: bool) -> Pair {
        let configure = |name: &str| {
            let c = EndpointConfig::named(name);
            if legacy {
                c.with_legacy_invoke_path()
            } else {
                c
            }
        };
        let net = InMemoryNetwork::new();
        let device_fw = Framework::new();
        device_fw
            .system_context()
            .register_service(
                &[INTERFACE],
                Arc::new(FnService::new(|method, args| match method {
                    "echo" => Ok(args.first().cloned().unwrap_or(Value::Unit)),
                    "add" => Ok(Value::I64(args.iter().filter_map(Value::as_i64).sum())),
                    other => Err(ServiceCallError::NoSuchMethod(other.into())),
                })),
                Properties::new(),
            )
            .expect("register bench service");

        let listener = net.bind(PeerAddr::new(addr)).expect("bind");
        let fw = device_fw.clone();
        let device_config = configure(addr);
        let accept = std::thread::spawn(move || {
            let conn = listener.accept().expect("accept");
            RemoteEndpoint::establish(Box::new(conn), fw, device_config).expect("device handshake")
        });
        let conn = net
            .connect(PeerAddr::new("phone"), PeerAddr::new(addr))
            .expect("connect");
        let phone = RemoteEndpoint::establish(Box::new(conn), Framework::new(), configure("phone"))
            .expect("phone handshake");
        Pair {
            phone: Arc::new(phone),
            device: accept.join().expect("device thread"),
            _device_fw: device_fw,
        }
    }

    /// Like [`Pair::establish`] with the whole self-healing stack armed
    /// on the phone — heartbeat, retry policy for the (idempotent-marked)
    /// echo method, and a fault-injection wrapper with an empty plan —
    /// but zero faults actually injected. The guard scenario uses this to
    /// prove resilience is free when nothing goes wrong.
    fn establish_resilient(addr: &str) -> Pair {
        let net = InMemoryNetwork::new();
        let device_fw = Framework::new();
        device_fw
            .system_context()
            .register_service(
                &[INTERFACE],
                Arc::new(FnService::new(|method, args| match method {
                    "echo" => Ok(args.first().cloned().unwrap_or(Value::Unit)),
                    other => Err(ServiceCallError::NoSuchMethod(other.into())),
                })),
                Properties::new().with(PROP_IDEMPOTENT_METHODS, Value::from(vec!["echo"])),
            )
            .expect("register bench service");

        let listener = net.bind(PeerAddr::new(addr)).expect("bind");
        let fw = device_fw.clone();
        let device_config = EndpointConfig::named(addr);
        let accept = std::thread::spawn(move || {
            let conn = listener.accept().expect("accept");
            RemoteEndpoint::establish(Box::new(conn), fw, device_config).expect("device handshake")
        });
        let conn = net
            .connect(PeerAddr::new("phone"), PeerAddr::new(addr))
            .expect("connect");
        let faultless = FaultyTransport::new(Box::new(conn), FaultPlan::none());
        let phone_config = EndpointConfig::named("phone")
            .with_heartbeat(HeartbeatConfig {
                interval: Duration::from_millis(250),
                ..HeartbeatConfig::default()
            })
            .with_retry(RetryPolicy::retries(3));
        let phone = RemoteEndpoint::establish(Box::new(faultless), Framework::new(), phone_config)
            .expect("phone handshake");
        Pair {
            phone: Arc::new(phone),
            device: accept.join().expect("device thread"),
            _device_fw: device_fw,
        }
    }

    /// Like [`Pair::establish`] (fast flavor) with `obs` installed on
    /// both ends — the obs-report scenario passes a recording handle, the
    /// disabled-overhead guard an explicit [`Obs::disabled`].
    fn establish_obs(addr: &str, obs: Obs) -> Pair {
        let net = InMemoryNetwork::new();
        let device_fw = Framework::new();
        device_fw
            .system_context()
            .register_service(
                &[INTERFACE],
                Arc::new(FnService::new(|method, args| match method {
                    "echo" => Ok(args.first().cloned().unwrap_or(Value::Unit)),
                    other => Err(ServiceCallError::NoSuchMethod(other.into())),
                })),
                Properties::new(),
            )
            .expect("register bench service");

        let listener = net.bind(PeerAddr::new(addr)).expect("bind");
        let fw = device_fw.clone();
        let device_config = EndpointConfig::named(addr).with_obs(obs.clone());
        let accept = std::thread::spawn(move || {
            let conn = listener.accept().expect("accept");
            RemoteEndpoint::establish(Box::new(conn), fw, device_config).expect("device handshake")
        });
        let conn = net
            .connect(PeerAddr::new("phone"), PeerAddr::new(addr))
            .expect("connect");
        let phone_config = EndpointConfig::named("phone").with_obs(obs);
        let phone = RemoteEndpoint::establish(Box::new(conn), Framework::new(), phone_config)
            .expect("phone handshake");
        Pair {
            phone: Arc::new(phone),
            device: accept.join().expect("device thread"),
            _device_fw: device_fw,
        }
    }

    /// Wire bytes the phone sent per invocation since `before`.
    fn bytes_per_call(&self, before: &alfredo_rosgi::EndpointStats) -> f64 {
        let after = self.phone.stats();
        let calls = after.calls_sent.saturating_sub(before.calls_sent);
        if calls == 0 {
            return 0.0;
        }
        after.bytes_sent.saturating_sub(before.bytes_sent) as f64 / calls as f64
    }

    fn close(self) {
        self.phone.close();
        self.device.close();
    }
}

fn payload() -> Vec<Value> {
    vec![Value::I64(42), Value::Str("ping-pong payload".into())]
}

/// Single-threaded round-trip latency: one blocking invoke at a time.
fn single_thread(pair: &Pair, calls: usize) -> Measurement {
    let args = payload();
    let mut samples = Vec::with_capacity(calls);
    let started = Instant::now();
    for _ in 0..calls {
        let t = Instant::now();
        pair.phone
            .invoke(INTERFACE, "echo", &args)
            .expect("bench invoke");
        samples.push(t.elapsed().as_nanos() as f64);
    }
    timing::from_samples("single-thread", samples, started.elapsed().as_secs_f64())
}

/// N threads hammering one connection with blocking invokes.
fn contention(pair: &Pair, threads: usize, calls_per_thread: usize) -> Measurement {
    let started = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let ep = Arc::clone(&pair.phone);
            std::thread::spawn(move || {
                let args = payload();
                let mut samples = Vec::with_capacity(calls_per_thread);
                for _ in 0..calls_per_thread {
                    let t = Instant::now();
                    ep.invoke(INTERFACE, "echo", &args).expect("bench invoke");
                    samples.push(t.elapsed().as_nanos() as f64);
                }
                samples
            })
        })
        .collect();
    let mut samples = Vec::with_capacity(threads * calls_per_thread);
    for w in workers {
        samples.extend(w.join().expect("worker"));
    }
    timing::from_samples(
        &format!("contention x{threads}"),
        samples,
        started.elapsed().as_secs_f64(),
    )
}

/// Pipelined async invokes: keep `depth` calls in flight, harvest as a
/// batch. Per-op latency here is batch time / depth — the point of the
/// pipeline is amortizing the round trip.
fn pipelined(pair: &Pair, depth: usize, batches: usize) -> Measurement {
    let args = payload();
    let mut samples = Vec::with_capacity(batches * depth);
    let started = Instant::now();
    for _ in 0..batches {
        let t = Instant::now();
        let handles: Vec<_> = (0..depth)
            .map(|_| {
                pair.phone
                    .invoke_async(INTERFACE, "echo", &args)
                    .expect("dispatch")
            })
            .collect();
        for h in handles {
            h.wait().expect("pipelined reply");
        }
        let per_op = t.elapsed().as_nanos() as f64 / depth as f64;
        samples.extend(std::iter::repeat_n(per_op, depth));
    }
    timing::from_samples(
        &format!("pipelined depth-{depth}"),
        samples,
        started.elapsed().as_secs_f64(),
    )
}

/// N threads, each keeping `depth` async calls in flight — the workload
/// the pre-change code could not express (blocking `invoke` was the only
/// client API), measured against the same thread count blocking.
fn contention_pipelined(
    pair: &Pair,
    threads: usize,
    depth: usize,
    calls_per_thread: usize,
) -> Measurement {
    use std::collections::VecDeque;

    let started = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let ep = Arc::clone(&pair.phone);
            std::thread::spawn(move || {
                let args = payload();
                // Sliding window: keep `depth` calls in flight at all
                // times; each iteration retires the oldest and issues a
                // replacement. Per-op latency is the issue-to-harvest
                // gap divided by the window depth.
                let mut window = VecDeque::with_capacity(depth);
                let mut samples = Vec::with_capacity(calls_per_thread);
                for _ in 0..depth.min(calls_per_thread) {
                    window.push_back((
                        Instant::now(),
                        ep.invoke_async(INTERFACE, "echo", &args).expect("dispatch"),
                    ));
                }
                let mut issued = window.len();
                while let Some((t, h)) = window.pop_front() {
                    h.wait().expect("pipelined reply");
                    samples.push(t.elapsed().as_nanos() as f64 / depth as f64);
                    if issued < calls_per_thread {
                        window.push_back((
                            Instant::now(),
                            ep.invoke_async(INTERFACE, "echo", &args).expect("dispatch"),
                        ));
                        issued += 1;
                    }
                }
                samples
            })
        })
        .collect();
    let mut samples = Vec::with_capacity(threads * calls_per_thread);
    for w in workers {
        samples.extend(w.join().expect("worker"));
    }
    timing::from_samples(
        &format!("contention x{threads} pipelined depth-{depth}"),
        samples,
        started.elapsed().as_secs_f64(),
    )
}

/// Transport-free frame encoding: isolates what the borrowed + pooled
/// encode path saves per call. "legacy" builds the owned [`alfredo_rosgi::Message`]
/// (cloning interface, method, and args, as `invoke` did pre-change) and
/// encodes into a fresh buffer; "fast" encodes borrowed parts into a
/// pooled writer and recycles the frame, as the endpoint send path does.
fn wire_encode(target_ms: u64) -> (Measurement, Measurement, f64) {
    use alfredo_net::{BufferPool, ByteWriter};
    use alfredo_rosgi::Message;

    let args = payload();
    let batch = 64;

    let legacy = timing::bench_batched("wire-encode legacy", batch, target_ms, || {
        let msg = Message::Invoke {
            call_id: 7,
            interface: INTERFACE.to_owned(),
            method: "echo".to_owned(),
            args: args.clone(),
        };
        msg.encode()
    });

    let pool = BufferPool::new();
    let mut frame_bytes = 0.0;
    let fast = timing::bench_batched("wire-encode fast", batch, target_ms, || {
        let mut w = ByteWriter::with_pool(&pool);
        Message::encode_invoke(&mut w, 7, INTERFACE, "echo", &args, None, None);
        let frame = w.into_bytes();
        frame_bytes = frame.len() as f64;
        pool.give(frame);
    });
    (fast, legacy, frame_bytes)
}

fn scenario_json(m: &Measurement, bytes_per_call: f64) -> Json {
    Json::obj(vec![
        ("p50_ns", Json::F64(m.p50_ns())),
        ("p95_ns", Json::F64(m.p95_ns())),
        ("calls_per_sec", Json::F64(m.ops_per_sec())),
        ("bytes_per_call", Json::F64(bytes_per_call)),
        ("ops", Json::I64(m.ops as i64)),
    ])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (st_calls, threads, per_thread, depth, batches, encode_ms) = if quick {
        (2_000, 8, 500, 8, 250, 100)
    } else {
        (10_000, 8, 2_500, 8, 1_250, 400)
    };

    println!("invoke_bench — zero-allocation invocation fast path vs legacy baseline");
    println!(
        "(in-memory transport, echo service, {} args/call)\n",
        payload().len()
    );

    let mut scenarios: Vec<(&str, Json)> = Vec::new();
    let mut speedups: Vec<(&str, f64, f64)> = Vec::new();

    // --- frame encoding only (no transport) ------------------------------
    let (enc_fast, enc_legacy, frame_bytes) = wire_encode(encode_ms);
    enc_fast.report();
    enc_legacy.report();
    speedups.push((
        "wire_encode",
        enc_fast.ops_per_sec(),
        enc_legacy.ops_per_sec(),
    ));
    scenarios.push((
        "wire_encode",
        Json::obj(vec![
            ("fast", scenario_json(&enc_fast, frame_bytes)),
            ("legacy", scenario_json(&enc_legacy, frame_bytes)),
            (
                "speedup",
                Json::F64(enc_fast.ops_per_sec() / enc_legacy.ops_per_sec()),
            ),
        ]),
    ));

    // --- single-thread latency, fast vs legacy ---------------------------
    let mut st = Vec::new();
    for (flavor, legacy) in [("fast", false), ("legacy", true)] {
        let pair = Pair::establish(&format!("dev-st-{flavor}"), legacy);
        single_thread(&pair, st_calls / 10); // warmup
        let before = pair.phone.stats();
        let m = single_thread(&pair, st_calls);
        let bpc = pair.bytes_per_call(&before);
        m.report();
        st.push((flavor, m, bpc));
        pair.close();
    }
    speedups.push((
        "single_thread",
        st[0].1.ops_per_sec(),
        st[1].1.ops_per_sec(),
    ));
    scenarios.push((
        "single_thread",
        Json::obj(vec![
            ("fast", scenario_json(&st[0].1, st[0].2)),
            ("legacy", scenario_json(&st[1].1, st[1].2)),
            (
                "speedup",
                Json::F64(st[0].1.ops_per_sec() / st[1].1.ops_per_sec()),
            ),
        ]),
    ));

    // --- faultless-path guard -------------------------------------------
    // The self-healing machinery (heartbeat thread, retry policy, fault
    // wrapper with an empty plan) must cost nothing when no faults occur:
    // zero retries, zero reconnects, the same pooled-buffer economics,
    // and single-thread throughput within 5% of the bare fast path
    // measured moments ago in this same process.
    // Measure resilient vs bare-fast on fresh pairs each round (so one
    // unlucky reader-thread placement cannot taint every round), and take
    // the median of the per-round throughput ratios. Comparing against
    // the `st` numbers measured earlier in the process would fold clock
    // drift into the 5%.
    let rounds = 6;
    let mut ratios = Vec::with_capacity(rounds);
    let mut guard_samples = Vec::new();
    let mut guard_stats = None;
    let mut guard_bpc = 0.0;
    for round in 0..rounds {
        let guard_pair = Pair::establish_resilient(&format!("dev-guard-{round}"));
        let ref_pair = Pair::establish(&format!("dev-guard-ref-{round}"), false);
        single_thread(&guard_pair, st_calls / 10); // warmup
        single_thread(&ref_pair, st_calls / 10);
        let before = guard_pair.phone.stats();
        let g = single_thread(&guard_pair, st_calls / 2);
        let r = single_thread(&ref_pair, st_calls / 2);
        ratios.push(g.ops_per_sec() / r.ops_per_sec());
        guard_bpc = guard_pair.bytes_per_call(&before);
        guard_samples.push(g);
        guard_stats = Some(guard_pair.phone.stats());
        guard_pair.close();
        ref_pair.close();
    }
    let guard = guard_samples.swap_remove(0);
    guard.report();
    let guard_stats = guard_stats.expect("at least one guard round");
    assert_eq!(guard_stats.retries, 0, "faultless run must never retry");
    assert_eq!(
        guard_stats.reconnects, 0,
        "faultless run must never reconnect"
    );
    assert_eq!(guard_stats.lease_expiries, 0, "leases stay fresh");
    let pool_ops = guard_stats.pool_hits + guard_stats.pool_misses;
    let hit_rate = guard_stats.pool_hits as f64 / pool_ops.max(1) as f64;
    assert!(
        hit_rate >= 0.95,
        "resilient path must keep the buffer pool hot (hit rate {hit_rate:.3})"
    );
    // Median of the per-round throughput ratios: robust against one
    // round eating a scheduling hiccup.
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let guard_ratio = ratios[ratios.len() / 2];
    assert!(
        guard_ratio >= 0.95,
        "faultless resilient throughput regressed beyond 5%: {guard_ratio:.3}x of the bare fast path"
    );
    println!(
        "  faultless guard: {:.2}x of bare fast path, pool hit rate {:.3}, 0 retries/reconnects\n",
        guard_ratio, hit_rate
    );
    scenarios.push((
        "faultless_guard",
        Json::obj(vec![
            ("resilient", scenario_json(&guard, guard_bpc)),
            ("ratio_vs_fast", Json::F64(guard_ratio)),
            ("pool_hit_rate", Json::F64(hit_rate)),
            ("retries", Json::I64(guard_stats.retries as i64)),
            ("reconnects", Json::I64(guard_stats.reconnects as i64)),
            (
                "heartbeats_sent",
                Json::I64(guard_stats.heartbeats_sent as i64),
            ),
        ]),
    ));

    // --- observability guard + report ------------------------------------
    // Tracing is compiled into the invoke path now. Disabled (the
    // default), it must be indistinguishable from the bare fast path:
    // median per-round throughput ratio within 3%. Same fresh-pairs +
    // median-of-ratios discipline as the faultless guard above.
    let obs_rounds = 6;
    let mut obs_ratios = Vec::with_capacity(obs_rounds);
    for round in 0..obs_rounds {
        let off_pair = Pair::establish_obs(&format!("dev-obs-off-{round}"), Obs::disabled());
        let ref_pair = Pair::establish(&format!("dev-obs-ref-{round}"), false);
        single_thread(&off_pair, st_calls / 10); // warmup
        single_thread(&ref_pair, st_calls / 10);
        let g = single_thread(&off_pair, st_calls / 2);
        let r = single_thread(&ref_pair, st_calls / 2);
        obs_ratios.push(g.ops_per_sec() / r.ops_per_sec());
        off_pair.close();
        ref_pair.close();
    }
    obs_ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let obs_off_ratio = obs_ratios[obs_ratios.len() / 2];
    assert!(
        obs_off_ratio >= 0.97,
        "disabled tracing must stay within 3% of the fast path: {obs_off_ratio:.3}x"
    );

    // Enabled mode: spans into a ring sink, per-phase histograms out. The
    // phone times each RPC round trip, the device each serve; their
    // quantiles land in BENCH_invoke.json so a perf report can show where
    // an interaction spends its time.
    let (obs, spans) = Obs::ring(65_536);
    let on_pair = Pair::establish_obs("dev-obs-on", obs);
    single_thread(&on_pair, st_calls / 10); // warmup
    let obs_on = single_thread(&on_pair, st_calls / 2);
    obs_on.report();
    let rtt = on_pair
        .phone
        .obs()
        .metrics()
        .histogram("rosgi.invoke_rtt_us");
    let serve = on_pair.device.obs().metrics().histogram("rosgi.serve_us");
    let phase_json = |h: &alfredo_obs::Histogram| {
        Json::obj(vec![
            ("count", Json::I64(h.count() as i64)),
            ("p50_us", Json::I64(h.quantile(0.50) as i64)),
            ("p95_us", Json::I64(h.quantile(0.95) as i64)),
            ("p99_us", Json::I64(h.quantile(0.99) as i64)),
        ])
    };
    println!(
        "  obs: disabled {obs_off_ratio:.3}x of fast path; enabled recorded {} spans, rtt p95 {}us, serve p95 {}us\n",
        spans.len(),
        rtt.quantile(0.95),
        serve.quantile(0.95)
    );
    scenarios.push((
        "obs_report",
        Json::obj(vec![
            ("disabled_ratio_vs_fast", Json::F64(obs_off_ratio)),
            ("enabled", scenario_json(&obs_on, 0.0)),
            ("spans_recorded", Json::I64(spans.len() as i64)),
            ("invoke_rtt", phase_json(&rtt)),
            ("serve", phase_json(&serve)),
        ]),
    ));
    on_pair.close();

    // --- N-thread contention -------------------------------------------
    // Three rows: the legacy flavor blocking (all the pre-change code
    // could do), the fast flavor on the same blocking workload, and the
    // fast flavor with each thread keeping a depth-K async pipeline —
    // the client shape the new API enables. The headline speedup is
    // pipelined-vs-pre-change: same 8 threads, same connection.
    let mut ct = Vec::new();
    for (flavor, legacy) in [("fast", false), ("legacy", true)] {
        let pair = Pair::establish(&format!("dev-ct-{flavor}"), legacy);
        contention(&pair, threads, per_thread / 10); // warmup
        let before = pair.phone.stats();
        let m = contention(&pair, threads, per_thread);
        let bpc = pair.bytes_per_call(&before);
        m.report();
        ct.push((flavor, m, bpc));
        pair.close();
    }
    let ct_pipe_pair = Pair::establish("dev-ct-pipe", false);
    contention_pipelined(&ct_pipe_pair, threads, depth, per_thread / 10); // warmup
    let before = ct_pipe_pair.phone.stats();
    let ct_pipe = contention_pipelined(&ct_pipe_pair, threads, depth, per_thread);
    let ct_pipe_bpc = ct_pipe_pair.bytes_per_call(&before);
    ct_pipe.report();
    ct_pipe_pair.close();
    speedups.push((
        "contention_8_threads (blocking)",
        ct[0].1.ops_per_sec(),
        ct[1].1.ops_per_sec(),
    ));
    speedups.push((
        "contention_8_threads (pipelined vs pre-change)",
        ct_pipe.ops_per_sec(),
        ct[1].1.ops_per_sec(),
    ));
    scenarios.push((
        "contention_8_threads",
        Json::obj(vec![
            ("threads", Json::I64(threads as i64)),
            ("fast", scenario_json(&ct[0].1, ct[0].2)),
            ("fast_pipelined", scenario_json(&ct_pipe, ct_pipe_bpc)),
            ("legacy", scenario_json(&ct[1].1, ct[1].2)),
            (
                "speedup_blocking",
                Json::F64(ct[0].1.ops_per_sec() / ct[1].1.ops_per_sec()),
            ),
            (
                "speedup_pipelined_vs_pre_change",
                Json::F64(ct_pipe.ops_per_sec() / ct[1].1.ops_per_sec()),
            ),
        ]),
    ));

    // --- pipelined depth-K (fast path only: the API is the feature) ------
    let pipe_pair = Pair::establish("dev-pipe", false);
    pipelined(&pipe_pair, depth, batches / 10); // warmup
    let before = pipe_pair.phone.stats();
    let pipe = pipelined(&pipe_pair, depth, batches);
    let pipe_bpc = pipe_pair.bytes_per_call(&before);
    pipe.report();
    let counters = pipe_pair.phone.stats();
    scenarios.push((
        "pipelined_depth_8",
        Json::obj(vec![
            ("depth", Json::I64(depth as i64)),
            ("fast", scenario_json(&pipe, pipe_bpc)),
            (
                "speedup_vs_single_thread_fast",
                Json::F64(pipe.ops_per_sec() / st[0].1.ops_per_sec()),
            ),
        ]),
    ));
    pipe_pair.close();

    println!("\npool/slot economics (pipelined endpoint, steady state):");
    println!(
        "  pool_hits {}  pool_misses {}  pool_returns {}  bytes_reused {}  slots_reused {}",
        counters.pool_hits,
        counters.pool_misses,
        counters.pool_returns,
        counters.bytes_reused,
        counters.slots_reused
    );
    for (name, fast, legacy) in &speedups {
        println!("  {name}: fast/legacy = {:.2}x", fast / legacy);
    }

    let doc = Json::obj(vec![
        ("benchmark", Json::str("invoke_bench")),
        ("transport", Json::str("in-memory channel fabric")),
        (
            "scenarios",
            Json::Obj(
                scenarios
                    .into_iter()
                    .map(|(k, v)| (k.to_owned(), v))
                    .collect(),
            ),
        ),
        (
            "counters",
            Json::obj(vec![
                ("pool_hits", Json::I64(counters.pool_hits as i64)),
                ("pool_misses", Json::I64(counters.pool_misses as i64)),
                ("pool_returns", Json::I64(counters.pool_returns as i64)),
                ("bytes_reused", Json::I64(counters.bytes_reused as i64)),
                ("slots_reused", Json::I64(counters.slots_reused as i64)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_invoke.json", doc.to_json_string() + "\n")
        .expect("write BENCH_invoke.json");
    println!("\nwrote BENCH_invoke.json");
}
