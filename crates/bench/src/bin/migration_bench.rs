//! Migration benchmark: what does a hot mid-session tier migration cost,
//! and does it buy the latency back?
//!
//! ```text
//! cargo run --release -p alfredo-bench --bin migration_bench
//! cargo run --release -p alfredo-bench --bin migration_bench -- --quick
//! ```
//!
//! The scenario mirrors the live re-tiering acceptance test (DESIGN.md
//! §16) at measurement scale:
//!
//! * **baseline** — a session drives a stateful counter component on the
//!   target device over a fast in-memory link; interaction p95 recorded.
//! * **degraded** — every frame the phone sends is delayed by a fixed
//!   budget (a congested radio link); interaction p95 craters by roughly
//!   that delay.
//! * **migrate** — the [`PlacementController`] notices via the windowed
//!   RTT p95 and hot-migrates the counter to the phone; afterwards the
//!   component is bounced device↔phone for several cycles, recording
//!   each migration's *pause* (quiesce → commit, the window in which new
//!   events queue instead of executing).
//! * **recovered** — interaction p95 with the logic phone-local, the
//!   link still degraded.
//!
//! Guards (in-process, every run): the controller must migrate at all;
//! the pause p95 stays under [`PAUSE_CAP`]; the recovered p95 returns to
//! within [`RECOVERY_FACTOR`]× the healthy baseline; no invocation is
//! lost or duplicated across any of the moves; and every phone-bound
//! migration after the first hits the content-addressed tier cache.
//!
//! Emits `BENCH_migration.json` with every figure the guards checked.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use alfredo_core::{
    host_service, serve_device_with_obs, AlfredOEngine, ClientContext, ControllerProgram,
    DependencySpec, EngineConfig, MethodCall, OutagePolicy, Placement, PlacementController,
    PlacementControllerConfig, ResilienceConfig, ResourceRequirements, Rule, ServiceDescriptor,
    SignalSampler, ThinClientPolicy,
};
use alfredo_net::{FaultPlan, FaultyTransport, InMemoryNetwork, PeerAddr};
use alfredo_obs::Obs;
use alfredo_osgi::{
    CodeRegistry, Framework, Json, MethodSpec, ParamSpec, Properties, Service, ServiceCallError,
    ServiceInterfaceDesc, TypeHint, Value,
};
use alfredo_rosgi::{DiscoveryDirectory, HeartbeatConfig};
use alfredo_ui::{Control, DeviceCapabilities, UiDescription};

const INTERFACE: &str = "bench.MigFacade";
const COUNTER: &str = "bench.MigCounter";
const FACTORY_KEY: &str = "bench.mig-counter/v1";

/// Injected one-way send delay for the degraded phase.
const LINK_DELAY: Duration = Duration::from_millis(10);
/// Migration pause budget the guard enforces (quiesce → commit).
const PAUSE_CAP: Duration = Duration::from_millis(500);
/// Post-migration p95 must return to within this factor of healthy.
const RECOVERY_FACTOR: f64 = 2.0;

/// The stateful logic component being bounced between tiers.
#[derive(Debug, Default)]
struct Counter {
    count: AtomicI64,
}

impl Service for Counter {
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ServiceCallError> {
        match method {
            "bump" => Ok(Value::I64(self.count.fetch_add(1, Ordering::SeqCst) + 1)),
            "total" => Ok(Value::I64(self.count.load(Ordering::SeqCst))),
            "export_state" => Ok(Value::I64(self.count.load(Ordering::SeqCst))),
            "import_state" => {
                let v = args.first().and_then(Value::as_i64).ok_or_else(|| {
                    ServiceCallError::BadArguments("import_state expects an integer".into())
                })?;
                self.count.store(v, Ordering::SeqCst);
                Ok(Value::Unit)
            }
            other => Err(ServiceCallError::NoSuchMethod(other.to_owned())),
        }
    }

    fn describe(&self) -> Option<ServiceInterfaceDesc> {
        // State-transfer methods must be declared: the generated proxy
        // rejects undeclared methods client-side.
        Some(ServiceInterfaceDesc::new(
            COUNTER,
            vec![
                MethodSpec::new("bump", vec![], TypeHint::I64, "Increment."),
                MethodSpec::new("total", vec![], TypeHint::I64, "Read."),
                MethodSpec::new("export_state", vec![], TypeHint::I64, "Snapshot."),
                MethodSpec::new(
                    "import_state",
                    vec![ParamSpec::new("state", TypeHint::I64)],
                    TypeHint::Unit,
                    "Adopt a snapshot.",
                ),
            ],
        ))
    }
}

#[derive(Debug, Default)]
struct Facade;

impl Service for Facade {
    fn invoke(&self, method: &str, _args: &[Value]) -> Result<Value, ServiceCallError> {
        match method {
            "ping" => Ok(Value::Unit),
            other => Err(ServiceCallError::NoSuchMethod(other.to_owned())),
        }
    }

    fn describe(&self) -> Option<ServiceInterfaceDesc> {
        Some(ServiceInterfaceDesc::new(
            INTERFACE,
            vec![MethodSpec::new("ping", vec![], TypeHint::Unit, "Liveness.")],
        ))
    }
}

fn descriptor() -> ServiceDescriptor {
    let ui = UiDescription::new("MigBench").with_control(Control::button("bump", "Bump"));
    ServiceDescriptor::new(INTERFACE, ui)
        .with_dependency(DependencySpec::offloadable(
            COUNTER,
            ResourceRequirements::none()
                .with_memory(256 << 10)
                .with_cpu_mhz(100),
        ))
        .with_controller(ControllerProgram::new(vec![Rule::on_click(
            "bump",
            MethodCall::new(COUNTER, "bump", vec![]),
            None,
        )]))
}

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (healthy_n, recovered_n, cycles) = if quick { (50, 50, 3) } else { (200, 200, 10) };

    // Obs-enabled engine: the controller reads the RTT histogram, which
    // only records while tracing is on.
    let (obs, _ring) = Obs::ring(65_536);
    let net = InMemoryNetwork::new();
    let device_fw = Framework::new();
    host_service(
        &device_fw,
        INTERFACE,
        Arc::new(Facade) as Arc<dyn Service>,
        &descriptor(),
        None,
        Properties::new(),
    )
    .unwrap();
    host_service(
        &device_fw,
        COUNTER,
        Arc::new(Counter::default()) as Arc<dyn Service>,
        &ServiceDescriptor::new(COUNTER, UiDescription::new("counter")),
        Some((
            FACTORY_KEY,
            vec![
                "bump".to_owned(),
                "total".to_owned(),
                "export_state".to_owned(),
                "import_state".to_owned(),
            ],
        )),
        Properties::new(),
    )
    .unwrap();
    let device =
        serve_device_with_obs(&net, device_fw, PeerAddr::new("mig-screen"), obs.clone()).unwrap();

    let code = CodeRegistry::new();
    code.register_service(FACTORY_KEY, || {
        Arc::new(Counter::default()) as Arc<dyn Service>
    });
    // Heartbeats relaxed: the injected delay must read as a *slow* link,
    // not a dead one.
    let resilience = ResilienceConfig {
        heartbeat: HeartbeatConfig {
            interval: Duration::from_millis(100),
            timeout: Duration::from_secs(2),
            degraded_after: 3,
            disconnected_after: 10,
        },
        outage_policy: OutagePolicy::Replay,
        ..ResilienceConfig::default()
    };
    let engine = AlfredOEngine::new(
        Framework::new(),
        net.clone(),
        DiscoveryDirectory::new(),
        EngineConfig::phone("mig-phone", DeviceCapabilities::nokia_9300i())
            .trusted(code)
            .with_resilience(resilience)
            .with_obs(obs),
    )
    .with_policy(ThinClientPolicy);

    let raw = net
        .connect(PeerAddr::new("mig-phone"), PeerAddr::new("mig-screen"))
        .unwrap();
    let faulty = FaultyTransport::new(Box::new(raw), FaultPlan::none());
    let delay = faulty.delay_handle();
    let conn = engine.connect_transport(Box::new(faulty)).unwrap();
    let session = conn.acquire(INTERFACE).unwrap();
    assert_eq!(
        session.assignment().logic_placement(COUNTER),
        Placement::Target,
        "thin-client start: the logic tier begins on the device"
    );

    let mut issued: i64 = 0;
    let mut bump = |session: &alfredo_core::AlfredOSession| -> Duration {
        let started = Instant::now();
        let n = session.invoke(COUNTER, "bump", &[]).unwrap();
        issued += 1;
        assert_eq!(n.as_i64(), Some(issued), "no lost or duplicated bumps");
        started.elapsed()
    };

    // --- baseline: healthy link, logic on the device ------------------
    let mut healthy: Vec<Duration> = (0..healthy_n).map(|_| bump(&session)).collect();
    healthy.sort();
    let healthy_p95 = percentile(&healthy, 95);
    println!(
        "baseline   n={healthy_n:4}  p50={:>9.1}us  p95={:>9.1}us  (remote, fast link)",
        us(percentile(&healthy, 50)),
        us(healthy_p95)
    );

    // --- degraded: same placement, delayed link -----------------------
    delay.set_delay(LINK_DELAY);
    let controller = PlacementController::new(
        PlacementControllerConfig {
            min_samples: 6,
            improvement: 1.0,
            confirm_ticks: 2,
            min_dwell: Duration::from_millis(100),
            local_cost_us: 2_000,
            migration_deadline: Duration::from_secs(2),
            ..PlacementControllerConfig::default()
        },
        ClientContext::trusted_phone(),
    );
    let mut sampler = SignalSampler::for_session(&session);
    let mut degraded: Vec<Duration> = Vec::new();
    let mut first_migration = None;
    let mut ticks = 0;
    for _ in 0..20 {
        for _ in 0..8 {
            degraded.push(bump(&session));
        }
        ticks += 1;
        let mut moves = controller.tick(&session, &mut sampler);
        if let Some((interface, outcome)) = moves.pop() {
            assert_eq!(interface, COUNTER);
            first_migration = Some(outcome.expect("controller migration succeeds"));
            break;
        }
    }
    let first = first_migration.expect("the controller must migrate under a degraded link");
    degraded.sort();
    let degraded_p95 = percentile(&degraded, 95);
    println!(
        "degraded   n={:4}  p50={:>9.1}us  p95={:>9.1}us  (remote, +{}ms link)",
        degraded.len(),
        us(percentile(&degraded, 50)),
        us(degraded_p95),
        LINK_DELAY.as_millis()
    );
    println!(
        "migrated   {} -> {} after {ticks} ticks: pause={:.1}us state={} cache_hit={}",
        first.from,
        first.to,
        us(first.pause),
        first.state_transferred,
        first.cache_hit
    );

    // --- migration cycles: bounce the tier, record every pause --------
    let mut pauses = vec![first.pause];
    let mut cache_hits = if first.cache_hit { 1 } else { 0 };
    let mut phone_bound = 1;
    for _ in 0..cycles {
        let back = session
            .migrate_component(COUNTER, Placement::Target, Duration::from_secs(2))
            .expect("migration back to the device");
        pauses.push(back.pause);
        let out = session
            .migrate_component(COUNTER, Placement::Client, Duration::from_secs(2))
            .expect("re-offload to the phone");
        pauses.push(out.pause);
        phone_bound += 1;
        if out.cache_hit {
            cache_hits += 1;
        }
    }
    pauses.sort();
    let pause_p95 = percentile(&pauses, 95);
    println!(
        "pauses     n={:4}  p50={:>9.1}us  p95={:>9.1}us  (cap {:.0}ms, {} cache hits / {} offloads)",
        pauses.len(),
        us(percentile(&pauses, 50)),
        us(pause_p95),
        PAUSE_CAP.as_secs_f64() * 1e3,
        cache_hits,
        phone_bound
    );

    // --- recovered: logic phone-local, link still degraded ------------
    let calls_before = conn.endpoint().stats().calls_sent;
    let mut recovered: Vec<Duration> = (0..recovered_n).map(|_| bump(&session)).collect();
    recovered.sort();
    let recovered_p95 = percentile(&recovered, 95);
    assert_eq!(
        conn.endpoint().stats().calls_sent,
        calls_before,
        "recovered-phase bumps must be phone-local"
    );
    println!(
        "recovered  n={recovered_n:4}  p50={:>9.1}us  p95={:>9.1}us  (local, link still degraded)",
        us(percentile(&recovered, 50)),
        us(recovered_p95)
    );

    // --- guards -------------------------------------------------------
    let total = session
        .invoke(COUNTER, "total", &[])
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(
        total,
        issued,
        "state intact across {} migrations",
        pauses.len()
    );
    assert!(
        pause_p95 <= PAUSE_CAP,
        "pause p95 {pause_p95:?} exceeds the {PAUSE_CAP:?} budget"
    );
    let recovery_cap = Duration::from_secs_f64(healthy_p95.as_secs_f64() * RECOVERY_FACTOR)
        + Duration::from_micros(500);
    assert!(
        recovered_p95 <= recovery_cap,
        "recovered p95 {recovered_p95:?} must be within {RECOVERY_FACTOR}x healthy ({healthy_p95:?})"
    );
    assert!(
        recovered_p95 < degraded_p95,
        "migration must actually help: recovered {recovered_p95:?} vs degraded {degraded_p95:?}"
    );
    assert_eq!(
        cache_hits,
        phone_bound - 1,
        "every phone-bound migration after the first must hit the tier cache"
    );
    println!(
        "guards: pause p95 <= {:.0}ms, recovered p95 <= {RECOVERY_FACTOR}x healthy, \
         recovered < degraded, {total} invocations intact, tier cache reused — all hold",
        PAUSE_CAP.as_secs_f64() * 1e3
    );

    let doc = Json::obj(vec![
        ("benchmark", Json::str("migration_bench")),
        ("quick", Json::Bool(quick)),
        (
            "interaction_us",
            Json::obj(vec![
                ("healthy_p50", Json::F64(us(percentile(&healthy, 50)))),
                ("healthy_p95", Json::F64(us(healthy_p95))),
                ("degraded_p50", Json::F64(us(percentile(&degraded, 50)))),
                ("degraded_p95", Json::F64(us(degraded_p95))),
                ("recovered_p50", Json::F64(us(percentile(&recovered, 50)))),
                ("recovered_p95", Json::F64(us(recovered_p95))),
                ("recovery_factor_cap", Json::F64(RECOVERY_FACTOR)),
            ]),
        ),
        (
            "migration",
            Json::obj(vec![
                ("count", Json::I64(pauses.len() as i64)),
                ("ticks_to_detect", Json::I64(ticks)),
                ("pause_p50_us", Json::F64(us(percentile(&pauses, 50)))),
                ("pause_p95_us", Json::F64(us(pause_p95))),
                ("pause_cap_us", Json::F64(us(PAUSE_CAP))),
                ("phone_bound", Json::I64(phone_bound)),
                ("tier_cache_hits", Json::I64(cache_hits)),
                ("link_delay_ms", Json::I64(LINK_DELAY.as_millis() as i64)),
            ]),
        ),
        ("invocations", Json::I64(total)),
    ]);
    std::fs::write("BENCH_migration.json", doc.to_json_string() + "\n")
        .expect("write BENCH_migration.json");
    println!("wrote BENCH_migration.json");

    session.close();
    conn.close();
    device.stop();
}
