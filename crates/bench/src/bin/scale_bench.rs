//! Multi-phone scale benchmark: N concurrent phones driving one target
//! device through the full AlfredO interaction loop — connect, acquire
//! (tier lease, cached after the first round), a burst of invokes, close.
//!
//! ```text
//! cargo run --release -p alfredo-bench --bin scale_bench
//! cargo run --release -p alfredo-bench --bin scale_bench -- --quick
//! ```
//!
//! The device serves through a [`ServeQueue`] (bounded worker pool with
//! `Busy` backpressure and per-peer fairness). Two in-process guards make
//! the scale-out claims falsifiable on every run:
//!
//! * aggregate throughput at 8 phones with the scaled worker pool must be
//!   at least 2x the serialized baseline (the same 8 phones against a
//!   single-worker queue);
//! * at least 95% of repeat tier lookups must hit the phones' caches
//!   (every interaction after a phone's first re-uses the cached tier —
//!   zero artifact bytes cross the wire).
//!
//! Emits `BENCH_scale.json`: per-N throughput, p50/p95/p99 interaction
//! latency, cache hit rates, and the serve-queue counters.

use std::sync::Arc;
use std::time::{Duration, Instant};

use alfredo_bench::timing::{self, Measurement};
use alfredo_core::{
    host_service, serve_device_queued, AlfredOEngine, EngineConfig, ResilienceConfig,
    ServiceDescriptor,
};
use alfredo_net::{InMemoryNetwork, PeerAddr};
use alfredo_obs::Obs;
use alfredo_osgi::{
    FnService, Framework, Json, MethodSpec, ParamSpec, Properties, ServiceInterfaceDesc, TypeHint,
    Value,
};
use alfredo_rosgi::{DiscoveryDirectory, RetryPolicy, ServeQueue, ServeQueueConfig};
use alfredo_ui::{Control, DeviceCapabilities, UiDescription};

const INTERFACE: &str = "bench.ScaleEcho";

/// Per-call busy time on the device. Sleep-based, so a single-worker
/// queue genuinely serializes it while a pool overlaps it — independent
/// of how many cores the benchmark host has.
const WORK: Duration = Duration::from_micros(500);

fn bench_interface() -> ServiceInterfaceDesc {
    ServiceInterfaceDesc::new(
        INTERFACE,
        vec![MethodSpec::new(
            "work",
            vec![ParamSpec::new("v", TypeHint::I64)],
            TypeHint::I64,
            "Busy-works for a fixed slice, then echoes its argument.",
        )],
    )
}

fn bench_descriptor() -> ServiceDescriptor {
    let ui = UiDescription::new("ScaleBench")
        .with_control(Control::label("title", "Scale bench"))
        .with_control(Control::button("go", "Go"));
    ServiceDescriptor::new(INTERFACE, ui)
}

/// One device serving the bench service through `queue` on `addr`.
fn spawn_device(
    net: &InMemoryNetwork,
    addr: &str,
    queue: ServeQueue,
) -> alfredo_core::ServedDevice {
    let fw = Framework::new();
    host_service(
        &fw,
        INTERFACE,
        Arc::new(
            FnService::new(|_, args| {
                std::thread::sleep(WORK);
                Ok(args.first().cloned().unwrap_or(Value::Unit))
            })
            .with_description(bench_interface()),
        ),
        &bench_descriptor(),
        None,
        Properties::new(),
    )
    .expect("register bench service");
    serve_device_queued(net, fw, PeerAddr::new(addr), Obs::disabled(), queue)
        .expect("serve bench device")
}

/// What one scenario measured.
struct ScenarioResult {
    phones: usize,
    interactions: Measurement,
    calls_per_sec: f64,
    repeat_hit_rate: f64,
    cold_bytes: usize,
    queue_rejected: u64,
}

/// Runs `phones` concurrent phones, each performing `interactions`
/// rounds of connect → acquire → `calls` invokes → close against one
/// queued device. Returns interaction-latency and throughput figures
/// plus the aggregated tier-cache accounting.
fn run_scenario(
    name: &str,
    phones: usize,
    workers: usize,
    interactions: usize,
    calls: usize,
) -> ScenarioResult {
    let net = InMemoryNetwork::new();
    let queue = ServeQueue::new(ServeQueueConfig::workers(workers));
    let addr = format!("scale-dev-{name}");
    let device = spawn_device(&net, &addr, queue.clone());

    let started = Instant::now();
    let threads: Vec<_> = (0..phones)
        .map(|p| {
            let net = net.clone();
            let addr = addr.clone();
            let name = name.to_owned();
            std::thread::spawn(move || {
                // Retries make `Busy` backpressure transparent: a rejected
                // call waits out the hint and re-submits.
                let resilience = ResilienceConfig {
                    retry: RetryPolicy {
                        max_retries: 100,
                        deadline: Duration::from_secs(30),
                        ..RetryPolicy::retries(100)
                    },
                    ..ResilienceConfig::default()
                };
                let engine = AlfredOEngine::new(
                    Framework::new(),
                    net,
                    DiscoveryDirectory::new(),
                    EngineConfig::phone(
                        format!("scale-phone-{name}-{p}"),
                        DeviceCapabilities::nokia_9300i(),
                    )
                    .with_resilience(resilience),
                );
                let mut samples = Vec::with_capacity(interactions);
                let mut cold_bytes = 0usize;
                for round in 0..interactions {
                    let t = Instant::now();
                    let conn = engine
                        .connect(&PeerAddr::new(addr.clone()))
                        .expect("connect");
                    let session = conn.acquire(INTERFACE).expect("acquire");
                    if round == 0 {
                        cold_bytes = session.transferred_bytes();
                    } else {
                        assert_eq!(
                            session.transferred_bytes(),
                            0,
                            "repeat interaction must hit the tier cache"
                        );
                    }
                    for i in 0..calls {
                        let v = session
                            .invoke(INTERFACE, "work", &[Value::I64(i as i64)])
                            .expect("invoke");
                        assert_eq!(v, Value::I64(i as i64));
                    }
                    session.close();
                    conn.close();
                    samples.push(t.elapsed().as_nanos() as f64);
                }
                let stats = engine.tier_cache().stats();
                (samples, stats, cold_bytes)
            })
        })
        .collect();

    let mut samples = Vec::with_capacity(phones * interactions);
    let mut hits = 0u64;
    let mut lookups = 0u64;
    let mut cold_bytes = 0usize;
    for t in threads {
        let (s, stats, cold) = t.join().expect("phone thread");
        samples.extend(s);
        hits += stats.hits;
        lookups += stats.hits + stats.misses;
        cold_bytes = cold;
    }
    let wall = started.elapsed().as_secs_f64();
    let interactions_m = timing::from_samples(&format!("{name} interaction"), samples, wall);
    // Repeats = every lookup except each phone's single cold miss.
    let repeats = lookups.saturating_sub(phones as u64);
    let repeat_hit_rate = if repeats == 0 {
        1.0
    } else {
        hits as f64 / repeats as f64
    };
    let total_calls = (phones * interactions * calls) as f64;
    let queue_rejected = queue.stats().rejected;
    device.stop();
    ScenarioResult {
        phones,
        interactions: interactions_m,
        calls_per_sec: total_calls / wall,
        repeat_hit_rate,
        cold_bytes,
        queue_rejected,
    }
}

fn scenario_json(r: &ScenarioResult) -> Json {
    let m = &r.interactions;
    Json::obj(vec![
        ("phones", Json::I64(r.phones as i64)),
        ("interactions", Json::I64(m.ops as i64)),
        ("calls_per_sec", Json::F64(r.calls_per_sec)),
        ("interaction_p50_ns", Json::F64(m.p50_ns())),
        ("interaction_p95_ns", Json::F64(m.p95_ns())),
        ("interaction_p99_ns", Json::F64(m.percentile_ns(99.0))),
        ("repeat_cache_hit_rate", Json::F64(r.repeat_hit_rate)),
        ("cold_transfer_bytes", Json::I64(r.cold_bytes as i64)),
        ("busy_rejections", Json::I64(r.queue_rejected as i64)),
    ])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (interactions, calls) = if quick { (5, 4) } else { (12, 8) };
    // The per-call work is a sleep, so pool workers overlap it no matter
    // how many cores the host has — 8 workers serve 8 blocking phones at
    // full concurrency even on a single-core runner.
    let scaled_workers = 8;

    println!("scale_bench — N phones vs one queued device");
    println!(
        "(busy-work {}us/call, {} interactions x {} calls per phone, scaled pool {} workers)\n",
        WORK.as_micros(),
        interactions,
        calls,
        scaled_workers
    );

    // --- scaled sweep -----------------------------------------------------
    let mut sweep = Vec::new();
    for phones in [1usize, 2, 4, 8, 16] {
        let r = run_scenario(
            &format!("x{phones}"),
            phones,
            scaled_workers,
            interactions,
            calls,
        );
        r.interactions.report();
        println!(
            "    {:>8.0} calls/s   repeat hit rate {:.3}   busy rejections {}",
            r.calls_per_sec, r.repeat_hit_rate, r.queue_rejected
        );
        sweep.push(r);
    }

    // --- serialized baseline ---------------------------------------------
    // The same 8 phones against a single-worker queue: every invocation
    // serializes through one thread, which is what serving inline on one
    // reader amounts to for a device with one shared executor.
    let serialized = run_scenario("serialized", 8, 1, interactions, calls);
    serialized.interactions.report();
    println!(
        "    {:>8.0} calls/s   (serialized baseline)\n",
        serialized.calls_per_sec
    );

    let scaled8 = sweep
        .iter()
        .find(|r| r.phones == 8)
        .expect("8-phone scenario");
    let speedup = scaled8.calls_per_sec / serialized.calls_per_sec;

    // --- guards -----------------------------------------------------------
    assert!(
        speedup >= 2.0,
        "scaled 8-phone throughput must be at least 2x the serialized \
         baseline, got {speedup:.2}x ({:.0} vs {:.0} calls/s)",
        scaled8.calls_per_sec,
        serialized.calls_per_sec
    );
    for r in sweep.iter().chain([&serialized]) {
        assert!(
            r.repeat_hit_rate >= 0.95,
            "repeat tier lookups must hit the cache (>=95%), got {:.3} at {} phones",
            r.repeat_hit_rate,
            r.phones
        );
    }
    println!("scaled x8 vs serialized x8: {speedup:.2}x  (guards: >=2x throughput, >=95% repeat hit rate)");

    let doc = Json::obj(vec![
        ("benchmark", Json::str("scale_bench")),
        ("transport", Json::str("in-memory channel fabric")),
        ("work_us_per_call", Json::I64(WORK.as_micros() as i64)),
        ("interactions_per_phone", Json::I64(interactions as i64)),
        ("calls_per_interaction", Json::I64(calls as i64)),
        ("scaled_workers", Json::I64(scaled_workers as i64)),
        (
            "scenarios",
            Json::Obj(
                sweep
                    .iter()
                    .map(|r| (format!("phones_{}", r.phones), scenario_json(r)))
                    .chain([("serialized_8".to_owned(), scenario_json(&serialized))])
                    .collect(),
            ),
        ),
        ("speedup_scaled8_vs_serialized8", Json::F64(speedup)),
    ]);
    std::fs::write("BENCH_scale.json", doc.to_json_string() + "\n")
        .expect("write BENCH_scale.json");
    println!("\nwrote BENCH_scale.json");
}
