//! Multi-phone scale benchmark: N concurrent phones driving one target
//! device through the full AlfredO interaction loop — connect, acquire
//! (tier lease, cached after the first round), a burst of invokes, close.
//!
//! ```text
//! cargo run --release -p alfredo-bench --bin scale_bench
//! cargo run --release -p alfredo-bench --bin scale_bench -- --quick
//! ```
//!
//! The device serves through a [`ServeQueue`] (bounded worker pool with
//! `Busy` backpressure and per-peer fairness). Two in-process guards make
//! the scale-out claims falsifiable on every run:
//!
//! * aggregate throughput at 8 phones with the scaled worker pool must be
//!   at least 2x the serialized baseline (the same 8 phones against a
//!   single-worker queue);
//! * at least 95% of repeat tier lookups must hit the phones' caches
//!   (every interaction after a phone's first re-uses the cached tier —
//!   zero artifact bytes cross the wire).
//!
//! Two further guards put the reactor transport on the hook:
//!
//! * the same 8-phone load over *real* loopback TCP must keep its p99
//!   interaction latency within 10% (+2 ms floor) of the in-memory
//!   fabric's — the reactor may not tax the interactive path;
//! * a hold-open sweep (64/256/1000 phones full, 8/64 quick) keeps N
//!   connections registered simultaneously and asserts the I/O budget
//!   stays fixed: `io_threads <= 8` and the process thread count does
//!   not grow with N (no thread-per-connection anywhere).
//!
//! Emits `BENCH_scale.json`: per-N throughput, p50/p95/p99 interaction
//! latency, cache hit rates, serve-queue counters, and the hold-open
//! FD/thread/reactor gauges.

use std::sync::Arc;
use std::time::{Duration, Instant};

use alfredo_bench::timing::{self, Measurement};
use alfredo_core::{
    host_service, serve_device_queued, serve_device_tcp, AlfredOEngine, EngineConfig,
    ResilienceConfig, ServiceDescriptor,
};
use alfredo_net::{raise_nofile_limit, InMemoryNetwork, PeerAddr, TcpNetListener, TcpTransport};
use alfredo_obs::Obs;
use alfredo_osgi::{
    FnService, Framework, Json, MethodSpec, ParamSpec, Properties, ServiceInterfaceDesc, TypeHint,
    Value,
};
use alfredo_rosgi::{
    DiscoveryDirectory, EndpointConfig, RemoteEndpoint, RetryPolicy, ServeQueue, ServeQueueConfig,
};
use alfredo_ui::{Control, DeviceCapabilities, UiDescription};

const INTERFACE: &str = "bench.ScaleEcho";

/// Per-call busy time on the device. Sleep-based, so a single-worker
/// queue genuinely serializes it while a pool overlaps it — independent
/// of how many cores the benchmark host has.
const WORK: Duration = Duration::from_micros(500);

fn bench_interface() -> ServiceInterfaceDesc {
    ServiceInterfaceDesc::new(
        INTERFACE,
        vec![MethodSpec::new(
            "work",
            vec![ParamSpec::new("v", TypeHint::I64)],
            TypeHint::I64,
            "Busy-works for a fixed slice, then echoes its argument.",
        )],
    )
}

fn bench_descriptor() -> ServiceDescriptor {
    let ui = UiDescription::new("ScaleBench")
        .with_control(Control::label("title", "Scale bench"))
        .with_control(Control::button("go", "Go"));
    ServiceDescriptor::new(INTERFACE, ui)
}

/// A device framework with the bench service registered.
fn bench_framework() -> Framework {
    let fw = Framework::new();
    host_service(
        &fw,
        INTERFACE,
        Arc::new(
            FnService::new(|_, args| {
                std::thread::sleep(WORK);
                Ok(args.first().cloned().unwrap_or(Value::Unit))
            })
            .with_description(bench_interface()),
        ),
        &bench_descriptor(),
        None,
        Properties::new(),
    )
    .expect("register bench service");
    fw
}

/// One device serving the bench service through `queue` on `addr`.
fn spawn_device(
    net: &InMemoryNetwork,
    addr: &str,
    queue: ServeQueue,
) -> alfredo_core::ServedDevice {
    serve_device_queued(
        net,
        bench_framework(),
        PeerAddr::new(addr),
        Obs::disabled(),
        queue,
    )
    .expect("serve bench device")
}

/// What one scenario measured.
struct ScenarioResult {
    phones: usize,
    interactions: Measurement,
    calls_per_sec: f64,
    repeat_hit_rate: f64,
    cold_bytes: usize,
    queue_rejected: u64,
}

/// Runs `phones` concurrent phones, each performing `interactions`
/// rounds of connect → acquire → `calls` invokes → close against one
/// queued device, over the in-memory fabric or real TCP loopback
/// (reactor-served sockets). Returns interaction-latency and throughput
/// figures plus the aggregated tier-cache accounting.
fn run_scenario_on(
    name: &str,
    phones: usize,
    workers: usize,
    interactions: usize,
    calls: usize,
    tcp: bool,
) -> ScenarioResult {
    enum Device {
        Mem(alfredo_core::ServedDevice),
        Tcp(alfredo_core::ServedTcpDevice),
    }
    let net = InMemoryNetwork::new();
    let queue = ServeQueue::new(ServeQueueConfig::workers(workers));
    let addr = format!("scale-dev-{name}");
    let (device, tcp_addr) = if tcp {
        let listener = TcpNetListener::bind("127.0.0.1:0").expect("bind loopback");
        let sock = listener.local_addr();
        let dev = serve_device_tcp(
            listener,
            bench_framework(),
            Obs::disabled(),
            Some(queue.clone()),
        );
        (Device::Tcp(dev), Some(sock))
    } else {
        (Device::Mem(spawn_device(&net, &addr, queue.clone())), None)
    };

    if let Some(sock) = tcp_addr {
        // Warm the path before timing: the first socket spins up the
        // reactor's poller threads and timer wheel — one-time cost that
        // would otherwise land in the first interaction's sample.
        let wire = TcpTransport::connect(sock).expect("tcp connect");
        let warm = RemoteEndpoint::establish(
            Box::new(wire),
            Framework::new(),
            EndpointConfig::named("warmup"),
        )
        .expect("warmup establish");
        warm.ping(Duration::from_secs(10)).expect("warmup ping");
        warm.close();
    }

    let started = Instant::now();
    let threads: Vec<_> = (0..phones)
        .map(|p| {
            let net = net.clone();
            let addr = addr.clone();
            let name = name.to_owned();
            std::thread::spawn(move || {
                // Retries make `Busy` backpressure transparent: a rejected
                // call waits out the hint and re-submits.
                let resilience = ResilienceConfig {
                    retry: RetryPolicy {
                        max_retries: 100,
                        deadline: Duration::from_secs(30),
                        ..RetryPolicy::retries(100)
                    },
                    ..ResilienceConfig::default()
                };
                let engine = AlfredOEngine::new(
                    Framework::new(),
                    net,
                    DiscoveryDirectory::new(),
                    EngineConfig::phone(
                        format!("scale-phone-{name}-{p}"),
                        DeviceCapabilities::nokia_9300i(),
                    )
                    .with_resilience(resilience),
                );
                let mut samples = Vec::with_capacity(interactions);
                let mut cold_bytes = 0usize;
                for round in 0..interactions {
                    let t = Instant::now();
                    let conn = match tcp_addr {
                        Some(sock) => {
                            let wire = TcpTransport::connect(sock).expect("tcp connect");
                            engine.connect_transport(Box::new(wire)).expect("connect")
                        }
                        None => engine
                            .connect(&PeerAddr::new(addr.clone()))
                            .expect("connect"),
                    };
                    let session = conn.acquire(INTERFACE).expect("acquire");
                    if round == 0 {
                        cold_bytes = session.transferred_bytes();
                    } else {
                        assert_eq!(
                            session.transferred_bytes(),
                            0,
                            "repeat interaction must hit the tier cache"
                        );
                    }
                    for i in 0..calls {
                        let v = session
                            .invoke(INTERFACE, "work", &[Value::I64(i as i64)])
                            .expect("invoke");
                        assert_eq!(v, Value::I64(i as i64));
                    }
                    session.close();
                    conn.close();
                    samples.push(t.elapsed().as_nanos() as f64);
                }
                let stats = engine.tier_cache().stats();
                (samples, stats, cold_bytes)
            })
        })
        .collect();

    let mut samples = Vec::with_capacity(phones * interactions);
    let mut hits = 0u64;
    let mut lookups = 0u64;
    let mut cold_bytes = 0usize;
    for t in threads {
        let (s, stats, cold) = t.join().expect("phone thread");
        samples.extend(s);
        hits += stats.hits;
        lookups += stats.hits + stats.misses;
        cold_bytes = cold;
    }
    let wall = started.elapsed().as_secs_f64();
    let interactions_m = timing::from_samples(&format!("{name} interaction"), samples, wall);
    // Repeats = every lookup except each phone's single cold miss.
    let repeats = lookups.saturating_sub(phones as u64);
    let repeat_hit_rate = if repeats == 0 {
        1.0
    } else {
        hits as f64 / repeats as f64
    };
    let total_calls = (phones * interactions * calls) as f64;
    let queue_rejected = queue.stats().rejected;
    match device {
        Device::Mem(d) => d.stop(),
        Device::Tcp(d) => d.stop(),
    }
    ScenarioResult {
        phones,
        interactions: interactions_m,
        calls_per_sec: total_calls / wall,
        repeat_hit_rate,
        cold_bytes,
        queue_rejected,
    }
}

fn run_scenario(
    name: &str,
    phones: usize,
    workers: usize,
    interactions: usize,
    calls: usize,
) -> ScenarioResult {
    run_scenario_on(name, phones, workers, interactions, calls, false)
}

fn run_scenario_tcp(
    name: &str,
    phones: usize,
    workers: usize,
    interactions: usize,
    calls: usize,
) -> ScenarioResult {
    run_scenario_on(name, phones, workers, interactions, calls, true)
}

/// Reactor-budget figures with N phone connections held open.
struct HoldOpenResult {
    phones: usize,
    /// Open file descriptors in this process (`/proc/self/fd`).
    fds: usize,
    /// OS threads in this process (`/proc/self/status`).
    threads: usize,
    open_connections: u64,
    io_threads: u64,
    timer_entries: u64,
    ping_p99_ns: f64,
}

fn count_fds() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .map(|d| d.count())
        .unwrap_or(0)
}

fn count_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Connects `phones` endpoints to one TCP device and *holds them all
/// open*: every connection lives on the reactor (no per-connection
/// threads), so the process's thread count must not grow with N. Each
/// phone proves liveness with a ping round-trip while all N connections
/// are registered; the snapshot captures FD/thread/reactor gauges at
/// full fan-in.
fn run_hold_open(phones: usize) -> HoldOpenResult {
    let queue = ServeQueue::new(ServeQueueConfig::workers(8));
    let listener = TcpNetListener::bind("127.0.0.1:0").expect("bind loopback");
    let sock = listener.local_addr();
    let device = serve_device_tcp(listener, bench_framework(), Obs::disabled(), Some(queue));

    let mut endpoints = Vec::with_capacity(phones);
    for i in 0..phones {
        let wire = TcpTransport::connect(sock).expect("tcp connect");
        let ep = RemoteEndpoint::establish(
            Box::new(wire),
            Framework::new(),
            EndpointConfig::named(format!("hold-{i}")),
        )
        .expect("establish");
        endpoints.push(ep);
    }

    // Every held connection answers while all N are multiplexed.
    let started = Instant::now();
    let mut rtts = Vec::with_capacity(phones);
    for ep in &endpoints {
        let rtt = ep.ping(Duration::from_secs(30)).expect("ping held phone");
        rtts.push(rtt.as_nanos() as f64);
    }
    let wall = started.elapsed().as_secs_f64();
    let pings = timing::from_samples(&format!("hold-open x{phones} ping"), rtts, wall);

    let stats = endpoints[0].stats();
    let result = HoldOpenResult {
        phones,
        fds: count_fds(),
        threads: count_threads(),
        open_connections: stats.open_connections,
        io_threads: stats.io_threads,
        timer_entries: stats.timer_entries,
        ping_p99_ns: pings.percentile_ns(99.0),
    };
    for ep in endpoints {
        ep.close();
    }
    device.stop();
    result
}

fn hold_open_json(h: &HoldOpenResult) -> Json {
    Json::obj(vec![
        ("phones", Json::I64(h.phones as i64)),
        ("fds", Json::I64(h.fds as i64)),
        ("threads", Json::I64(h.threads as i64)),
        ("open_connections", Json::I64(h.open_connections as i64)),
        ("io_threads", Json::I64(h.io_threads as i64)),
        ("timer_entries", Json::I64(h.timer_entries as i64)),
        ("ping_p99_ns", Json::F64(h.ping_p99_ns)),
    ])
}

fn scenario_json(r: &ScenarioResult) -> Json {
    let m = &r.interactions;
    Json::obj(vec![
        ("phones", Json::I64(r.phones as i64)),
        ("interactions", Json::I64(m.ops as i64)),
        ("calls_per_sec", Json::F64(r.calls_per_sec)),
        ("interaction_p50_ns", Json::F64(m.p50_ns())),
        ("interaction_p95_ns", Json::F64(m.p95_ns())),
        ("interaction_p99_ns", Json::F64(m.percentile_ns(99.0))),
        ("repeat_cache_hit_rate", Json::F64(r.repeat_hit_rate)),
        ("cold_transfer_bytes", Json::I64(r.cold_bytes as i64)),
        ("busy_rejections", Json::I64(r.queue_rejected as i64)),
    ])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (interactions, calls) = if quick { (5, 4) } else { (12, 8) };
    // The hold-open sweep keeps 2 FDs per held connection pair open at
    // once; make room before the first socket.
    let nofile = raise_nofile_limit(16 * 1024);
    // The per-call work is a sleep, so pool workers overlap it no matter
    // how many cores the host has — 8 workers serve 8 blocking phones at
    // full concurrency even on a single-core runner.
    let scaled_workers = 8;

    println!("scale_bench — N phones vs one queued device");
    println!(
        "(busy-work {}us/call, {} interactions x {} calls per phone, scaled pool {} workers)\n",
        WORK.as_micros(),
        interactions,
        calls,
        scaled_workers
    );

    // --- scaled sweep -----------------------------------------------------
    let mut sweep = Vec::new();
    for phones in [1usize, 2, 4, 8, 16] {
        let r = run_scenario(
            &format!("x{phones}"),
            phones,
            scaled_workers,
            interactions,
            calls,
        );
        r.interactions.report();
        println!(
            "    {:>8.0} calls/s   repeat hit rate {:.3}   busy rejections {}",
            r.calls_per_sec, r.repeat_hit_rate, r.queue_rejected
        );
        sweep.push(r);
    }

    // --- serialized baseline ---------------------------------------------
    // The same 8 phones against a single-worker queue: every invocation
    // serializes through one thread, which is what serving inline on one
    // reader amounts to for a device with one shared executor.
    let serialized = run_scenario("serialized", 8, 1, interactions, calls);
    serialized.interactions.report();
    println!(
        "    {:>8.0} calls/s   (serialized baseline)\n",
        serialized.calls_per_sec
    );

    let scaled8 = sweep
        .iter()
        .find(|r| r.phones == 8)
        .expect("8-phone scenario");
    let speedup = scaled8.calls_per_sec / serialized.calls_per_sec;

    // --- guards -----------------------------------------------------------
    assert!(
        speedup >= 2.0,
        "scaled 8-phone throughput must be at least 2x the serialized \
         baseline, got {speedup:.2}x ({:.0} vs {:.0} calls/s)",
        scaled8.calls_per_sec,
        serialized.calls_per_sec
    );
    for r in sweep.iter().chain([&serialized]) {
        assert!(
            r.repeat_hit_rate >= 0.95,
            "repeat tier lookups must hit the cache (>=95%), got {:.3} at {} phones",
            r.repeat_hit_rate,
            r.phones
        );
    }
    println!("scaled x8 vs serialized x8: {speedup:.2}x  (guards: >=2x throughput, >=95% repeat hit rate)\n");

    // --- real sockets: 8 phones over loopback TCP -------------------------
    // The same 8-phone interaction load, but every frame crosses a real
    // socket served by the reactor. The guard keeps the reactor honest:
    // its p99 must stay within 10% of the in-memory fabric's (plus a
    // 2 ms absolute floor so a sub-millisecond in-memory p99 on an idle
    // host doesn't turn scheduler jitter into a failure).
    let inmem_p99 = scaled8.interactions.percentile_ns(99.0);
    let p99_budget = inmem_p99 * 1.10 + 2_000_000.0;
    // p99 over ~100 samples on a loaded runner is scheduler-jitter-bound;
    // a structural regression fails every attempt, one unlucky tail does
    // not. Up to three tries, first within budget wins.
    let mut tcp8 = run_scenario_tcp("tcp8", 8, scaled_workers, interactions, calls);
    for attempt in 1..3 {
        if tcp8.interactions.percentile_ns(99.0) <= p99_budget {
            break;
        }
        println!(
            "    (tcp8 p99 {:.2}ms over budget {:.2}ms — retry {attempt}/2)",
            tcp8.interactions.percentile_ns(99.0) / 1e6,
            p99_budget / 1e6
        );
        tcp8 = run_scenario_tcp("tcp8", 8, scaled_workers, interactions, calls);
    }
    tcp8.interactions.report();
    println!(
        "    {:>8.0} calls/s   (real TCP via reactor)",
        tcp8.calls_per_sec
    );
    let tcp_p99 = tcp8.interactions.percentile_ns(99.0);
    assert!(
        tcp_p99 <= p99_budget,
        "8-phone p99 over real TCP must stay within 10% (+2ms) of the \
         in-memory fabric: tcp {tcp_p99:.0}ns vs in-mem {inmem_p99:.0}ns"
    );
    println!(
        "tcp x8 p99 {:.2}ms vs in-mem x8 p99 {:.2}ms  (guard: tcp <= in-mem * 1.10 + 2ms)\n",
        tcp_p99 / 1e6,
        inmem_p99 / 1e6
    );

    // --- hold-open sweep: N phones multiplexed on a fixed I/O budget ------
    let hold_ns: &[usize] = if quick { &[8, 64] } else { &[64, 256, 1000] };
    let mut holds = Vec::new();
    for &n in hold_ns {
        let h = run_hold_open(n);
        println!(
            "hold-open x{:<5}  fds {:>5}  threads {:>3}  conns {:>5}  io_threads {}  timers {}  ping p99 {:.2}ms",
            h.phones,
            h.fds,
            h.threads,
            h.open_connections,
            h.io_threads,
            h.timer_entries,
            h.ping_p99_ns / 1e6
        );
        holds.push(h);
    }
    for h in &holds {
        assert!(
            h.io_threads <= 8,
            "I/O core budget is fixed: io_threads {} at {} phones",
            h.io_threads,
            h.phones
        );
        // Both halves of every held pair live in this process and are
        // reactor-registered.
        assert!(
            h.open_connections >= 2 * h.phones as u64,
            "expected >= {} reactor connections, saw {}",
            2 * h.phones,
            h.open_connections
        );
    }
    let (t_min, t_max) = (holds[0].threads, holds[holds.len() - 1].threads);
    assert!(
        t_max <= t_min + 8,
        "thread count must be independent of phone count: {t_min} threads at \
         {} phones vs {t_max} at {} phones",
        holds[0].phones,
        holds[holds.len() - 1].phones
    );
    println!(
        "\nthreads flat across sweep: {t_min} at x{} -> {t_max} at x{}  (guard: growth <= 8)",
        holds[0].phones,
        holds[holds.len() - 1].phones
    );

    let doc = Json::obj(vec![
        ("benchmark", Json::str("scale_bench")),
        (
            "transport",
            Json::str("in-memory channel fabric + loopback TCP (reactor)"),
        ),
        ("work_us_per_call", Json::I64(WORK.as_micros() as i64)),
        ("interactions_per_phone", Json::I64(interactions as i64)),
        ("calls_per_interaction", Json::I64(calls as i64)),
        ("scaled_workers", Json::I64(scaled_workers as i64)),
        ("nofile_limit", Json::I64(nofile as i64)),
        (
            "scenarios",
            Json::Obj(
                sweep
                    .iter()
                    .map(|r| (format!("phones_{}", r.phones), scenario_json(r)))
                    .chain([
                        ("serialized_8".to_owned(), scenario_json(&serialized)),
                        ("tcp_8".to_owned(), scenario_json(&tcp8)),
                    ])
                    .collect(),
            ),
        ),
        ("speedup_scaled8_vs_serialized8", Json::F64(speedup)),
        (
            "tcp8_p99_vs_inmem8_p99",
            Json::F64(if inmem_p99 > 0.0 {
                tcp_p99 / inmem_p99
            } else {
                0.0
            }),
        ),
        (
            "hold_open",
            Json::Obj(
                holds
                    .iter()
                    .map(|h| (format!("phones_{}", h.phones), hold_open_json(h)))
                    .collect(),
            ),
        ),
    ]);
    std::fs::write("BENCH_scale.json", doc.to_json_string() + "\n")
        .expect("write BENCH_scale.json");
    println!("\nwrote BENCH_scale.json");
}
