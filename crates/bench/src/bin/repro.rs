//! Regenerates every table and figure of the AlfredO paper's evaluation.
//!
//! ```text
//! cargo run -p alfredo-bench --release --bin repro            # everything
//! cargo run -p alfredo-bench --release --bin repro -- fig4    # one experiment
//! cargo run -p alfredo-bench --release --bin repro -- --full  # paper-length 90 s windows
//! cargo run -p alfredo-bench --release --bin repro -- fig5 --csv  # machine-readable output
//! ```
//!
//! Experiments: `footprint`, `table1`, `table2`, `fig3`, `fig4`, `fig5`,
//! `fig6`, `ablate`. By default the scalability figures use 20-second
//! measurement windows (the paper uses ≥90 s; pass `--full` for that —
//! the means differ by well under the run-to-run noise).

use alfredo_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = selected.is_empty();
    let want = |name: &str| all || selected.contains(&name);
    let window_secs = if full { 90 } else { 20 };

    if !csv {
        println!("AlfredO reproduction — regenerating the paper's evaluation");
        println!(
            "(simulated testbed; {window_secs} s measurement windows{})\n",
            if full { "" } else { ", pass --full for 90 s" }
        );
    }

    let emit = |text: String, csv_text: String| {
        if csv {
            print!("{csv_text}");
        } else {
            println!("{text}");
        }
    };
    if want("footprint") {
        let r = experiments::footprint();
        emit(r.render(), r.csv());
    }
    if want("table1") {
        let r = experiments::table1();
        emit(r.render(), r.csv());
    }
    if want("table2") {
        let r = experiments::table2();
        emit(r.render(), r.csv());
    }
    if want("fig3") {
        let r = experiments::fig3(window_secs);
        emit(r.render(), r.csv());
    }
    if want("fig4") {
        let r = experiments::fig4(window_secs);
        emit(r.render(), r.csv());
    }
    if want("fig5") {
        let r = experiments::fig5();
        emit(r.render(), r.csv());
    }
    if want("fig6") {
        let r = experiments::fig6();
        emit(r.render(), r.csv());
    }
    if want("ablate") {
        let r = experiments::ablations();
        if csv {
            let mut out = String::from("ablation,link,a,b\n");
            for (l, a, b) in &r.proxy_cache {
                out.push_str(&format!("proxy_cache,{l},{a:.1},{b:.1}\n"));
            }
            for (l, a, b) in &r.offload {
                out.push_str(&format!("offload,{l},{a:.2},{b:.2}\n"));
            }
            for (l, a, b) in &r.presentation {
                out.push_str(&format!("presentation,{l},{a:.2},{b:.2}\n"));
            }
            for (l, a, b) in &r.data_replica {
                out.push_str(&format!("data_replica,{l},{a:.3},{b:.4}\n"));
            }
            print!("{out}");
        } else {
            println!("{}", r.render());
        }
    }

    if !all
        && !selected.iter().all(|s| {
            [
                "footprint",
                "table1",
                "table2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "ablate",
            ]
            .contains(s)
        })
    {
        eprintln!(
            "unknown experiment in {selected:?}; choose from footprint, table1, table2, fig3, fig4, fig5, fig6, ablate"
        );
        std::process::exit(2);
    }
}
