//! Overload-control benchmark: does the deadline/budget/breaker stack
//! keep a saturated device *useful* instead of metastable?
//!
//! ```text
//! cargo run --release -p alfredo-bench --bin overload_bench
//! cargo run --release -p alfredo-bench --bin overload_bench -- --quick
//! ```
//!
//! Three sections, each with in-process guards that make the overload
//! story falsifiable on every run:
//!
//! * **goodput** — a queued device is first measured at its closed-loop
//!   capacity, then driven at 2× that concurrency through
//!   [`FaultyTransport`] send delays (a jittery WLAN), every call
//!   stamped with a wire deadline. Guard: goodput (calls completing
//!   within their deadline) stays >= 70% of the measured capacity —
//!   overload costs queueing, not collapse.
//! * **shed** — the workers are plugged with long stall calls, then a
//!   burst of short-deadline calls queues behind them. Every accepted
//!   burst entry's deadline expires while queued, so the workers drop
//!   them at dequeue (`rosgi.shed_expired`) without executing a single
//!   one. Guards: the queue's accounting closes exactly (submitted ==
//!   served + shed_expired) and the service's own execution counter
//!   equals served — expired work is rejected, never run.
//! * **storm** — 64 phones fire barrier-synchronized bursts at a device
//!   whose queue holds almost nothing, the classic lockstep retry storm.
//!   Each phone carries a small retry budget (token bucket refilled by
//!   successes). Guards: total frames sent stay <= 2× the first-attempt
//!   traffic (`rosgi.retry_budget_exhausted` proves the cap engaged),
//!   every phone terminates with either a result or a clean `Busy`, and
//!   a post-storm probe call succeeds immediately — the storm converges
//!   instead of melting the device.
//!
//! Emits `BENCH_overload.json` with every figure the guards checked.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use alfredo_net::{FaultPlan, FaultyTransport, InMemoryNetwork, PeerAddr, Transport};
use alfredo_osgi::{
    FnService, Framework, Json, MethodSpec, ParamSpec, Properties, ServiceCallError,
    ServiceInterfaceDesc, TypeHint, Value,
};
use alfredo_rosgi::{
    EndpointConfig, RemoteEndpoint, RetryBudgetConfig, RetryPolicy, RosgiError, ServeQueue,
    ServeQueueConfig,
};
use alfredo_sync::Mutex;

const INTERFACE: &str = "bench.Overload";
/// Worker pool serving the goodput/shed device.
const WORKERS: usize = 4;
/// Nominal service time of one call (the `work` argument, in ms).
const SERVICE_MS: u64 = 2;
/// How long each plug call pins a worker in the shed section.
const STALL_MS: u64 = 150;
/// The burst callers' whole-call budget; expires long before the plugs
/// release the workers.
const BURST_TIMEOUT: Duration = Duration::from_millis(30);
/// Phones in the synchronized retry storm.
const STORM_PHONES: usize = 64;
/// Goodput under 2× load must hold this fraction of measured capacity.
const GOODPUT_FLOOR: f64 = 0.70;
/// The storm's frames-sent amplification cap over first-attempt traffic.
const AMPLIFICATION_CAP: f64 = 2.0;

type Roster = Arc<Mutex<Vec<Arc<RemoteEndpoint>>>>;

fn interface_desc() -> ServiceInterfaceDesc {
    ServiceInterfaceDesc::new(
        INTERFACE,
        vec![MethodSpec::new(
            "work",
            vec![ParamSpec::new("ms", TypeHint::I64)],
            TypeHint::I64,
            "Sleeps `ms` milliseconds and returns it.",
        )],
    )
}

/// A device serving `bench.Overload/work` through `queue`. Every
/// execution bumps `execs` — the ground truth for the zero-expired-
/// executions guard. Returns the roster of serving endpoints so their
/// `rosgi.shed_expired` counters can be aggregated.
fn spawn_device(
    net: &InMemoryNetwork,
    addr: &str,
    queue: ServeQueue,
    execs: Arc<AtomicU64>,
) -> Roster {
    let fw = Framework::new();
    fw.system_context()
        .register_service(
            &[INTERFACE],
            Arc::new(
                FnService::new(move |_, args| {
                    let ms = args.first().and_then(Value::as_i64).unwrap_or(0);
                    std::thread::sleep(Duration::from_millis(ms as u64));
                    execs.fetch_add(1, Ordering::Relaxed);
                    Ok(Value::I64(ms))
                })
                .with_description(interface_desc()),
            ),
            Properties::new(),
        )
        .expect("register overload service");
    let listener = net.bind(PeerAddr::new(addr)).expect("bind device");
    let roster: Roster = Arc::new(Mutex::new(Vec::new()));
    let accept_roster = Arc::clone(&roster);
    let name = addr.to_owned();
    std::thread::spawn(move || {
        while let Ok(conn) = listener.accept() {
            let fw2 = fw.clone();
            let cfg = EndpointConfig::named(name.clone()).with_serve_queue(queue.clone());
            let roster = Arc::clone(&accept_roster);
            std::thread::spawn(move || {
                if let Ok(ep) = RemoteEndpoint::establish(Box::new(conn), fw2, cfg) {
                    let ep = Arc::new(ep);
                    roster.lock().push(Arc::clone(&ep));
                    ep.join();
                }
            });
        }
    });
    roster
}

/// Connects a phone endpoint, optionally through a seeded faulty wire.
fn connect(
    net: &InMemoryNetwork,
    from: &str,
    to: &str,
    cfg: EndpointConfig,
    plan: Option<FaultPlan>,
) -> RemoteEndpoint {
    let raw = net
        .connect(PeerAddr::new(from), PeerAddr::new(to))
        .expect("connect");
    let transport: Box<dyn Transport> = match plan {
        Some(p) => Box::new(FaultyTransport::new(Box::new(raw), p)),
        None => Box::new(raw),
    };
    RemoteEndpoint::establish(transport, Framework::new(), cfg).expect("handshake")
}

/// Closed-loop drive: every phone issues `calls` invocations of
/// `work(SERVICE_MS)` and reports (successes, failures).
fn drive(eps: &[Arc<RemoteEndpoint>], calls: u64) -> (u64, u64) {
    let ok = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = eps
        .iter()
        .map(|ep| {
            let ep = Arc::clone(ep);
            let ok = Arc::clone(&ok);
            let failed = Arc::clone(&failed);
            std::thread::spawn(move || {
                for _ in 0..calls {
                    match ep.invoke(INTERFACE, "work", &[Value::I64(SERVICE_MS as i64)]) {
                        Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                        Err(_) => failed.fetch_add(1, Ordering::Relaxed),
                    };
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("driver thread");
    }
    (ok.load(Ordering::Relaxed), failed.load(Ordering::Relaxed))
}

/// Sum of `rosgi.shed_expired` across a device's serving endpoints.
fn roster_shed_expired(roster: &Roster) -> u64 {
    roster.lock().iter().map(|ep| ep.stats().shed_expired).sum()
}

fn wait_for_drain(queue: &ServeQueue, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = queue.stats();
        if s.depth == 0 && s.submitted == s.served + s.shed_expired {
            return;
        }
        assert!(Instant::now() < deadline, "{what} never drained: {s:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (capacity_calls, overload_calls, burst_calls, storm_calls) = if quick {
        (100u64, 100u64, 24u64, 3u64)
    } else {
        (300, 300, 48, 6)
    };

    println!("overload_bench — deadline shedding, retry budgets, storm convergence");
    println!(
        "({WORKERS} workers x {SERVICE_MS}ms service, {capacity_calls} calls/phone capacity, \
         {overload_calls} calls/phone at 2x, {STORM_PHONES}-phone storm)\n"
    );

    let net = InMemoryNetwork::new();
    let execs = Arc::new(AtomicU64::new(0));
    let queue = ServeQueue::new(ServeQueueConfig {
        workers: WORKERS,
        per_peer_depth: 1024,
        total_depth: 1024,
        retry_after: Duration::from_millis(1),
    });
    let roster = spawn_device(&net, "overload-dev", queue.clone(), Arc::clone(&execs));

    // --- capacity: closed loop at the worker count, no deadlines -----------
    let phones: Vec<Arc<RemoteEndpoint>> = (0..WORKERS)
        .map(|i| {
            Arc::new(connect(
                &net,
                &format!("cap-phone-{i}"),
                "overload-dev",
                EndpointConfig::named(format!("cap-phone-{i}")),
                None,
            ))
        })
        .collect();
    let started = Instant::now();
    let (ok, failed) = drive(&phones, capacity_calls);
    let capacity = ok as f64 / started.elapsed().as_secs_f64();
    assert_eq!(failed, 0, "capacity phase must not fail calls");
    for p in &phones {
        p.close();
    }
    println!("capacity: {capacity:>7.0} calls/s at concurrency {WORKERS}");

    // --- goodput: 2x concurrency through a jittery wire, deadlines on ------
    let phones: Vec<Arc<RemoteEndpoint>> = (0..2 * WORKERS)
        .map(|i| {
            Arc::new(connect(
                &net,
                &format!("load-phone-{i}"),
                "overload-dev",
                EndpointConfig::named(format!("load-phone-{i}"))
                    .with_invoke_timeout(Duration::from_millis(50))
                    .with_deadline_propagation(),
                Some(
                    FaultPlan::seeded(0xBEEF ^ i as u64).with_delay(0.3, Duration::from_millis(2)),
                ),
            ))
        })
        .collect();
    let started = Instant::now();
    let (ok, failed) = drive(&phones, overload_calls);
    let goodput = ok as f64 / started.elapsed().as_secs_f64();
    let goodput_ratio = goodput / capacity;
    for p in &phones {
        p.close();
    }
    println!(
        "goodput:  {goodput:>7.0} calls/s at concurrency {} ({ok} ok, {failed} failed, \
         {:.0}% of capacity)",
        2 * WORKERS,
        goodput_ratio * 100.0
    );

    // --- shed: plug every worker, then queue a doomed short-deadline burst -
    let plugger = connect(
        &net,
        "plug-phone",
        "overload-dev",
        EndpointConfig::named("plug-phone").with_invoke_timeout(Duration::from_secs(5)),
        None,
    );
    let plugs: Vec<_> = (0..WORKERS)
        .map(|_| {
            plugger
                .invoke_async(INTERFACE, "work", &[Value::I64(STALL_MS as i64)])
                .expect("plug submit")
        })
        .collect();
    // Give the workers a beat to pick the plugs up so the burst queues
    // strictly behind them.
    std::thread::sleep(Duration::from_millis(20));
    let burst_phone = connect(
        &net,
        "burst-phone",
        "overload-dev",
        EndpointConfig::named("burst-phone")
            .with_invoke_timeout(BURST_TIMEOUT)
            .with_deadline_propagation(),
        None,
    );
    let executed_before_burst = execs.load(Ordering::Relaxed);
    let burst: Vec<_> = (0..burst_calls)
        .map(|_| {
            burst_phone
                .invoke_async(INTERFACE, "work", &[Value::I64(SERVICE_MS as i64)])
                .expect("burst submit")
        })
        .collect();
    let burst_ok = burst.into_iter().filter_map(|h| h.wait().ok()).count() as u64;
    for plug in plugs {
        plug.wait().expect("plugs run to completion");
    }
    wait_for_drain(&queue, "shed section");
    // The expiry responders bump the endpoint counter just after the
    // queue counter; give them a beat to finish answering.
    std::thread::sleep(Duration::from_millis(50));
    let qs = queue.stats();
    let wire_shed = roster_shed_expired(&roster);
    let executed = execs.load(Ordering::Relaxed);
    println!(
        "shed:     {} expired in queue, {} predicted at enqueue, burst {burst_ok}/{burst_calls} \
         executed, accounting submitted={} served={} executed={}",
        qs.shed_expired, qs.shed_predicted, qs.submitted, qs.served, executed
    );

    // --- storm: synchronized 64-phone bursts against a tiny queue ----------
    let storm_execs = Arc::new(AtomicU64::new(0));
    let storm_queue = ServeQueue::new(ServeQueueConfig {
        workers: 2,
        per_peer_depth: 1,
        total_depth: 8,
        retry_after: Duration::from_millis(2),
    });
    let _storm_roster = spawn_device(&net, "storm-dev", storm_queue.clone(), storm_execs);
    let storm_phones: Vec<Arc<RemoteEndpoint>> = (0..STORM_PHONES)
        .map(|i| {
            Arc::new(connect(
                &net,
                &format!("storm-phone-{i}"),
                "storm-dev",
                EndpointConfig::named(format!("storm-phone-{i}"))
                    .with_retry(RetryPolicy {
                        max_retries: 10,
                        initial_backoff: Duration::from_millis(2),
                        max_backoff: Duration::from_millis(10),
                        deadline: Duration::from_secs(5),
                    })
                    .with_retry_budget(RetryBudgetConfig::tokens(2)),
                None,
            ))
        })
        .collect();
    let barrier = Arc::new(Barrier::new(STORM_PHONES));
    let storm_ok = Arc::new(AtomicU64::new(0));
    let storm_started = Instant::now();
    let threads: Vec<_> = storm_phones
        .iter()
        .map(|ep| {
            let ep = Arc::clone(ep);
            let barrier = Arc::clone(&barrier);
            let storm_ok = Arc::clone(&storm_ok);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..storm_calls {
                    match ep.invoke(INTERFACE, "work", &[Value::I64(SERVICE_MS as i64)]) {
                        Ok(_) => {
                            storm_ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => assert!(
                            matches!(e, RosgiError::Call(ServiceCallError::Busy { .. })),
                            "storm failures must be clean Busy fast-fails, got {e}"
                        ),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("storm thread");
    }
    let storm_elapsed = storm_started.elapsed();
    let mut frames_sent = 0u64;
    let mut retries = 0u64;
    let mut exhausted = 0u64;
    for ep in &storm_phones {
        let s = ep.stats();
        frames_sent += s.calls_sent;
        retries += s.retries;
        exhausted += s.retry_budget_exhausted;
    }
    let first_attempts = (STORM_PHONES as u64) * storm_calls;
    let amplification = frames_sent as f64 / first_attempts as f64;
    // Post-storm probe: the device must be responsive, not metastable.
    let probe = storm_phones[0]
        .invoke(INTERFACE, "work", &[Value::I64(SERVICE_MS as i64)])
        .expect("post-storm probe succeeds");
    assert_eq!(probe, Value::I64(SERVICE_MS as i64));
    let storm_ok = storm_ok.load(Ordering::Relaxed);
    for ep in &storm_phones {
        ep.close();
    }
    println!(
        "storm:    {first_attempts} first attempts -> {frames_sent} frames sent \
         ({amplification:.2}x, {retries} retries, {exhausted} budget-exhausted), \
         {storm_ok} succeeded in {:.0}ms\n",
        storm_elapsed.as_secs_f64() * 1e3
    );

    // --- guards -----------------------------------------------------------
    assert!(
        goodput_ratio >= GOODPUT_FLOOR,
        "goodput at 2x load must stay >= {:.0}% of capacity, got {:.1}% \
         ({goodput:.0} vs {capacity:.0} calls/s)",
        GOODPUT_FLOOR * 100.0,
        goodput_ratio * 100.0
    );
    assert_eq!(
        burst_ok, 0,
        "no burst call may complete within its deadline while the workers are plugged"
    );
    assert!(
        qs.shed_expired > 0,
        "the stalled burst must shed expired entries in-queue: {qs:?}"
    );
    assert_eq!(
        wire_shed, qs.shed_expired,
        "every queue shed must be answered on the wire (rosgi.shed_expired)"
    );
    assert_eq!(
        qs.submitted,
        qs.served + qs.shed_expired,
        "queue accounting must close exactly: {qs:?}"
    );
    assert_eq!(
        executed, qs.served,
        "zero expired executions: the service ran exactly the served jobs"
    );
    assert_eq!(
        executed - executed_before_burst,
        WORKERS as u64,
        "only the plugs executed during the burst window — no expired burst call ran"
    );
    assert!(
        amplification <= AMPLIFICATION_CAP,
        "retry budget must cap the storm at <= {AMPLIFICATION_CAP}x first-attempt \
         traffic, got {amplification:.2}x"
    );
    assert!(
        exhausted > 0,
        "the storm must actually exhaust retry budgets (rosgi.retry_budget_exhausted)"
    );
    assert!(
        storm_ok > 0,
        "the storm must still make forward progress, not just fast-fail"
    );
    println!(
        "guards: goodput >= {:.0}% of capacity, shed_expired > 0 with exact accounting \
         and zero expired executions, storm amplification <= {AMPLIFICATION_CAP}x with \
         budget exhaustion observed, post-storm probe ok — all hold",
        GOODPUT_FLOOR * 100.0
    );

    let doc = Json::obj(vec![
        ("benchmark", Json::str("overload_bench")),
        ("quick", Json::Bool(quick)),
        (
            "goodput",
            Json::obj(vec![
                ("workers", Json::I64(WORKERS as i64)),
                ("service_ms", Json::I64(SERVICE_MS as i64)),
                ("capacity_per_sec", Json::F64(capacity)),
                ("goodput_per_sec", Json::F64(goodput)),
                ("goodput_over_capacity", Json::F64(goodput_ratio)),
                ("floor", Json::F64(GOODPUT_FLOOR)),
            ]),
        ),
        (
            "shed",
            Json::obj(vec![
                ("burst_calls", Json::I64(burst_calls as i64)),
                ("shed_expired", Json::I64(qs.shed_expired as i64)),
                ("shed_predicted", Json::I64(qs.shed_predicted as i64)),
                ("submitted", Json::I64(qs.submitted as i64)),
                ("served", Json::I64(qs.served as i64)),
                ("executed", Json::I64(executed as i64)),
                ("expired_executions", Json::I64(0)),
            ]),
        ),
        (
            "storm",
            Json::obj(vec![
                ("phones", Json::I64(STORM_PHONES as i64)),
                ("calls_per_phone", Json::I64(storm_calls as i64)),
                ("first_attempts", Json::I64(first_attempts as i64)),
                ("frames_sent", Json::I64(frames_sent as i64)),
                ("amplification", Json::F64(amplification)),
                ("amplification_cap", Json::F64(AMPLIFICATION_CAP)),
                ("retries", Json::I64(retries as i64)),
                ("retry_budget_exhausted", Json::I64(exhausted as i64)),
                ("succeeded", Json::I64(storm_ok as i64)),
                ("elapsed_ms", Json::F64(storm_elapsed.as_secs_f64() * 1e3)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_overload.json", doc.to_json_string() + "\n")
        .expect("write BENCH_overload.json");
    println!("wrote BENCH_overload.json");
}
