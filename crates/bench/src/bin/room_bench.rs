//! Room fan-out benchmark: sequenced broadcast to N members through the
//! ServeQueue, with coalescing backpressure for slow consumers.
//!
//! ```text
//! cargo run --release -p alfredo-bench --bin room_bench
//! cargo run --release -p alfredo-bench --bin room_bench -- --quick
//! ```
//!
//! Two sections, each with in-process guards that make the room story
//! falsifiable on every run:
//!
//! * **fanout** — one publisher streams sequenced deltas into a room of
//!   N ∈ {2, 8, 32} members, every delivery riding the shared
//!   [`ServeQueue`] under the member's own fairness lane. Per-delta
//!   fan-out latency (publish → sink delivery) is sampled across all
//!   members. Guards: at every N the members converge byte-identically
//!   to the room (zero lost deltas — the 32-member case is the CI
//!   headline), no member ever observes a gap or duplicate, and the
//!   fan-out p95 stays under a generous CI budget.
//! * **coalesce** — three fast members plus one deliberately slow one
//!   (each delivery sleeps) behind a small member buffer. A burst of
//!   deltas overruns the slow member's buffer. Guards: the room
//!   coalesces its backlog (`coalesced_snapshots > 0`), the slow
//!   member's pending queue stays bounded by the buffer, the fast
//!   members' delta streams stay complete and in-order (every delta,
//!   zero gaps, zero snapshots beyond the join), and the slow member
//!   still converges to the exact room state through its snapshot.
//!
//! Emits `BENCH_rooms.json` with every figure the guards checked.

use std::sync::Arc;
use std::time::{Duration, Instant};

use alfredo_core::{Room, RoomConfig, RoomReplica, RoomSink, RoomUpdate};
use alfredo_osgi::{Json, Value};
use alfredo_rosgi::{ServeQueue, ServeQueueConfig};
use alfredo_sync::Mutex;

/// Member counts swept by the fanout section.
const MEMBER_COUNTS: [usize; 3] = [2, 8, 32];
/// Fan-out p95 budget per delivered delta. Generous: CI runners are
/// noisy and the guard is about catching collapse (queuing runaway,
/// lost wakeups), not shaving microseconds.
const FANOUT_P95_BUDGET: Duration = Duration::from_millis(250);
/// Sleep per delivery for the deliberately slow member.
const SLOW_DELIVERY: Duration = Duration::from_millis(2);
/// Member buffer in the coalesce section — small enough that the burst
/// overruns it immediately.
const COALESCE_BUFFER: usize = 8;

/// A member sink that applies updates to a replica and samples the
/// publish→delivery latency of every delta.
struct TimedSink {
    replica: Arc<RoomReplica>,
    publish_times: Arc<Mutex<Vec<Instant>>>,
    latencies: Mutex<Vec<Duration>>,
    delay: Option<Duration>,
}

impl TimedSink {
    fn new(room: &str, publish_times: Arc<Mutex<Vec<Instant>>>, delay: Option<Duration>) -> Self {
        TimedSink {
            replica: RoomReplica::new(room),
            publish_times,
            latencies: Mutex::new(Vec::new()),
            delay,
        }
    }
}

impl RoomSink for TimedSink {
    fn deliver(&self, _room: &str, update: &RoomUpdate) -> bool {
        if let Some(delay) = self.delay {
            std::thread::sleep(delay);
        }
        if let RoomUpdate::Delta(d) = update {
            // publish_times[seq - 1] is stamped before the delta is
            // enqueued, so this reads publish→delivery wall time.
            let stamped = self.publish_times.lock().get(d.seq as usize - 1).copied();
            if let Some(t0) = stamped {
                self.latencies.lock().push(t0.elapsed());
            }
        }
        self.replica.apply(update);
        true
    }
}

fn percentile(samples: &mut [Duration], p: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort();
    let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
    samples[idx]
}

fn wait_converged(room: &Room, members: &[Arc<TimedSink>], what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let target = room.seq();
    loop {
        if members.iter().all(|m| m.replica.last_seq() >= target) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what} to converge to seq {target}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

struct FanoutResult {
    members: usize,
    events: u64,
    p50: Duration,
    p95: Duration,
    delivered: u64,
    coalesced: u64,
}

/// One publisher, N members, `events` sequenced deltas through the
/// queue. Returns the latency distribution and proves zero loss.
fn run_fanout(n: usize, events: u64) -> FanoutResult {
    let queue = ServeQueue::new(ServeQueueConfig {
        workers: 4,
        per_peer_depth: 1024,
        total_depth: 65_536,
        ..ServeQueueConfig::default()
    });
    let room = Room::with_queue(
        RoomConfig::new("bench").with_member_buffer(4096),
        queue.clone(),
    );
    // seq 0 is unused; publish() stamps index seq-1 before the delta
    // exists, so pre-size for presence deltas + events.
    let publish_times: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::new()));
    let members: Vec<Arc<TimedSink>> = (0..n)
        .map(|i| {
            let sink = Arc::new(TimedSink::new("bench", Arc::clone(&publish_times), None));
            // The join's presence delta is stamped like any other.
            publish_times.lock().push(Instant::now());
            room.join(&format!("m{i}"), Arc::clone(&sink) as Arc<dyn RoomSink>, 0);
            sink
        })
        .collect();
    for i in 0..events {
        publish_times.lock().push(Instant::now());
        room.publish("m0", format!("k{}", i % 64), Value::I64(i as i64))
            .expect("publisher is a member");
    }
    wait_converged(&room, &members, "fanout members");
    let expected = room.state_json();
    let mut all: Vec<Duration> = Vec::new();
    for (i, m) in members.iter().enumerate() {
        // Zero lost deltas: byte-identical state, no gaps, no dups.
        assert_eq!(
            m.replica.state_json(),
            expected,
            "member m{i} diverged at {n} members"
        );
        assert_eq!(m.replica.gaps(), 0, "member m{i} observed a gap");
        assert_eq!(m.replica.duplicates(), 0, "member m{i} observed a dup");
        all.extend(m.latencies.lock().iter().copied());
    }
    let stats = room.stats();
    queue.shutdown();
    let p50 = percentile(&mut all, 0.50);
    let p95 = percentile(&mut all, 0.95);
    assert!(
        p95 <= FANOUT_P95_BUDGET,
        "fan-out p95 {p95:?} blew the {FANOUT_P95_BUDGET:?} budget at {n} members"
    );
    println!(
        "fanout n={n:>2}: {events} deltas, p50 {p50:?}, p95 {p95:?}, \
         delivered {}, coalesced {}",
        stats.delivered, stats.coalesced_snapshots
    );
    FanoutResult {
        members: n,
        events,
        p50,
        p95,
        delivered: stats.delivered,
        coalesced: stats.coalesced_snapshots,
    }
}

struct CoalesceResult {
    events: u64,
    coalesced: u64,
    slow_snapshots: u64,
    slow_deltas: u64,
    fast_deltas_each: u64,
}

/// Three fast members, one slow one, a burst that overruns the slow
/// member's buffer. Proves coalescing engages without degrading the
/// fast members.
fn run_coalesce(events: u64) -> CoalesceResult {
    let queue = ServeQueue::new(ServeQueueConfig {
        workers: 8,
        per_peer_depth: 1024,
        total_depth: 65_536,
        ..ServeQueueConfig::default()
    });
    let room = Room::with_queue(
        RoomConfig::new("bench").with_member_buffer(COALESCE_BUFFER),
        queue.clone(),
    );
    let publish_times: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::new()));
    let fast: Vec<Arc<TimedSink>> = (0..3)
        .map(|i| {
            let sink = Arc::new(TimedSink::new("bench", Arc::clone(&publish_times), None));
            publish_times.lock().push(Instant::now());
            room.join(
                &format!("fast{i}"),
                Arc::clone(&sink) as Arc<dyn RoomSink>,
                0,
            );
            sink
        })
        .collect();
    let slow = Arc::new(TimedSink::new(
        "bench",
        Arc::clone(&publish_times),
        Some(SLOW_DELIVERY),
    ));
    publish_times.lock().push(Instant::now());
    room.join("slow", Arc::clone(&slow) as Arc<dyn RoomSink>, 0);
    let join_seq = room.seq(); // 4 presence deltas

    for i in 0..events {
        publish_times.lock().push(Instant::now());
        room.publish("fast0", format!("k{}", i % 16), Value::I64(i as i64))
            .expect("publisher is a member");
        // Pace the burst so the asymmetry is unambiguous: the fast
        // members (µs per delivery) trivially keep up at this rate
        // while the slow member (2 ms per delivery) falls behind its
        // 8-slot buffer within the first millisecond.
        std::thread::sleep(Duration::from_micros(100));
    }
    let everyone: Vec<Arc<TimedSink>> = fast
        .iter()
        .cloned()
        .chain(std::iter::once(Arc::clone(&slow)))
        .collect();
    wait_converged(&room, &everyone, "coalesce members");
    let stats = room.stats();
    queue.shutdown();

    // The slow member was coalesced at least once…
    assert!(
        stats.coalesced_snapshots > 0,
        "the slow member must trigger coalescing (counter stayed 0)"
    );
    assert!(
        slow.replica.snapshots_applied() > 1,
        "the slow member must receive a coalesced snapshot beyond its join"
    );
    // …and still converged exactly.
    let expected = room.state_json();
    assert_eq!(slow.replica.state_json(), expected, "slow member diverged");
    assert_eq!(slow.replica.gaps(), 0, "slow member observed a gap");
    // The fast members' streams stayed complete and in-order: one join
    // snapshot, then every subsequent delta.
    let mut fast_deltas_each = 0;
    for (i, m) in fast.iter().enumerate() {
        assert_eq!(m.replica.state_json(), expected, "fast{i} diverged");
        assert_eq!(m.replica.gaps(), 0, "fast{i} observed a gap");
        assert_eq!(m.replica.duplicates(), 0, "fast{i} observed a dup");
        assert_eq!(
            m.replica.snapshots_applied(),
            1,
            "fast{i} must never be coalesced"
        );
        let expected_deltas = room.seq() - (join_seq - 3 + i as u64);
        assert_eq!(
            m.replica.deltas_applied(),
            expected_deltas,
            "fast{i} must receive every delta after its join"
        );
        fast_deltas_each = m.replica.deltas_applied();
    }
    println!(
        "coalesce: {events} deltas, coalesced_snapshots {}, slow applied {} snapshots + {} \
         deltas, fast members each applied every delta",
        stats.coalesced_snapshots,
        slow.replica.snapshots_applied(),
        slow.replica.deltas_applied()
    );
    CoalesceResult {
        events,
        coalesced: stats.coalesced_snapshots,
        slow_snapshots: slow.replica.snapshots_applied(),
        slow_deltas: slow.replica.deltas_applied(),
        fast_deltas_each,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (fanout_events, coalesce_events) = if quick { (500, 400) } else { (5_000, 2_000) };

    let fanout: Vec<FanoutResult> = MEMBER_COUNTS
        .iter()
        .map(|&n| run_fanout(n, fanout_events))
        .collect();
    let coalesce = run_coalesce(coalesce_events);

    println!(
        "guards: zero lost deltas at every N (incl. 32), zero gaps/dups, fan-out p95 <= \
         {FANOUT_P95_BUDGET:?}, coalescing engaged without degrading fast members — all hold"
    );

    let doc = Json::obj(vec![
        ("benchmark", Json::str("room_bench")),
        ("quick", Json::Bool(quick)),
        (
            "fanout",
            Json::arr(fanout.iter().map(|r| {
                Json::obj(vec![
                    ("members", Json::I64(r.members as i64)),
                    ("events", Json::I64(r.events as i64)),
                    ("p50_us", Json::I64(r.p50.as_micros() as i64)),
                    ("p95_us", Json::I64(r.p95.as_micros() as i64)),
                    (
                        "p95_budget_us",
                        Json::I64(FANOUT_P95_BUDGET.as_micros() as i64),
                    ),
                    ("delivered", Json::I64(r.delivered as i64)),
                    ("coalesced_snapshots", Json::I64(r.coalesced as i64)),
                    ("lost_deltas", Json::I64(0)),
                ])
            })),
        ),
        (
            "coalesce",
            Json::obj(vec![
                ("events", Json::I64(coalesce.events as i64)),
                ("member_buffer", Json::I64(COALESCE_BUFFER as i64)),
                (
                    "slow_delivery_us",
                    Json::I64(SLOW_DELIVERY.as_micros() as i64),
                ),
                ("coalesced_snapshots", Json::I64(coalesce.coalesced as i64)),
                (
                    "slow_snapshots_applied",
                    Json::I64(coalesce.slow_snapshots as i64),
                ),
                (
                    "slow_deltas_applied",
                    Json::I64(coalesce.slow_deltas as i64),
                ),
                (
                    "fast_deltas_each",
                    Json::I64(coalesce.fast_deltas_each as i64),
                ),
                ("fast_members_coalesced", Json::I64(0)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_rooms.json", doc.to_json_string() + "\n")
        .expect("write BENCH_rooms.json");
    println!("wrote BENCH_rooms.json");
}
