//! Durability-cost benchmark for the session journal: what does crash
//! recovery cost on the hot path, and how fast does a device come back?
//!
//! ```text
//! cargo run --release -p alfredo-bench --bin journal_bench
//! cargo run --release -p alfredo-bench --bin journal_bench -- --quick
//! ```
//!
//! Three sections, each with in-process guards that make the journal's
//! claims falsifiable on every run:
//!
//! * **append** — the headline throughput guard. One writer appends
//!   representative session records twice over the identical enqueue
//!   path: once with fsync disabled (the fast path — pure group-commit
//!   enqueue) and once with batched fsync (journaling-enabled, the
//!   production configuration). Because appenders hand durability to the
//!   committer thread and never wait on it, enabling fsync must not slow
//!   writers: journaling-enabled throughput must stay >= 95% of the fast
//!   path. Trials are interleaved and the best of each is compared so
//!   scheduler noise cancels instead of accumulating.
//! * **invoke** — end-to-end cost on the invocation path: a phone
//!   driving `session.invoke` against a live device, bare versus fully
//!   journaled (phone session journal + device lease journal, batched
//!   fsync). Two guards: the *fast-path* guard bounds the extra CPU the
//!   invoking thread itself pays per call (the enqueue cost — everything
//!   else is the committer's problem), and a throughput ratio guard
//!   bounds total overhead. The ratio threshold adapts to the machine:
//!   on a multi-core box the committer drains on another core and the
//!   journaled path must hold 95% of bare; on a single core the
//!   committer's own batching work shares the one core with the
//!   benchmark loop, so the bound relaxes to 75%.
//! * **recovery** — a 10k-event journal is replayed cold through
//!   [`DeviceJournal::open`] + store registration. Guard: recovery
//!   completes inside a wall-clock budget.
//!
//! Emits `BENCH_journal.json` with every figure the guards checked.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use alfredo_core::{
    host_service, serve_device, serve_device_durable, AlfredOEngine, DeviceJournal,
    DeviceJournalConfig, EngineConfig, ServiceDescriptor,
};
use alfredo_journal::{Journal, JournalConfig, JournalStats};
use alfredo_net::{InMemoryNetwork, PeerAddr};
use alfredo_obs::Obs;
use alfredo_osgi::{
    FnService, Framework, Json, MethodSpec, ParamSpec, Properties, ServiceInterfaceDesc, TypeHint,
    Value,
};
use alfredo_rosgi::DiscoveryDirectory;
use alfredo_ui::{Control, DeviceCapabilities, UiDescription};

const STORE: &str = "bench";
const ECHO_INTERFACE: &str = "bench.JournalEcho";
const KEYS: u64 = 512;
const RECOVERY_EVENTS: u64 = 10_000;
const RECOVERY_BUDGET: Duration = Duration::from_secs(2);
/// Per-invoke CPU the *invoking thread* may spend on journaling — the
/// enqueue is a few hundred nanoseconds; anything near a microsecond
/// means an fsync or allocation leaked back onto the fast path.
const FAST_PATH_CPU_BUDGET_NS: f64 = 1_000.0;

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "alfredo-journal-bench-{}-{label}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// CPU time consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID),
/// in nanoseconds. Thread CPU isolates the invoker's own fast-path cost
/// from committer-thread work and from other processes on the box.
fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clk: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec { sec: 0, nsec: 0 };
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
    ts.sec as u64 * 1_000_000_000 + ts.nsec as u64
}

/// One writer appending `events` representative session records through
/// the group-commit enqueue path, then a barrier (outside the timed
/// region: the barrier is flush *latency*, not writer throughput).
/// Returns the append rate and the committer's accounting.
fn append_run(durable: bool, events: u64) -> (f64, JournalStats) {
    let dir = scratch_dir("append");
    let mut cfg = JournalConfig::new(&dir);
    if !durable {
        cfg = cfg.without_fsync();
    }
    let journal = Journal::open(cfg).expect("open append journal");
    let started = Instant::now();
    for i in 0..events {
        journal.append_with("session", "ui_event", |out| {
            use std::fmt::Write as _;
            let _ = write!(
                out,
                "{{\"control\":\"slider\",\"kind\":\"slider\",\"value\":{},\"outcomes\":[\"invoked\"]}}",
                i % 100
            );
        });
    }
    let rate = events as f64 / started.elapsed().as_secs_f64();
    journal.barrier().expect("append barrier");
    let stats = journal.stats();
    journal.close().expect("close append journal");
    std::fs::remove_dir_all(&dir).ok();
    (rate, stats)
}

/// A phone driving `invokes` echo calls through a live session, bare or
/// fully journaled (phone session journal + device lease journal, batch
/// fsync). Returns (wall ns/op, invoking-thread CPU ns/op) for the
/// invoke loop; durability barriers run after the timed region.
fn invoke_run(journaled: bool, invokes: u64) -> (f64, f64) {
    let net = InMemoryNetwork::new();
    let fw = Framework::new();
    let dir = scratch_dir("invoke");
    let ui = UiDescription::new("JournalBench").with_control(Control::button("go", "Go"));
    host_service(
        &fw,
        ECHO_INTERFACE,
        Arc::new(
            FnService::new(|_, args| Ok(args.first().cloned().unwrap_or(Value::Unit)))
                .with_description(ServiceInterfaceDesc::new(
                    ECHO_INTERFACE,
                    vec![MethodSpec::new(
                        "echo",
                        vec![ParamSpec::new("v", TypeHint::I64)],
                        TypeHint::I64,
                        "echo",
                    )],
                )),
        ),
        &ServiceDescriptor::new(ECHO_INTERFACE, ui),
        None,
        Properties::new(),
    )
    .expect("host echo service");

    let mut device_journal = None;
    let device = if journaled {
        let dj = DeviceJournal::open(DeviceJournalConfig::new(dir.join("device")))
            .expect("open device journal");
        let d = serve_device_durable(
            &net,
            fw,
            PeerAddr::new("bench-dev"),
            Obs::disabled(),
            None,
            dj.lease_journal().clone(),
        )
        .expect("serve journaled device");
        device_journal = Some(dj);
        d
    } else {
        serve_device(&net, fw, PeerAddr::new("bench-dev")).expect("serve bare device")
    };

    let mut cfg = EngineConfig::phone("bench-phone", DeviceCapabilities::nokia_9300i());
    if journaled {
        cfg = cfg.with_journal(JournalConfig::new(dir.join("phone")));
    }
    let engine = AlfredOEngine::new(
        Framework::new(),
        net.clone(),
        DiscoveryDirectory::new(),
        cfg,
    );
    let conn = engine
        .connect(&PeerAddr::new("bench-dev"))
        .expect("connect");
    let session = conn.acquire(ECHO_INTERFACE).expect("acquire echo session");

    let started = Instant::now();
    let cpu_before = thread_cpu_ns();
    for i in 0..invokes {
        let v = session
            .invoke(ECHO_INTERFACE, "echo", &[Value::I64(i as i64)])
            .expect("echo invoke");
        assert_eq!(v, Value::I64(i as i64));
    }
    let cpu = (thread_cpu_ns() - cpu_before) as f64 / invokes as f64;
    let wall = started.elapsed().as_nanos() as f64 / invokes as f64;

    if let Some(j) = engine.journal() {
        j.barrier().expect("session journal barrier");
    }
    if let Some(dj) = &device_journal {
        dj.barrier().expect("device journal barrier");
    }
    session.close();
    conn.close();
    device.stop();
    drop(device_journal);
    std::fs::remove_dir_all(&dir).ok();
    (wall, cpu)
}

/// Writes a 10k-event journal, drops every handle, then times a cold
/// [`DeviceJournal::open`] + store registration replaying all of it.
fn bench_recovery(events: u64) -> (Duration, u64) {
    let dir = scratch_dir("recovery");
    {
        let fw = Framework::new();
        let dj = DeviceJournal::open(DeviceJournalConfig::new(&dir).with_snapshot_every(0))
            .expect("open recording journal");
        let (store, _reg) = dj.register_store(&fw, STORE).expect("register store");
        for i in 0..events {
            store.put(format!("k{}", i % KEYS), Value::I64(i as i64));
        }
        dj.barrier().expect("recording barrier");
        dj.close().expect("close recording journal");
    }

    let fw = Framework::new();
    let started = Instant::now();
    let dj = DeviceJournal::open(DeviceJournalConfig::new(&dir).with_snapshot_every(0))
        .expect("open recovering journal");
    let (store, _reg) = dj.register_store(&fw, STORE).expect("re-register store");
    let elapsed = started.elapsed();

    let replayed = dj.recovery().data_records;
    assert_eq!(replayed, events, "recovery must replay every record");
    assert_eq!(store.version(), events);
    assert_eq!(store.len() as u64, KEYS);
    dj.close().expect("close recovering journal");
    std::fs::remove_dir_all(&dir).ok();
    (elapsed, replayed)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (append_events, invokes, trials) = if quick {
        (50_000u64, 4_000u64, 3usize)
    } else {
        (150_000, 10_000, 5)
    };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    // On one core the committer's batching work shares the core with the
    // benchmark loop itself, so total throughput dips even though the
    // invoking thread's fast path is untouched (the CPU guard holds it
    // to a few hundred ns). With a second core the drain is free.
    let invoke_ratio_floor = if cores > 1 { 0.95 } else { 0.75 };

    println!("journal_bench — durability cost and recovery speed");
    println!(
        "({append_events} appends and {invokes} invokes per trial, best-of-{trials} \
         interleaved, {RECOVERY_EVENTS} recovery events, {cores} core(s))\n"
    );

    // --- append: journaling-enabled vs fast path --------------------------
    // Interleave trials and keep the best of each mode: transient noise
    // only ever makes a trial slower, so the max converges on true cost.
    let mut fast_path = 0.0f64;
    let mut durable = 0.0f64;
    let mut durable_stats = None;
    for _ in 0..trials {
        let (rate, _) = append_run(false, append_events);
        fast_path = fast_path.max(rate);
        let (rate, stats) = append_run(true, append_events);
        if rate > durable {
            durable = rate;
            durable_stats = Some(stats);
        }
    }
    let durable_stats = durable_stats.expect("at least one durable trial");
    let append_ratio = durable / fast_path;
    let appends_per_fsync = durable_stats.appends as f64 / durable_stats.fsyncs.max(1) as f64;
    println!(
        "append: fast path {fast_path:>10.0}/s   journaled {durable:>10.0}/s   \
         ratio {append_ratio:.3}"
    );
    println!(
        "        {} batches, {} fsyncs ({appends_per_fsync:.0} appends/fsync), \
         max batch {}, {} pool misses",
        durable_stats.batches,
        durable_stats.fsyncs,
        durable_stats.max_batch,
        durable_stats.pool_misses
    );

    // --- invoke: bare vs journaled session --------------------------------
    let (mut bare_wall, mut bare_cpu) = (f64::MAX, f64::MAX);
    let (mut j_wall, mut j_cpu) = (f64::MAX, f64::MAX);
    for _ in 0..trials {
        let (wall, cpu) = invoke_run(false, invokes);
        bare_wall = bare_wall.min(wall);
        bare_cpu = bare_cpu.min(cpu);
        let (wall, cpu) = invoke_run(true, invokes);
        j_wall = j_wall.min(wall);
        j_cpu = j_cpu.min(cpu);
    }
    let invoke_ratio = bare_wall / j_wall;
    let fast_path_overhead_ns = (j_cpu - bare_cpu).max(0.0);
    println!(
        "invoke: bare {:>8.0}/s   journaled {:>8.0}/s   ratio {invoke_ratio:.3}   \
         fast-path overhead {fast_path_overhead_ns:.0}ns cpu/invoke",
        1e9 / bare_wall,
        1e9 / j_wall,
    );

    // --- cold recovery -----------------------------------------------------
    let (recovery_elapsed, replayed) = bench_recovery(RECOVERY_EVENTS);
    println!(
        "recovery: {replayed} events replayed in {:.1}ms (budget {}ms)\n",
        recovery_elapsed.as_secs_f64() * 1e3,
        RECOVERY_BUDGET.as_millis()
    );

    // --- guards -----------------------------------------------------------
    assert!(
        append_ratio >= 0.95,
        "journaling-enabled append throughput must stay within 5% of the fast \
         path, got {append_ratio:.3} ({durable:.0} vs {fast_path:.0} records/s)"
    );
    assert!(
        appends_per_fsync >= 2.0,
        "group commit must batch multiple appends per fsync, got {appends_per_fsync:.2}"
    );
    assert!(
        fast_path_overhead_ns <= FAST_PATH_CPU_BUDGET_NS,
        "journaling must cost the invoking thread <= {FAST_PATH_CPU_BUDGET_NS:.0}ns \
         of CPU per invoke, got {fast_path_overhead_ns:.0}ns"
    );
    assert!(
        invoke_ratio >= invoke_ratio_floor,
        "journaled invoke throughput must stay >= {invoke_ratio_floor:.2} of bare \
         on a {cores}-core box, got {invoke_ratio:.3}"
    );
    assert!(
        recovery_elapsed <= RECOVERY_BUDGET,
        "recovering a {RECOVERY_EVENTS}-event journal must finish within {}ms, took {}ms",
        RECOVERY_BUDGET.as_millis(),
        recovery_elapsed.as_millis()
    );
    println!(
        "guards: journaled appends >=95% of fast path, >=2 appends/fsync, \
         fast-path CPU <= {FAST_PATH_CPU_BUDGET_NS:.0}ns/invoke, invoke ratio >= \
         {invoke_ratio_floor:.2}, recovery within {}ms — all hold",
        RECOVERY_BUDGET.as_millis()
    );

    let doc = Json::obj(vec![
        ("benchmark", Json::str("journal_bench")),
        ("quick", Json::Bool(quick)),
        ("cores", Json::I64(cores as i64)),
        (
            "append",
            Json::obj(vec![
                ("events_per_trial", Json::I64(append_events as i64)),
                ("trials", Json::I64(trials as i64)),
                ("fast_path_per_sec", Json::F64(fast_path)),
                ("journaled_per_sec", Json::F64(durable)),
                ("journaled_over_fast_path", Json::F64(append_ratio)),
                ("batches", Json::I64(durable_stats.batches as i64)),
                ("fsyncs", Json::I64(durable_stats.fsyncs as i64)),
                ("appends_per_fsync", Json::F64(appends_per_fsync)),
                ("max_batch", Json::I64(durable_stats.max_batch as i64)),
                ("pool_misses", Json::I64(durable_stats.pool_misses as i64)),
                (
                    "bytes_written",
                    Json::I64(durable_stats.bytes_written as i64),
                ),
            ]),
        ),
        (
            "invoke",
            Json::obj(vec![
                ("invokes_per_trial", Json::I64(invokes as i64)),
                ("trials", Json::I64(trials as i64)),
                ("bare_ns_per_invoke", Json::F64(bare_wall)),
                ("journaled_ns_per_invoke", Json::F64(j_wall)),
                ("journaled_over_bare", Json::F64(invoke_ratio)),
                ("ratio_floor", Json::F64(invoke_ratio_floor)),
                (
                    "fast_path_cpu_overhead_ns",
                    Json::F64(fast_path_overhead_ns),
                ),
            ]),
        ),
        (
            "recovery",
            Json::obj(vec![
                ("events", Json::I64(RECOVERY_EVENTS as i64)),
                (
                    "elapsed_ms",
                    Json::F64(recovery_elapsed.as_secs_f64() * 1e3),
                ),
                ("budget_ms", Json::I64(RECOVERY_BUDGET.as_millis() as i64)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_journal.json", doc.to_json_string() + "\n")
        .expect("write BENCH_journal.json");
    println!("wrote BENCH_journal.json");
}
