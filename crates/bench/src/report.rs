//! Plain-text rendering of experiment results: tables in the paper's row
//! format, and series as ASCII plots so figures are inspectable straight
//! from the terminal.

use std::fmt::Write as _;

/// A labelled table (Tables 1 and 2 of the paper).
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table heading.
    pub title: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    /// Rows: label + one value per column.
    pub rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Creates a table with headers.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, label: impl Into<String>, values: Vec<String>) {
        self.rows.push((label.into(), values));
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths = vec![self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0)];
        widths[0] = widths[0].max(4);
        for (i, col) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .filter_map(|(_, vals)| vals.get(i).map(String::len))
                .max()
                .unwrap_or(0)
                .max(col.len());
            widths.push(w);
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = write!(out, "{:<w$}", "", w = widths[0] + 2);
        for (i, col) in self.columns.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", col, w = widths[i + 1]);
        }
        let _ = writeln!(out);
        for (label, vals) in &self.rows {
            let _ = write!(out, "{:<w$}  ", label, w = widths[0]);
            for (i, v) in vals.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", v, w = widths[i + 1]);
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// A measured series (the figures): x values with y means.
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Series heading.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// The points.
    pub points: Vec<(f64, f64)>,
    /// An optional horizontal baseline (Figure 5/6's ping line).
    pub baseline: Option<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Series {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            points: Vec::new(),
            baseline: None,
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Sets the baseline.
    pub fn with_baseline(mut self, label: impl Into<String>, y: f64) -> Self {
        self.baseline = Some((label.into(), y));
        self
    }

    /// Renders the series as a value table plus an ASCII bar plot.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = writeln!(out, "{:>12}  {:>12}", self.x_label, self.y_label);
        let max_y = self
            .points
            .iter()
            .map(|(_, y)| *y)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(self.baseline.as_ref().map(|(_, y)| *y).unwrap_or(0.0));
        let scale = if max_y > 0.0 { 48.0 / max_y } else { 0.0 };
        for (x, y) in &self.points {
            let bar = "#".repeat(((y * scale).round() as usize).min(60));
            let _ = writeln!(out, "{x:>12.0}  {y:>12.3}  {bar}");
        }
        if let Some((label, y)) = &self.baseline {
            let marks = ".".repeat(((y * scale).round() as usize).min(60));
            let _ = writeln!(out, "{label:>12}  {y:>12.3}  {marks}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_rows() {
        let mut t = Table::new(
            "Initial delay (ms)",
            vec!["MouseController".into(), "AlfredOShop".into()],
        );
        t.row("Acquire service interface", vec!["94".into(), "110".into()]);
        t.row("Total start time", vec!["4922".into(), "4282".into()]);
        let text = t.render();
        assert!(text.contains("Initial delay"));
        assert!(text.contains("Acquire service interface"));
        assert!(text.contains("4922"));
        // Header line contains both column names.
        assert!(text.lines().nth(1).unwrap().contains("AlfredOShop"));
    }

    #[test]
    fn series_renders_points_and_baseline() {
        let mut s = Series::new("Invocation time", "services", "ms").with_baseline("ping", 30.0);
        s.push(5.0, 95.0);
        s.push(40.0, 102.0);
        let text = s.render();
        assert!(text.contains("95.000"));
        assert!(text.contains("ping"));
        assert!(text.contains('#'));
        assert!(text.contains('.'));
    }

    #[test]
    fn empty_series_renders() {
        let s = Series::new("empty", "x", "y");
        assert!(s.render().contains("empty"));
    }
}
