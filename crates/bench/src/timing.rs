//! Minimal wall-clock micro-benchmark helper used by the `benches/`
//! targets and the `invoke_bench` binary.
//!
//! Each measurement runs the closure in batches, records per-batch
//! elapsed time, and reports robust order statistics. This is a small,
//! dependency-free stand-in for a full benchmark harness: good enough
//! to catch order-of-magnitude regressions and to feed the numbers in
//! `EXPERIMENTS.md`, not a substitute for rigorous statistics.

use std::hint::black_box;
use std::time::Instant;

/// One measured distribution of per-operation latencies.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Human-readable benchmark name.
    pub name: String,
    /// Total operations timed (excluding warmup).
    pub ops: u64,
    /// Per-op latencies in nanoseconds, sorted ascending.
    pub samples_ns: Vec<f64>,
    /// Total wall-clock seconds spent in the measured region.
    pub elapsed_secs: f64,
}

impl Measurement {
    /// The `p`-th percentile (0..=100) of per-op latency in nanoseconds.
    pub fn percentile_ns(&self, p: f64) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let rank = (p / 100.0 * (self.samples_ns.len() - 1) as f64).round() as usize;
        self.samples_ns[rank.min(self.samples_ns.len() - 1)]
    }

    /// Median per-op latency in nanoseconds.
    pub fn p50_ns(&self) -> f64 {
        self.percentile_ns(50.0)
    }

    /// Tail per-op latency in nanoseconds.
    pub fn p95_ns(&self) -> f64 {
        self.percentile_ns(95.0)
    }

    /// Mean throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            return 0.0;
        }
        self.ops as f64 / self.elapsed_secs
    }

    /// Print one aligned summary line.
    pub fn report(&self) {
        println!(
            "{:<36} {:>12.0} ops/s   p50 {:>10}   p95 {:>10}   ({} ops)",
            self.name,
            self.ops_per_sec(),
            fmt_ns(self.p50_ns()),
            fmt_ns(self.p95_ns()),
            self.ops
        );
    }
}

/// Format a nanosecond figure with a sensible unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

/// Time `op` for roughly `target_ms` milliseconds after a short warmup,
/// amortising the clock reads over `batch` calls per sample.
pub fn bench_batched<T>(
    name: &str,
    batch: u64,
    target_ms: u64,
    mut op: impl FnMut() -> T,
) -> Measurement {
    // Warmup: run for ~10% of the target so caches and pools settle.
    let warm = Instant::now();
    while warm.elapsed().as_millis() < (target_ms as u128 / 10).max(1) {
        for _ in 0..batch {
            black_box(op());
        }
    }
    let mut samples_ns = Vec::new();
    let mut ops = 0u64;
    let start = Instant::now();
    while start.elapsed().as_millis() < target_ms as u128 {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(op());
        }
        let per_op = t.elapsed().as_nanos() as f64 / batch as f64;
        samples_ns.push(per_op);
        ops += batch;
    }
    let elapsed_secs = start.elapsed().as_secs_f64();
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Measurement {
        name: name.to_owned(),
        ops,
        samples_ns,
        elapsed_secs,
    }
}

/// Time `op` with one sample per call (for operations slow enough that
/// the clock read is negligible).
pub fn bench<T>(name: &str, target_ms: u64, op: impl FnMut() -> T) -> Measurement {
    bench_batched(name, 1, target_ms, op)
}

/// Build a measurement from externally collected per-op samples.
pub fn from_samples(name: &str, mut samples_ns: Vec<f64>, elapsed_secs: f64) -> Measurement {
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Measurement {
        name: name.to_owned(),
        ops: samples_ns.len() as u64,
        samples_ns,
        elapsed_secs,
    }
}
