//! Calibration constants for the simulated testbed.
//!
//! Every constant is tied either to published hardware specs or to one
//! anchor measurement from the paper; all other numbers are then
//! *predictions* of the model. See `EXPERIMENTS.md` for the full
//! derivation and the paper-vs-measured tables.

use alfredo_net::LinkProfile;
use alfredo_sim::{DeviceProfile, SimDuration};

/// 802.11b as experienced by a 2008 phone: power-save mode inflates
/// per-hop latency to tens of milliseconds (the ICMP ping baseline of
/// Figure 5 sits far above wired ping times), while usable bandwidth is
/// ~4 Mbit/s of the nominal 11.
pub fn phone_wlan() -> LinkProfile {
    LinkProfile::new(
        "802.11b WLAN (phone)",
        SimDuration::from_millis(15),
        4.0e6,
        80,
        0.20,
    )
    .with_setup(SimDuration::from_millis(12))
}

/// Bluetooth 2.0 from the M600i: moderate per-packet latency once a
/// channel exists, but *connection establishment* (inquiry + paging)
/// costs on the order of 100 ms — which is why Table 2's
/// "acquire service interface" is ~3x Table 1's despite similar phases
/// elsewhere.
pub fn phone_bluetooth() -> LinkProfile {
    LinkProfile::new(
        "Bluetooth 2.0 (phone)",
        SimDuration::from_millis(30),
        1.2e6,
        40,
        0.20,
    )
    .with_setup(SimDuration::from_millis(130))
}

/// The desktop experiments' switched 100 Mbit/s Ethernet.
pub fn lan_100() -> LinkProfile {
    LinkProfile::ethernet_100()
}

/// The cluster experiments' switched 1 Gbit/s Ethernet.
pub fn lan_1000() -> LinkProfile {
    LinkProfile::ethernet_1000()
}

/// Cycles the client spends building the proxy bundle from a shipped
/// interface (generate + verify). Anchor: Table 1 reports 3125 ms on the
/// 150 MHz Nokia 9300i ⇒ ~469 M cycles; we round to 465 M. The model then
/// *predicts* the M600i's build time as 465 M / 208 MHz ≈ 2.24 s (paper:
/// 1.88 s — same order, the M600i's JVM is a bit better than clock-scaling
/// suggests).
pub const BUILD_PROXY_CYCLES: u64 = 465_000_000;

/// Cycles to install the built bundle into the local framework.
/// Anchor: 703 ms on the Nokia ⇒ ~105 M cycles.
pub const INSTALL_PROXY_CYCLES: u64 = 105_000_000;

/// Cycles to start the MouseController proxy bundle (registers the proxy,
/// wires the snapshot event handler, allocates the bitmap buffer).
/// Anchor: 1000 ms on the Nokia ⇒ 150 M cycles.
pub const START_MOUSE_CYCLES: u64 = 150_000_000;

/// Cycles to start the AlfredOShop proxy bundle.
/// Anchor: 359 ms on the Nokia ⇒ ~54 M cycles.
pub const START_SHOP_CYCLES: u64 = 54_000_000;

/// Cycles the phone spends parsing the shipped interface + descriptor
/// during the acquire phase (the CPU share of "Acquire service
/// interface").
pub const PARSE_BUNDLE_CYCLES: u64 = 3_000_000;

/// Round trips in the acquire phase beyond raw transfer: the fetch
/// request plus the lease/ack exchange riding on the fresh connection.
pub const ACQUIRE_ROUND_TRIPS: u32 = 2;

/// Phone-side CPU cycles per remote invocation (marshalling, proxy
/// dispatch, JVM-style reflection overhead). Anchor: Figure 5's ~100 ms
/// mean invocation on the Nokia over WLAN, of which ~30 ms is network ⇒
/// ~60-70 ms of phone time ⇒ ~9.5 M cycles at 150 MHz.
pub const PHONE_INVOKE_CYCLES: u64 = 9_500_000;

/// Desktop/cluster client cycles per invocation (marshal + dispatch).
pub const DESKTOP_CLIENT_INVOKE_CYCLES: u64 = 350_000;

/// Server cycles to serve one invocation (decode, registry lookup,
/// method dispatch, encode). Anchor: Figure 4's saturation knee at ~550
/// concurrent clients x 10 inv/s on a 4-core 2.2 GHz Opteron ⇒ capacity
/// ~5700 inv/s ⇒ 4 x 2.2 GHz / 5700 ≈ 1.54 M cycles.
pub const SERVER_INVOKE_CYCLES: u64 = 1_544_000;

/// The devices of the testbed (re-exported for convenience).
pub fn nokia_9300i() -> DeviceProfile {
    DeviceProfile::nokia_9300i()
}

/// See [`nokia_9300i`].
pub fn sony_ericsson_m600i() -> DeviceProfile {
    DeviceProfile::sony_ericsson_m600i()
}

/// See [`nokia_9300i`].
pub fn pentium4_desktop() -> DeviceProfile {
    DeviceProfile::pentium4_desktop()
}

/// See [`nokia_9300i`].
pub fn opteron_node() -> DeviceProfile {
    DeviceProfile::opteron_node()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_time_anchors_to_table1() {
        let nokia = nokia_9300i();
        let build = nokia.cpu().service_time(BUILD_PROXY_CYCLES);
        let ms = build.as_millis_f64();
        assert!(
            (2900.0..3300.0).contains(&ms),
            "build {ms} ms vs paper 3125"
        );
    }

    #[test]
    fn m600i_cpu_phases_are_faster() {
        // Table 2 vs Table 1: the 208 MHz M600i beats the 150 MHz 9300i
        // on every CPU-bound phase by roughly the clock ratio.
        let nokia = nokia_9300i().cpu().service_time(BUILD_PROXY_CYCLES);
        let se = sony_ericsson_m600i().cpu().service_time(BUILD_PROXY_CYCLES);
        let speedup = nokia.as_secs_f64() / se.as_secs_f64();
        assert!((1.3..1.5).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn bluetooth_setup_dominates_small_transfers() {
        let bt = phone_bluetooth();
        let wlan = phone_wlan();
        assert!(bt.connection_setup() > wlan.connection_setup() * 5);
        // A 2 kB acquire is ~3x more expensive over BT (Tables 1 vs 2).
        let wlan_acquire = wlan.connection_setup()
            + wlan.transfer_time(2048)
            + wlan.latency() * 2 * u64::from(ACQUIRE_ROUND_TRIPS);
        let bt_acquire = bt.connection_setup()
            + bt.transfer_time(2048)
            + bt.latency() * 2 * u64::from(ACQUIRE_ROUND_TRIPS);
        let ratio = bt_acquire.as_secs_f64() / wlan_acquire.as_secs_f64();
        assert!((2.0..4.0).contains(&ratio), "BT/WLAN acquire ratio {ratio}");
    }

    #[test]
    fn server_capacity_matches_fig4_knee() {
        // ~550 clients x 10 inv/s saturate a 4-core Opteron.
        let node = opteron_node();
        let per_core = node.cpu().service_time(SERVER_INVOKE_CYCLES).as_secs_f64();
        let capacity = node.cores() as f64 / per_core;
        let knee_clients = capacity / 10.0;
        assert!(
            (450.0..700.0).contains(&knee_clients),
            "knee at {knee_clients} clients"
        );
    }
}
