//! Criterion micro-benchmarks of the protocol substrate: the codec, the
//! LDAP filter engine, and shippable artifact encoding. These are the
//! constant factors behind every experiment in the paper's §4.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use alfredo_apps::{MouseControllerService, ShopService};
use alfredo_osgi::{BundleArtifact, Filter, Manifest, Properties, Value};
use alfredo_rosgi::codec::{value_from_bytes, value_to_bytes};
use alfredo_rosgi::Message;

fn sample_value() -> Value {
    Value::structure(
        "shop.Product",
        [
            ("name", Value::from("Queen Bed 'Aurora'")),
            ("price_cents", Value::from(49_900i64)),
            ("tags", Value::from(vec!["oak", "queen", "slatted"])),
            (
                "dims",
                Value::map([("w", Value::I64(160)), ("d", Value::I64(200))]),
            ),
        ],
    )
}

fn bench_value_codec(c: &mut Criterion) {
    let value = sample_value();
    let bytes = value_to_bytes(&value);
    c.bench_function("value_encode", |b| {
        b.iter(|| value_to_bytes(black_box(&value)))
    });
    c.bench_function("value_decode", |b| {
        b.iter(|| value_from_bytes(black_box(&bytes)).unwrap())
    });
}

fn bench_message_codec(c: &mut Criterion) {
    let invoke = Message::Invoke {
        call_id: 42,
        interface: "apps.MouseController".into(),
        method: "move".into(),
        args: vec![Value::I64(10), Value::I64(-5)],
    };
    let frame = invoke.encode();
    c.bench_function("invoke_encode", |b| b.iter(|| black_box(&invoke).encode()));
    c.bench_function("invoke_decode", |b| {
        b.iter(|| Message::decode(black_box(&frame)).unwrap())
    });

    let bundle = Message::ServiceBundle {
        interface: ShopService::interface(),
        injected_types: vec![],
        smart_proxy: None,
        descriptor: Some(ShopService::descriptor().encode()),
    };
    let bundle_frame = bundle.encode();
    c.bench_function("service_bundle_encode", |b| {
        b.iter(|| black_box(&bundle).encode())
    });
    c.bench_function("service_bundle_decode", |b| {
        b.iter(|| Message::decode(black_box(&bundle_frame)).unwrap())
    });
}

fn bench_filter(c: &mut Criterion) {
    let text = "(&(objectClass=ui.PointingDevice)(|(resolution>=100)(precise=true))(!(vendor=Acme*)))";
    let filter = Filter::parse(text).unwrap();
    let props = Properties::new()
        .with("objectClass", "ui.PointingDevice")
        .with("resolution", 160i64)
        .with("vendor", "Nokia");
    c.bench_function("filter_parse", |b| {
        b.iter(|| Filter::parse(black_box(text)).unwrap())
    });
    c.bench_function("filter_match", |b| {
        b.iter(|| black_box(&filter).matches(black_box(&props)))
    });
}

fn bench_artifacts(c: &mut Criterion) {
    let descriptor = MouseControllerService::descriptor();
    c.bench_function("descriptor_encode", |b| {
        b.iter(|| black_box(&descriptor).encode())
    });
    let artifact = BundleArtifact::new(Manifest::new("rosgi.proxy.bench", "1.0", "bench"))
        .with_data("interface.bin", MouseControllerService::interface().encode())
        .with_data("descriptor.bin", descriptor.encode());
    let encoded = artifact.encode();
    c.bench_function("artifact_encode", |b| b.iter(|| black_box(&artifact).encode()));
    c.bench_function("artifact_decode", |b| {
        b.iter(|| BundleArtifact::decode(black_box(&encoded)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_value_codec,
    bench_message_codec,
    bench_filter,
    bench_artifacts
);
criterion_main!(benches);
