//! Micro-benchmarks of the protocol substrate: the codec, the LDAP
//! filter engine, and shippable artifact encoding. These are the
//! constant factors behind every experiment in the paper's §4.
//!
//! Run with `cargo bench -p alfredo-bench --bench protocol`.

use std::hint::black_box;

use alfredo_apps::{MouseControllerService, ShopService};
use alfredo_bench::timing::bench_batched;
use alfredo_osgi::{BundleArtifact, Filter, Manifest, Properties, Value};
use alfredo_rosgi::codec::{value_from_bytes, value_to_bytes};
use alfredo_rosgi::Message;

fn sample_value() -> Value {
    Value::structure(
        "shop.Product",
        [
            ("name", Value::from("Queen Bed 'Aurora'")),
            ("price_cents", Value::from(49_900i64)),
            ("tags", Value::from(vec!["oak", "queen", "slatted"])),
            (
                "dims",
                Value::map([("w", Value::I64(160)), ("d", Value::I64(200))]),
            ),
        ],
    )
}

fn main() {
    let value = sample_value();
    let bytes = value_to_bytes(&value);
    bench_batched("value_encode", 256, 300, || {
        value_to_bytes(black_box(&value))
    })
    .report();
    bench_batched("value_decode", 256, 300, || {
        value_from_bytes(black_box(&bytes)).unwrap()
    })
    .report();

    let invoke = Message::Invoke {
        call_id: 42,
        interface: "apps.MouseController".into(),
        method: "move".into(),
        args: vec![Value::I64(10), Value::I64(-5)],
    };
    let frame = invoke.encode();
    bench_batched("invoke_encode", 256, 300, || black_box(&invoke).encode()).report();
    bench_batched("invoke_decode", 256, 300, || {
        Message::decode(black_box(&frame)).unwrap()
    })
    .report();

    let bundle = Message::ServiceBundle {
        interface: ShopService::interface(),
        injected_types: vec![],
        smart_proxy: None,
        descriptor: Some(ShopService::descriptor().encode()),
    };
    let bundle_frame = bundle.encode();
    bench_batched("service_bundle_encode", 64, 300, || {
        black_box(&bundle).encode()
    })
    .report();
    bench_batched("service_bundle_decode", 64, 300, || {
        Message::decode(black_box(&bundle_frame)).unwrap()
    })
    .report();

    let text =
        "(&(objectClass=ui.PointingDevice)(|(resolution>=100)(precise=true))(!(vendor=Acme*)))";
    let filter = Filter::parse(text).unwrap();
    let props = Properties::new()
        .with("objectClass", "ui.PointingDevice")
        .with("resolution", 160i64)
        .with("vendor", "Nokia");
    bench_batched("filter_parse", 256, 300, || {
        Filter::parse(black_box(text)).unwrap()
    })
    .report();
    bench_batched("filter_match", 1024, 300, || {
        black_box(&filter).matches(black_box(&props))
    })
    .report();

    let descriptor = MouseControllerService::descriptor();
    bench_batched("descriptor_encode", 64, 300, || {
        black_box(&descriptor).encode()
    })
    .report();
    let artifact = BundleArtifact::new(Manifest::new("rosgi.proxy.bench", "1.0", "bench"))
        .with_data(
            "interface.bin",
            MouseControllerService::interface().encode(),
        )
        .with_data("descriptor.bin", descriptor.encode());
    let encoded = artifact.encode();
    bench_batched("artifact_encode", 64, 300, || black_box(&artifact).encode()).report();
    bench_batched("artifact_decode", 64, 300, || {
        BundleArtifact::decode(black_box(&encoded)).unwrap()
    })
    .report();
}
