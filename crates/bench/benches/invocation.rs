//! Benchmarks of live invocation paths: local registry calls, remote
//! calls through a real threaded endpoint (the microscopic version of
//! Figures 3–6), and the full fetch/install/start pipeline (the
//! microscopic version of Tables 1 and 2, without the modelled phone
//! CPU).
//!
//! Run with `cargo bench -p alfredo-bench --bench invocation`.

use std::hint::black_box;
use std::sync::Arc;

use alfredo_apps::{register_mouse_controller, MOUSE_INTERFACE};
use alfredo_bench::timing::{bench, bench_batched};
use alfredo_net::{InMemoryNetwork, PeerAddr};
use alfredo_osgi::{FnService, Framework, Properties, Value};
use alfredo_rosgi::{EndpointConfig, RemoteEndpoint};

struct RemoteRig {
    phone_fw: Framework,
    endpoint: RemoteEndpoint,
    _device: std::thread::JoinHandle<()>,
}

fn remote_rig(name: &str) -> RemoteRig {
    let net = InMemoryNetwork::new();
    let device_fw = Framework::new();
    register_mouse_controller(&device_fw, 1280, 800).unwrap();
    let listener = net.bind(PeerAddr::new(name.to_owned())).unwrap();
    let fw2 = device_fw.clone();
    let label = name.to_owned();
    let device = std::thread::spawn(move || {
        if let Ok(conn) = listener.accept() {
            if let Ok(ep) =
                RemoteEndpoint::establish(Box::new(conn), fw2, EndpointConfig::named(label))
            {
                ep.join();
            }
        }
    });
    let phone_fw = Framework::new();
    let conn = net
        .connect(PeerAddr::new("bench-phone"), PeerAddr::new(name.to_owned()))
        .unwrap();
    let endpoint = RemoteEndpoint::establish(
        Box::new(conn),
        phone_fw.clone(),
        EndpointConfig::named("bench-phone"),
    )
    .unwrap();
    RemoteRig {
        phone_fw,
        endpoint,
        _device: device,
    }
}

fn main() {
    let fw = Framework::new();
    fw.system_context()
        .register_service(
            &["bench.Echo"],
            Arc::new(FnService::new(|_, args| {
                Ok(args.first().cloned().unwrap_or(Value::Unit))
            })),
            Properties::new(),
        )
        .unwrap();
    bench_batched("registry_lookup", 256, 300, || {
        fw.registry().get_service(black_box("bench.Echo")).unwrap()
    })
    .report();
    let svc = fw.registry().get_service("bench.Echo").unwrap();
    let args = [Value::I64(7)];
    bench_batched("local_invoke", 256, 300, || {
        svc.invoke(black_box("echo"), black_box(&args)).unwrap()
    })
    .report();

    {
        let rig = remote_rig("bench-dev-invoke");
        rig.endpoint.fetch_service(MOUSE_INTERFACE).unwrap();
        let svc = rig
            .phone_fw
            .registry()
            .get_service(MOUSE_INTERFACE)
            .unwrap();
        let args = [Value::I64(1), Value::I64(-1)];
        bench("remote_invoke_roundtrip", 500, || {
            svc.invoke(black_box("move"), black_box(&args)).unwrap()
        })
        .report();
        rig.endpoint.close();
    }

    {
        let rig = remote_rig("bench-dev-fetch");
        bench("fetch_install_start_release", 500, || {
            let fetched = rig
                .endpoint
                .fetch_service(black_box(MOUSE_INTERFACE))
                .unwrap();
            black_box(fetched.proxy_footprint);
            rig.endpoint.release_service(MOUSE_INTERFACE).unwrap();
        })
        .report();
        rig.endpoint.close();
    }
}
