//! Criterion benchmarks of the simulated-testbed experiments themselves
//! (shortened windows), so regressions in the models are caught like any
//! other performance change.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use alfredo_bench::model::{
    mouse_wire_sizes, InvocationLoadSim, LoadConfig, PhoneLoopConfig, PhoneLoopSim, StartupModel,
};
use alfredo_bench::calib;
use alfredo_sim::SimDuration;

fn bench_startup_model(c: &mut Criterion) {
    let model = StartupModel {
        phone: calib::nokia_9300i(),
        link: calib::phone_wlan(),
    };
    let sizes = mouse_wire_sizes();
    c.bench_function("startup_model_table1", |b| {
        b.iter(|| black_box(&model).run(black_box(sizes), calib::START_MOUSE_CYCLES))
    });
}

fn bench_load_sim(c: &mut Criterion) {
    c.bench_function("load_sim_fig3_16clients_2s", |b| {
        b.iter(|| {
            InvocationLoadSim::new(LoadConfig {
                measure_window: SimDuration::from_secs(2),
                ..LoadConfig::fig3(16)
            })
            .run()
        })
    });
}

fn bench_phone_loop(c: &mut Criterion) {
    let sim = PhoneLoopSim::new(PhoneLoopConfig::fig5());
    c.bench_function("phone_loop_fig5_40services", |b| {
        b.iter(|| black_box(&sim).run(40))
    });
}

criterion_group!(benches, bench_startup_model, bench_load_sim, bench_phone_loop);
criterion_main!(benches);
