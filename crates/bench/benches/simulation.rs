//! Benchmarks of the simulated-testbed experiments themselves
//! (shortened windows), so regressions in the models are caught like
//! any other performance change.
//!
//! Run with `cargo bench -p alfredo-bench --bench simulation`.

use std::hint::black_box;

use alfredo_bench::calib;
use alfredo_bench::model::{
    mouse_wire_sizes, InvocationLoadSim, LoadConfig, PhoneLoopConfig, PhoneLoopSim, StartupModel,
};
use alfredo_bench::timing::bench;
use alfredo_sim::SimDuration;

fn main() {
    let model = StartupModel {
        phone: calib::nokia_9300i(),
        link: calib::phone_wlan(),
    };
    let sizes = mouse_wire_sizes();
    bench("startup_model_table1", 400, || {
        black_box(&model).run(black_box(sizes), calib::START_MOUSE_CYCLES)
    })
    .report();

    bench("load_sim_fig3_16clients_2s", 800, || {
        InvocationLoadSim::new(LoadConfig {
            measure_window: SimDuration::from_secs(2),
            ..LoadConfig::fig3(16)
        })
        .run()
    })
    .report();

    let sim = PhoneLoopSim::new(PhoneLoopConfig::fig5());
    bench("phone_loop_fig5_40services", 800, || {
        black_box(&sim).run(40)
    })
    .report();
}
