//! RFC 1960 LDAP search filters.
//!
//! OSGi uses LDAP filter strings to select services by property, e.g.
//! `(&(objectClass=ui.PointingDevice)(resolution>=100))`. This module
//! implements a full parser and evaluator for the grammar used by the OSGi
//! core specification: `=`, `>=`, `<=`, `~=` (approximate match), presence
//! (`=*`), substring patterns (`a*b*c`), and the `&`, `|`, `!` combinators.

use std::fmt;

use crate::error::OsgiError;
use crate::properties::Properties;
use crate::value::Value;

/// A parsed LDAP filter.
///
/// # Example
///
/// ```
/// use alfredo_osgi::{Filter, Properties};
///
/// # fn main() -> Result<(), alfredo_osgi::OsgiError> {
/// let filter: Filter = "(&(kind=screen)(width>=640)(!(disabled=true)))".parse()?;
/// let props = Properties::new().with("kind", "screen").with("width", 800i64);
/// assert!(filter.matches(&props));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Conjunction: all sub-filters must match.
    And(Vec<Filter>),
    /// Disjunction: at least one sub-filter must match.
    Or(Vec<Filter>),
    /// Negation.
    Not(Box<Filter>),
    /// `(attr=value)` — equality.
    Equals {
        /// Attribute name.
        attr: String,
        /// Literal to compare against.
        value: String,
    },
    /// `(attr~=value)` — case/whitespace-insensitive equality.
    Approx {
        /// Attribute name.
        attr: String,
        /// Literal to compare against.
        value: String,
    },
    /// `(attr>=value)`.
    GreaterEq {
        /// Attribute name.
        attr: String,
        /// Literal to compare against.
        value: String,
    },
    /// `(attr<=value)`.
    LessEq {
        /// Attribute name.
        attr: String,
        /// Literal to compare against.
        value: String,
    },
    /// `(attr=*)` — attribute presence.
    Present {
        /// Attribute name.
        attr: String,
    },
    /// `(attr=ab*cd*ef)` — substring match.
    Substring {
        /// Attribute name.
        attr: String,
        /// Leading literal (before the first `*`), may be empty.
        initial: String,
        /// Literals between `*`s.
        middles: Vec<String>,
        /// Trailing literal (after the last `*`), may be empty.
        finale: String,
    },
}

impl Filter {
    /// Parses a filter string.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::FilterSyntax`] with the byte position of the
    /// first problem.
    pub fn parse(input: &str) -> Result<Filter, OsgiError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let f = p.filter()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(OsgiError::FilterSyntax {
                position: p.pos,
                expected: "end of input",
            });
        }
        Ok(f)
    }

    /// Evaluates the filter against a property dictionary.
    pub fn matches(&self, props: &Properties) -> bool {
        match self {
            Filter::And(fs) => fs.iter().all(|f| f.matches(props)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(props)),
            Filter::Not(f) => !f.matches(props),
            Filter::Equals { attr, value } => props.get(attr).is_some_and(|v| value_eq(v, value)),
            Filter::Approx { attr, value } => props.get(attr).is_some_and(|v| {
                let Some(actual) = value_to_string(v) else {
                    return false;
                };
                normalize(&actual) == normalize(value)
            }),
            Filter::GreaterEq { attr, value } => props
                .get(attr)
                .is_some_and(|v| value_cmp(v, value).is_some_and(|o| o.is_ge())),
            Filter::LessEq { attr, value } => props
                .get(attr)
                .is_some_and(|v| value_cmp(v, value).is_some_and(|o| o.is_le())),
            Filter::Present { attr } => props.contains_key(attr),
            Filter::Substring {
                attr,
                initial,
                middles,
                finale,
            } => props.get(attr).is_some_and(|v| {
                let Some(s) = value_to_string(v) else {
                    return false;
                };
                substring_match(&s, initial, middles, finale)
            }),
        }
    }
}

fn normalize(s: &str) -> String {
    s.chars()
        .filter(|c| !c.is_whitespace())
        .flat_map(char::to_lowercase)
        .collect()
}

fn value_to_string(v: &Value) -> Option<String> {
    match v {
        Value::Str(s) => Some(s.clone()),
        Value::I64(i) => Some(i.to_string()),
        Value::F64(f) => Some(f.to_string()),
        Value::Bool(b) => Some(b.to_string()),
        _ => None,
    }
}

fn value_eq(v: &Value, literal: &str) -> bool {
    match v {
        Value::Str(s) => s == literal,
        Value::I64(i) => literal.parse::<i64>().map(|l| *i == l).unwrap_or(false),
        Value::F64(f) => literal.parse::<f64>().map(|l| *f == l).unwrap_or(false),
        Value::Bool(b) => literal.parse::<bool>().map(|l| *b == l).unwrap_or(false),
        // A list property matches if any element matches (OSGi semantics).
        Value::List(items) => items.iter().any(|i| value_eq(i, literal)),
        _ => false,
    }
}

fn value_cmp(v: &Value, literal: &str) -> Option<std::cmp::Ordering> {
    match v {
        Value::I64(i) => literal.parse::<i64>().ok().map(|l| i.cmp(&l)),
        Value::F64(f) => literal.parse::<f64>().ok().and_then(|l| f.partial_cmp(&l)),
        Value::Str(s) => Some(s.as_str().cmp(literal)),
        _ => None,
    }
}

fn substring_match(s: &str, initial: &str, middles: &[String], finale: &str) -> bool {
    let Some(mut rest) = s.strip_prefix(initial) else {
        return false;
    };
    for mid in middles {
        match rest.find(mid.as_str()) {
            Some(idx) => rest = &rest[idx + mid.len()..],
            None => return false,
        }
    }
    rest.ends_with(finale) && rest.len() >= finale.len()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, expected: &'static str) -> OsgiError {
        OsgiError::FilterSyntax {
            position: self.pos,
            expected,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8, expected: &'static str) -> Result<(), OsgiError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn filter(&mut self) -> Result<Filter, OsgiError> {
        self.expect(b'(', "'('")?;
        let f = match self.peek() {
            Some(b'&') => {
                self.bump();
                Filter::And(self.filter_list()?)
            }
            Some(b'|') => {
                self.bump();
                Filter::Or(self.filter_list()?)
            }
            Some(b'!') => {
                self.bump();
                self.skip_ws();
                Filter::Not(Box::new(self.filter()?))
            }
            Some(_) => self.comparison()?,
            None => return Err(self.err("filter operator or attribute")),
        };
        self.skip_ws();
        self.expect(b')', "')'")?;
        Ok(f)
    }

    fn filter_list(&mut self) -> Result<Vec<Filter>, OsgiError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'(') {
                out.push(self.filter()?);
            } else if out.is_empty() {
                return Err(self.err("at least one sub-filter"));
            } else {
                return Ok(out);
            }
        }
    }

    fn comparison(&mut self) -> Result<Filter, OsgiError> {
        let attr = self.attribute()?;
        match self.bump() {
            Some(b'=') => self.equals_or_substring(attr),
            Some(b'>') => {
                self.expect(b'=', "'=' after '>'")?;
                let value = self.literal()?;
                Ok(Filter::GreaterEq { attr, value })
            }
            Some(b'<') => {
                self.expect(b'=', "'=' after '<'")?;
                let value = self.literal()?;
                Ok(Filter::LessEq { attr, value })
            }
            Some(b'~') => {
                self.expect(b'=', "'=' after '~'")?;
                let value = self.literal()?;
                Ok(Filter::Approx { attr, value })
            }
            _ => Err(self.err("comparison operator")),
        }
    }

    fn equals_or_substring(&mut self, attr: String) -> Result<Filter, OsgiError> {
        // Parse the right side as segments separated by '*'.
        let mut segments: Vec<String> = vec![String::new()];
        loop {
            match self.peek() {
                Some(b')') | None => break,
                Some(b'*') => {
                    self.bump();
                    segments.push(String::new());
                }
                Some(b'\\') => {
                    self.bump();
                    let escaped = self.bump().ok_or_else(|| self.err("escaped character"))?;
                    segments
                        .last_mut()
                        .expect("segments nonempty")
                        .push(escaped as char);
                }
                Some(b) => {
                    self.bump();
                    segments
                        .last_mut()
                        .expect("segments nonempty")
                        .push(b as char);
                }
            }
        }
        if segments.len() == 1 {
            return Ok(Filter::Equals {
                attr,
                value: segments.pop().expect("one segment"),
            });
        }
        if segments.len() == 2 && segments[0].is_empty() && segments[1].is_empty() {
            return Ok(Filter::Present { attr });
        }
        let finale = segments.pop().expect("nonempty");
        let initial = segments.remove(0);
        Ok(Filter::Substring {
            attr,
            initial,
            middles: segments,
            finale,
        })
    }

    fn attribute(&mut self) -> Result<String, OsgiError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'=' | b'>' | b'<' | b'~' | b'(' | b')' | b'*') {
                break;
            }
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("UTF-8 attribute name"))?
            .trim();
        if raw.is_empty() {
            return Err(self.err("attribute name"));
        }
        Ok(raw.to_owned())
    }

    fn literal(&mut self) -> Result<String, OsgiError> {
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b')') | None => return Ok(out),
                Some(b'\\') => {
                    self.bump();
                    let escaped = self.bump().ok_or_else(|| self.err("escaped character"))?;
                    out.push(escaped as char);
                }
                Some(b) => {
                    self.bump();
                    out.push(b as char);
                }
            }
        }
    }
}

impl std::str::FromStr for Filter {
    type Err = OsgiError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Filter::parse(s)
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::And(fs) => {
                write!(f, "(&")?;
                for sub in fs {
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            Filter::Or(fs) => {
                write!(f, "(|")?;
                for sub in fs {
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            Filter::Not(sub) => write!(f, "(!{sub})"),
            Filter::Equals { attr, value } => write!(f, "({attr}={})", escape(value)),
            Filter::Approx { attr, value } => write!(f, "({attr}~={})", escape(value)),
            Filter::GreaterEq { attr, value } => write!(f, "({attr}>={})", escape(value)),
            Filter::LessEq { attr, value } => write!(f, "({attr}<={})", escape(value)),
            Filter::Present { attr } => write!(f, "({attr}=*)"),
            Filter::Substring {
                attr,
                initial,
                middles,
                finale,
            } => {
                write!(f, "({attr}={}", escape(initial))?;
                for m in middles {
                    write!(f, "*{}", escape(m))?;
                }
                write!(f, "*{})", escape(finale))
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if matches!(c, '(' | ')' | '*' | '\\') {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn props() -> Properties {
        Properties::new()
            .with("objectClass", "ui.PointingDevice")
            .with("resolution", 160i64)
            .with("vendor", "Nokia Research")
            .with("precise", true)
            .with("weight", 1.5)
    }

    fn check(filter: &str, expect: bool) {
        let f = Filter::parse(filter).unwrap_or_else(|e| panic!("parse {filter}: {e}"));
        assert_eq!(f.matches(&props()), expect, "filter {filter}");
    }

    #[test]
    fn equality() {
        check("(objectClass=ui.PointingDevice)", true);
        check("(objectClass=ui.KeyboardDevice)", false);
        check("(resolution=160)", true);
        check("(resolution=161)", false);
        check("(precise=true)", true);
        check("(weight=1.5)", true);
    }

    #[test]
    fn ordering_comparisons() {
        check("(resolution>=100)", true);
        check("(resolution>=160)", true);
        check("(resolution>=161)", false);
        check("(resolution<=160)", true);
        check("(resolution<=159)", false);
        check("(weight>=1.0)", true);
        check("(vendor>=Nokia)", true); // lexicographic on strings
    }

    #[test]
    fn presence() {
        check("(resolution=*)", true);
        check("(missing=*)", false);
    }

    #[test]
    fn substring_patterns() {
        check("(vendor=Nokia*)", true);
        check("(vendor=*Research)", true);
        check("(vendor=*kia*sear*)", true);
        check("(vendor=*Ericsson*)", false);
        check("(vendor=N*a R*h)", true);
    }

    #[test]
    fn approx_ignores_case_and_space() {
        check("(vendor~=nokiaresearch)", true);
        check("(vendor~=NOKIA RESEARCH)", true);
        check("(vendor~=nokia labs)", false);
    }

    #[test]
    fn combinators() {
        check("(&(objectClass=ui.PointingDevice)(resolution>=100))", true);
        check("(&(objectClass=ui.PointingDevice)(resolution>=500))", false);
        check("(|(resolution>=500)(precise=true))", true);
        check("(!(precise=false))", true);
        check(
            "(&(|(vendor=Nokia*)(vendor=Sony*))(!(resolution<=100)))",
            true,
        );
    }

    #[test]
    fn missing_attribute_never_matches() {
        check("(nope=1)", false);
        check("(nope>=1)", false);
        check("(!(nope=1))", true); // negation of a non-match
    }

    #[test]
    fn list_valued_properties_match_any_element() {
        let p = Properties::new().with("objectClass", Value::from(vec!["a.B", "c.D"]));
        let f = Filter::parse("(objectClass=c.D)").unwrap();
        assert!(f.matches(&p));
        let f = Filter::parse("(objectClass=x.Y)").unwrap();
        assert!(!f.matches(&p));
    }

    #[test]
    fn escapes_round_trip() {
        let f = Filter::parse(r"(name=a\*b\(c\))").unwrap();
        assert_eq!(
            f,
            Filter::Equals {
                attr: "name".into(),
                value: "a*b(c)".into()
            }
        );
        let p = Properties::new().with("name", "a*b(c)");
        assert!(f.matches(&p));
        // Display re-escapes; reparse yields the same AST.
        let redisplayed = f.to_string();
        assert_eq!(Filter::parse(&redisplayed).unwrap(), f);
    }

    #[test]
    fn display_round_trips_structures() {
        for s in [
            "(&(a=1)(b=2))",
            "(|(a=1)(!(b=2)))",
            "(a=*)",
            "(a=x*y*z)",
            "(a>=5)",
            "(a<=5)",
            "(a~=x)",
        ] {
            let f = Filter::parse(s).unwrap();
            assert_eq!(Filter::parse(&f.to_string()).unwrap(), f, "{s}");
        }
    }

    #[test]
    fn syntax_errors_report_position() {
        for bad in ["", "(", "(a=1", "(a=1))", "()", "(&)", "(a>1)", "x"] {
            let err = Filter::parse(bad).unwrap_err();
            assert!(
                matches!(err, OsgiError::FilterSyntax { .. }),
                "{bad} -> {err}"
            );
        }
    }

    #[test]
    fn whitespace_is_tolerated_between_filters() {
        let f = Filter::parse("(& (a=1) (b=2) )").unwrap();
        let p = Properties::new().with("a", 1i64).with("b", 2i64);
        assert!(f.matches(&p));
    }
}
