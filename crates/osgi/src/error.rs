//! Error types for the module framework.

use std::fmt;

use crate::bundle::{BundleId, BundleState};

/// Errors produced by framework and registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsgiError {
    /// A bundle id did not resolve to an installed bundle.
    NoSuchBundle(BundleId),
    /// A lifecycle operation was attempted in an incompatible state.
    InvalidStateTransition {
        /// The bundle involved.
        bundle: BundleId,
        /// Its current state.
        from: BundleState,
        /// The operation that was attempted.
        operation: &'static str,
    },
    /// A bundle activator's `start` or `stop` hook failed.
    ActivatorFailed {
        /// The bundle involved.
        bundle: BundleId,
        /// The activator's error message.
        message: String,
    },
    /// A service id did not resolve to a registered service.
    NoSuchService(u64),
    /// An LDAP filter string failed to parse.
    FilterSyntax {
        /// Byte offset of the error in the filter string.
        position: usize,
        /// What the parser expected.
        expected: &'static str,
    },
    /// A bundle artifact referenced an activator key that is not present in
    /// the local [`crate::CodeRegistry`].
    UnknownActivatorKey(String),
    /// A bundle artifact failed to decode.
    MalformedArtifact(String),
    /// Registration was attempted with an empty interface list.
    NoInterfaces,
}

impl fmt::Display for OsgiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsgiError::NoSuchBundle(id) => write!(f, "no such bundle: {id}"),
            OsgiError::InvalidStateTransition {
                bundle,
                from,
                operation,
            } => write!(f, "cannot {operation} bundle {bundle} in state {from}"),
            OsgiError::ActivatorFailed { bundle, message } => {
                write!(f, "activator of bundle {bundle} failed: {message}")
            }
            OsgiError::NoSuchService(id) => write!(f, "no such service: {id}"),
            OsgiError::FilterSyntax { position, expected } => {
                write!(
                    f,
                    "filter syntax error at byte {position}: expected {expected}"
                )
            }
            OsgiError::UnknownActivatorKey(key) => {
                write!(f, "unknown activator key: {key}")
            }
            OsgiError::MalformedArtifact(msg) => write!(f, "malformed bundle artifact: {msg}"),
            OsgiError::NoInterfaces => {
                write!(f, "service registration requires at least one interface")
            }
        }
    }
}

impl std::error::Error for OsgiError {}

/// Errors produced when invoking a service method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceCallError {
    /// The method name is not part of the service.
    NoSuchMethod(String),
    /// Arguments did not match the method's expectations.
    BadArguments(String),
    /// The service implementation failed.
    Failed(String),
    /// The service has been unregistered (e.g. remote peer disconnected).
    ServiceGone,
    /// A remote invocation could not complete (transport failure/timeout).
    Remote(String),
    /// The serving side's bounded work queue rejected the call before
    /// executing it (backpressure). Because the call never ran, retrying
    /// is always safe — callers should wait at least `retry_after_ms`
    /// first.
    Busy {
        /// Suggested minimum delay before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The caller's deadline expired before the serving side executed the
    /// call, so it was dropped without running. Because the call never
    /// ran, retrying is always safe — but the caller's budget is gone, so
    /// the useful reaction is usually to give up or degrade.
    DeadlineExceeded,
}

impl fmt::Display for ServiceCallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceCallError::NoSuchMethod(m) => write!(f, "no such method: {m}"),
            ServiceCallError::BadArguments(msg) => write!(f, "bad arguments: {msg}"),
            ServiceCallError::Failed(msg) => write!(f, "service failed: {msg}"),
            ServiceCallError::ServiceGone => write!(f, "service has been unregistered"),
            ServiceCallError::Remote(msg) => write!(f, "remote invocation failed: {msg}"),
            ServiceCallError::Busy { retry_after_ms } => {
                write!(f, "service busy, retry after {retry_after_ms} ms")
            }
            ServiceCallError::DeadlineExceeded => {
                write!(f, "deadline expired before the call executed")
            }
        }
    }
}

impl std::error::Error for ServiceCallError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_payloads() {
        let e = OsgiError::ActivatorFailed {
            bundle: BundleId::from_raw(3),
            message: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains("boom"), "{s}");

        let e = ServiceCallError::NoSuchMethod("frob".into());
        assert!(e.to_string().contains("frob"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<OsgiError>();
        assert_err::<ServiceCallError>();
    }
}
