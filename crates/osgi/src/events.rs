//! Framework, bundle, and service events, plus the EventAdmin topic bus.
//!
//! OSGi applications are written to react to dynamism — services coming and
//! going, bundles starting and stopping. R-OSGi leans on exactly this: a
//! network disconnection is delivered to the application as ordinary
//! service-unregistration and bundle-stop events, so "the potentially
//! harmful side effect of introducing a network link does not break the
//! application model" (paper, §2.1). [`EventAdmin`] is the topic-based bus
//! whose events R-OSGi forwards transparently between machines.

use std::fmt;
use std::sync::Arc;

use alfredo_sync::Mutex;

use crate::bundle::{BundleId, BundleState};
use crate::properties::Properties;
use crate::service::ServiceReference;

/// Service lifecycle events delivered to registry listeners.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceEvent {
    /// A service was registered.
    Registered(ServiceReference),
    /// A service's properties changed.
    Modified(ServiceReference),
    /// A service is about to be unregistered.
    Unregistering(ServiceReference),
}

impl ServiceEvent {
    /// The reference the event concerns.
    pub fn reference(&self) -> &ServiceReference {
        match self {
            ServiceEvent::Registered(r)
            | ServiceEvent::Modified(r)
            | ServiceEvent::Unregistering(r) => r,
        }
    }
}

/// Bundle lifecycle events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleEvent {
    /// The bundle concerned.
    pub bundle: BundleId,
    /// The state it transitioned to.
    pub state: BundleState,
}

/// Framework-level events (errors, warnings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameworkEvent {
    /// The framework finished starting.
    Started,
    /// An activator or listener failed; the framework keeps running.
    Error {
        /// The bundle at fault, if attributable.
        bundle: Option<BundleId>,
        /// Human-readable description.
        message: String,
    },
}

/// A topic-addressed event (the OSGi EventAdmin model).
///
/// Topics are `/`-separated paths, e.g. `"mouse/snapshot/updated"`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The topic path.
    pub topic: String,
    /// Event payload.
    pub properties: Properties,
}

impl Event {
    /// Creates an event.
    pub fn new(topic: impl Into<String>, properties: Properties) -> Self {
        Event {
            topic: topic.into(),
            properties,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.topic, self.properties)
    }
}

/// Identifier of an EventAdmin subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(u64);

type Handler = Arc<dyn Fn(&Event) + Send + Sync>;

struct Subscription {
    id: SubscriptionId,
    pattern: String,
    handler: Handler,
}

/// A synchronous topic-based publish/subscribe bus.
///
/// Topic patterns match exactly, or by prefix with a trailing `*` segment:
/// `"mouse/*"` matches `"mouse/snapshot"` and `"mouse/snapshot/updated"`.
/// `"*"` matches everything.
///
/// # Example
///
/// ```
/// use alfredo_osgi::{Event, EventAdmin, Properties};
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let bus = EventAdmin::new();
/// let hits = Arc::new(AtomicUsize::new(0));
/// let h = Arc::clone(&hits);
/// bus.subscribe("mouse/*", move |_event| {
///     h.fetch_add(1, Ordering::SeqCst);
/// });
/// bus.post(&Event::new("mouse/snapshot", Properties::new()));
/// bus.post(&Event::new("shop/update", Properties::new()));
/// assert_eq!(hits.load(Ordering::SeqCst), 1);
/// ```
#[derive(Clone, Default)]
pub struct EventAdmin {
    inner: Arc<Mutex<AdminInner>>,
}

type ChangeListener = Arc<dyn Fn() + Send + Sync>;

#[derive(Default)]
struct AdminInner {
    subs: Vec<Subscription>,
    taps: Vec<(u64, Handler)>,
    change_listeners: Vec<(u64, ChangeListener)>,
    next_id: u64,
    posted: u64,
}

impl EventAdmin {
    /// Creates an empty bus.
    pub fn new() -> Self {
        EventAdmin::default()
    }

    /// Subscribes `handler` to topics matching `pattern`.
    pub fn subscribe<F>(&self, pattern: impl Into<String>, handler: F) -> SubscriptionId
    where
        F: Fn(&Event) + Send + Sync + 'static,
    {
        let id = {
            let mut inner = self.inner.lock();
            let id = SubscriptionId(inner.next_id);
            inner.next_id += 1;
            inner.subs.push(Subscription {
                id,
                pattern: pattern.into(),
                handler: Arc::new(handler),
            });
            id
        };
        self.notify_change();
        id
    }

    /// Removes a subscription. Unknown ids are ignored.
    pub fn unsubscribe(&self, id: SubscriptionId) {
        self.inner.lock().subs.retain(|s| s.id != id);
        self.notify_change();
    }

    /// Registers a hook invoked whenever the subscription set changes.
    /// R-OSGi uses this to keep the peer's event-interest view current.
    /// Returns a token for [`Self::remove_change_listener`].
    pub fn on_subscriptions_changed<F>(&self, listener: F) -> u64
    where
        F: Fn() + Send + Sync + 'static,
    {
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.change_listeners.push((id, Arc::new(listener)));
        id
    }

    /// Removes a change hook.
    pub fn remove_change_listener(&self, id: u64) {
        self.inner.lock().change_listeners.retain(|(i, _)| *i != id);
    }

    fn notify_change(&self) {
        let listeners: Vec<ChangeListener> = self
            .inner
            .lock()
            .change_listeners
            .iter()
            .map(|(_, l)| Arc::clone(l))
            .collect();
        for l in listeners {
            l();
        }
    }

    /// Delivers `event` synchronously to every matching subscriber.
    /// Handlers run without the bus lock held, so they may re-enter the
    /// bus (post, subscribe, unsubscribe).
    pub fn post(&self, event: &Event) {
        let handlers: Vec<Handler> = {
            let mut inner = self.inner.lock();
            inner.posted += 1;
            inner
                .subs
                .iter()
                .filter(|s| topic_matches(&s.pattern, &event.topic))
                .map(|s| Arc::clone(&s.handler))
                .chain(inner.taps.iter().map(|(_, h)| Arc::clone(h)))
                .collect()
        };
        for h in handlers {
            h(event);
        }
    }

    /// Registers an infrastructure *tap*: invoked for **every** posted
    /// event, but not counted as a subscription (absent from
    /// [`Self::patterns`]). R-OSGi's event forwarder is a tap — it relays
    /// events without representing application interest. Returns a token
    /// for [`Self::remove_tap`].
    pub fn add_tap<F>(&self, handler: F) -> u64
    where
        F: Fn(&Event) + Send + Sync + 'static,
    {
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.taps.push((id, Arc::new(handler)));
        id
    }

    /// Removes a tap.
    pub fn remove_tap(&self, id: u64) {
        self.inner.lock().taps.retain(|(i, _)| *i != id);
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.inner.lock().subs.len()
    }

    /// Total events posted.
    pub fn posted_count(&self) -> u64 {
        self.inner.lock().posted
    }

    /// Returns the patterns of all active subscriptions (used by R-OSGi to
    /// decide which remote events are worth forwarding).
    pub fn patterns(&self) -> Vec<String> {
        self.inner
            .lock()
            .subs
            .iter()
            .map(|s| s.pattern.clone())
            .collect()
    }
}

impl fmt::Debug for EventAdmin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventAdmin")
            .field("subscriptions", &self.subscription_count())
            .finish()
    }
}

/// Whether a subscription `pattern` matches a concrete `topic`.
pub fn topic_matches(pattern: &str, topic: &str) -> bool {
    if pattern == "*" || pattern == topic {
        return true;
    }
    if let Some(prefix) = pattern.strip_suffix("/*") {
        return topic == prefix || topic.starts_with(&format!("{prefix}/"));
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn topic_matching_rules() {
        assert!(topic_matches("*", "anything/here"));
        assert!(topic_matches("a/b", "a/b"));
        assert!(!topic_matches("a/b", "a/b/c"));
        assert!(topic_matches("a/*", "a/b"));
        assert!(topic_matches("a/*", "a/b/c"));
        assert!(topic_matches("a/*", "a"));
        assert!(!topic_matches("a/*", "ab"));
        assert!(!topic_matches("a/*", "b/a"));
    }

    #[test]
    fn post_reaches_matching_subscribers_only() {
        let bus = EventAdmin::new();
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::new(AtomicUsize::new(0));
        let (ac, bc) = (Arc::clone(&a), Arc::clone(&b));
        bus.subscribe("x/*", move |_| {
            ac.fetch_add(1, Ordering::SeqCst);
        });
        bus.subscribe("y/*", move |_| {
            bc.fetch_add(1, Ordering::SeqCst);
        });
        bus.post(&Event::new("x/1", Properties::new()));
        bus.post(&Event::new("x/2", Properties::new()));
        bus.post(&Event::new("y/1", Properties::new()));
        assert_eq!(a.load(Ordering::SeqCst), 2);
        assert_eq!(b.load(Ordering::SeqCst), 1);
        assert_eq!(bus.posted_count(), 3);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let bus = EventAdmin::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let id = bus.subscribe("*", move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        bus.post(&Event::new("t", Properties::new()));
        bus.unsubscribe(id);
        bus.post(&Event::new("t", Properties::new()));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(bus.subscription_count(), 0);
    }

    #[test]
    fn handlers_may_reenter_the_bus() {
        let bus = EventAdmin::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let bus2 = bus.clone();
        bus.subscribe("first", move |_| {
            bus2.post(&Event::new("second", Properties::new()));
        });
        bus.subscribe("second", move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        bus.post(&Event::new("first", Properties::new()));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn taps_see_everything_but_are_not_subscriptions() {
        let bus = EventAdmin::new();
        let tapped = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&tapped);
        let tap = bus.add_tap(move |_| {
            t.fetch_add(1, Ordering::SeqCst);
        });
        // Taps don't appear in patterns() and don't fire change hooks as
        // subscriptions would.
        assert!(bus.patterns().is_empty());
        assert_eq!(bus.subscription_count(), 0);
        bus.post(&Event::new("any/topic", Properties::new()));
        bus.post(&Event::new("other", Properties::new()));
        assert_eq!(tapped.load(Ordering::SeqCst), 2);
        bus.remove_tap(tap);
        bus.post(&Event::new("any/topic", Properties::new()));
        assert_eq!(tapped.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn subscription_change_hooks_fire() {
        let bus = EventAdmin::new();
        let changes = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&changes);
        let hook = bus.on_subscriptions_changed(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        let sub = bus.subscribe("a/*", |_| {});
        assert_eq!(changes.load(Ordering::SeqCst), 1);
        bus.unsubscribe(sub);
        assert_eq!(changes.load(Ordering::SeqCst), 2);
        // Taps do not count as subscription changes.
        let tap = bus.add_tap(|_| {});
        bus.remove_tap(tap);
        assert_eq!(changes.load(Ordering::SeqCst), 2);
        bus.remove_change_listener(hook);
        bus.subscribe("b/*", |_| {});
        assert_eq!(changes.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn event_payload_accessible() {
        let e = Event::new("a/b", Properties::new().with("k", 3i64));
        assert_eq!(e.properties.get_i64("k"), Some(3));
        assert!(e.to_string().contains("a/b"));
    }

    #[test]
    fn service_event_reference_accessor() {
        let r = ServiceReference::new(
            crate::service::ServiceId::from_raw(1),
            vec!["a.B".into()],
            Properties::new(),
        );
        for e in [
            ServiceEvent::Registered(r.clone()),
            ServiceEvent::Modified(r.clone()),
            ServiceEvent::Unregistering(r.clone()),
        ] {
            assert_eq!(e.reference(), &r);
        }
    }
}
