#![warn(missing_docs)]

//! # alfredo-osgi
//!
//! An OSGi-style module framework, reproducing the substrate AlfredO runs
//! on (the paper uses the Concierge OSGi implementation underneath R-OSGi).
//!
//! OSGi decomposes an application into **bundles** whose lifecycle is
//! controlled individually at runtime, communicating through **services**
//! published in a central **service registry** under service interfaces and
//! properties. This crate reproduces those mechanics in Rust:
//!
//! * [`Framework`] — owns bundles and the service registry; bundle 0 is the
//!   system bundle.
//! * [`Bundle`]/[`BundleState`] — the full OSGi lifecycle
//!   (Installed → Resolved → Starting → Active → Stopping → Uninstalled)
//!   with [`BundleActivator`] start/stop hooks.
//! * [`ServiceRegistry`] — interface-keyed registration with properties,
//!   [service ranking](Properties), LDAP-style [`Filter`] queries
//!   (RFC 1960), and service event listeners.
//! * [`EventAdmin`] — the topic-based publish/subscribe bus that R-OSGi
//!   forwards across the network.
//! * [`BundleArtifact`]/[`CodeRegistry`] — the stand-in for JVM dynamic
//!   class loading: a bundle is shipped as serialized data whose executable
//!   parts are symbolic *activator keys* resolved against statically
//!   compiled factories on the receiving side (see `DESIGN.md` §2).
//!
//! Services are dynamically typed at the framework boundary — methods are
//! invoked by name with [`Value`] arguments — mirroring Java's
//! reflection-based dispatch and making remote proxying (in
//! `alfredo-rosgi`) possible without code generation.
//!
//! # Example
//!
//! ```
//! use alfredo_osgi::{Framework, Properties, Service, ServiceCallError, Value};
//! use std::sync::Arc;
//!
//! struct Echo;
//! impl Service for Echo {
//!     fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ServiceCallError> {
//!         match method {
//!             "echo" => Ok(args.first().cloned().unwrap_or(Value::Unit)),
//!             _ => Err(ServiceCallError::NoSuchMethod(method.to_owned())),
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), alfredo_osgi::OsgiError> {
//! let fw = Framework::new();
//! fw.system_context()
//!     .register_service(&["test.Echo"], Arc::new(Echo), Properties::new())?;
//! let svc = fw.registry().get_service("test.Echo").expect("registered");
//! let out = svc.invoke("echo", &[Value::from("hi")]).unwrap();
//! assert_eq!(out, Value::from("hi"));
//! # Ok(())
//! # }
//! ```

pub mod artifact;
pub mod bundle;
pub mod error;
pub mod events;
pub mod filter;
pub mod framework;
pub mod json;
pub mod properties;
pub mod registry;
pub mod service;
pub mod value;

pub use artifact::{ArtifactEntry, BundleArtifact, CodeRegistry, Manifest};
pub use bundle::{BundleActivator, BundleContext, BundleId, BundleState};
pub use error::{OsgiError, ServiceCallError};
pub use events::{BundleEvent, Event, EventAdmin, FrameworkEvent, ServiceEvent};
pub use filter::Filter;
pub use framework::{Bundle, Framework};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use properties::Properties;
pub use registry::{ListenerId, ServiceRegistration, ServiceRegistry};
pub use service::{
    FnService, MethodSpec, ParamSpec, Service, ServiceId, ServiceInterfaceDesc, ServiceReference,
    TypeHint,
};
pub use value::Value;
