//! Services, service references, and shippable interface descriptions.
//!
//! A [`Service`] is the unit of functionality in the framework: an object
//! invoked by method name with dynamic [`Value`] arguments. Services are
//! published under one or more **interface names** together with a
//! [`ServiceInterfaceDesc`] — the machine-readable method table that R-OSGi
//! ships to clients so they can build a proxy (the "service interface" whose
//! ~2 kB transfer Table 1 of the paper measures).

use std::fmt;
use std::sync::Arc;

use alfredo_net::{ByteReader, ByteWriter, WireError};

use crate::error::ServiceCallError;
use crate::properties::Properties;
use crate::value::Value;

/// A framework-unique service identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(u64);

impl ServiceId {
    /// Constructs an id from its raw value.
    pub const fn from_raw(raw: u64) -> Self {
        ServiceId(raw)
    }

    /// The raw value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "service#{}", self.0)
    }
}

/// The dynamic service object: methods invoked by name.
///
/// Implementations must be thread-safe; the framework hands out shared
/// references across bundles and threads, exactly as an OSGi registry hands
/// out the same service object to all consumers.
pub trait Service: Send + Sync {
    /// Invokes `method` with `args`.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceCallError::NoSuchMethod`] for unknown methods,
    /// [`ServiceCallError::BadArguments`] for arity/type mismatches, or
    /// [`ServiceCallError::Failed`] for application failures.
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ServiceCallError>;

    /// The service's method table, if it can describe itself. Services that
    /// return `None` can still be called locally but cannot be proxied
    /// remotely with interface validation.
    fn describe(&self) -> Option<ServiceInterfaceDesc> {
        None
    }
}

/// A [`Service`] implemented by a closure — convenient for small adapters
/// and tests.
///
/// # Example
///
/// ```
/// use alfredo_osgi::{FnService, Service, Value};
///
/// let svc = FnService::new(|method, args| match method {
///     "add" => Ok(Value::I64(
///         args.iter().filter_map(Value::as_i64).sum(),
///     )),
///     _ => Err(alfredo_osgi::ServiceCallError::NoSuchMethod(method.into())),
/// });
/// let out = svc.invoke("add", &[Value::I64(2), Value::I64(3)]).unwrap();
/// assert_eq!(out, Value::I64(5));
/// ```
pub struct FnService<F> {
    f: F,
    desc: Option<ServiceInterfaceDesc>,
}

impl<F> FnService<F>
where
    F: Fn(&str, &[Value]) -> Result<Value, ServiceCallError> + Send + Sync,
{
    /// Wraps a closure as a service.
    pub fn new(f: F) -> Self {
        FnService { f, desc: None }
    }

    /// Attaches an interface description for remote shipping.
    pub fn with_description(mut self, desc: ServiceInterfaceDesc) -> Self {
        self.desc = Some(desc);
        self
    }
}

impl<F> Service for FnService<F>
where
    F: Fn(&str, &[Value]) -> Result<Value, ServiceCallError> + Send + Sync,
{
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ServiceCallError> {
        (self.f)(method, args)
    }

    fn describe(&self) -> Option<ServiceInterfaceDesc> {
        self.desc.clone()
    }
}

impl<F> fmt::Debug for FnService<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnService")
            .field("desc", &self.desc)
            .finish()
    }
}

/// Coarse type hints used in interface descriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeHint {
    /// No value.
    Unit,
    /// Boolean.
    Bool,
    /// Integer.
    I64,
    /// Float.
    F64,
    /// String.
    Str,
    /// Byte array.
    Bytes,
    /// List of values.
    List,
    /// Map of values.
    Map,
    /// A struct of an injected type; the name is carried separately.
    Struct,
    /// Anything (unchecked).
    Any,
}

impl TypeHint {
    /// Whether `value` conforms to this hint.
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (TypeHint::Any, _)
                | (TypeHint::Unit, Value::Unit)
                | (TypeHint::Bool, Value::Bool(_))
                | (TypeHint::I64, Value::I64(_))
                | (TypeHint::F64, Value::F64(_))
                | (TypeHint::F64, Value::I64(_))
                | (TypeHint::Str, Value::Str(_))
                | (TypeHint::Bytes, Value::Bytes(_))
                | (TypeHint::List, Value::List(_))
                | (TypeHint::Map, Value::Map(_))
                | (TypeHint::Struct, Value::Struct { .. })
        )
    }

    fn to_tag(self) -> u8 {
        match self {
            TypeHint::Unit => 0,
            TypeHint::Bool => 1,
            TypeHint::I64 => 2,
            TypeHint::F64 => 3,
            TypeHint::Str => 4,
            TypeHint::Bytes => 5,
            TypeHint::List => 6,
            TypeHint::Map => 7,
            TypeHint::Struct => 8,
            TypeHint::Any => 9,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => TypeHint::Unit,
            1 => TypeHint::Bool,
            2 => TypeHint::I64,
            3 => TypeHint::F64,
            4 => TypeHint::Str,
            5 => TypeHint::Bytes,
            6 => TypeHint::List,
            7 => TypeHint::Map,
            8 => TypeHint::Struct,
            9 => TypeHint::Any,
            _ => {
                return Err(WireError::InvalidTag {
                    context: "TypeHint",
                    tag,
                })
            }
        })
    }
}

/// One formal parameter of a method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpec {
    /// Parameter name (documentation only).
    pub name: String,
    /// Expected value shape.
    pub hint: TypeHint,
}

impl ParamSpec {
    /// Creates a parameter spec.
    pub fn new(name: impl Into<String>, hint: TypeHint) -> Self {
        ParamSpec {
            name: name.into(),
            hint,
        }
    }
}

/// One method of a service interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSpec {
    /// Method name.
    pub name: String,
    /// Formal parameters, in order.
    pub params: Vec<ParamSpec>,
    /// Return value shape.
    pub returns: TypeHint,
    /// One-line documentation shipped with the interface.
    pub doc: String,
}

impl MethodSpec {
    /// Creates a method spec.
    pub fn new(
        name: impl Into<String>,
        params: Vec<ParamSpec>,
        returns: TypeHint,
        doc: impl Into<String>,
    ) -> Self {
        MethodSpec {
            name: name.into(),
            params,
            returns,
            doc: doc.into(),
        }
    }

    /// Validates an argument list against this method.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceCallError::BadArguments`] on arity or type mismatch.
    pub fn check_args(&self, args: &[Value]) -> Result<(), ServiceCallError> {
        if args.len() != self.params.len() {
            return Err(ServiceCallError::BadArguments(format!(
                "{} expects {} argument(s), got {}",
                self.name,
                self.params.len(),
                args.len()
            )));
        }
        for (param, arg) in self.params.iter().zip(args) {
            if !param.hint.admits(arg) {
                return Err(ServiceCallError::BadArguments(format!(
                    "{}: parameter '{}' expects {:?}, got {}",
                    self.name,
                    param.name,
                    param.hint,
                    arg.type_name()
                )));
            }
        }
        Ok(())
    }
}

/// The shippable description of a service interface: what R-OSGi transfers
/// so the client can build a proxy (about 2 kB for the paper's prototypes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceInterfaceDesc {
    /// Fully qualified interface name, e.g. `"apps.MouseController"`.
    pub name: String,
    /// The method table.
    pub methods: Vec<MethodSpec>,
}

impl ServiceInterfaceDesc {
    /// Creates an interface description.
    pub fn new(name: impl Into<String>, methods: Vec<MethodSpec>) -> Self {
        ServiceInterfaceDesc {
            name: name.into(),
            methods,
        }
    }

    /// Finds a method by name.
    pub fn method(&self, name: &str) -> Option<&MethodSpec> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Encodes to the compact wire format (the bytes whose size Table 1
    /// reports as "Acquire service interface").
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str(&self.name);
        w.put_varint(self.methods.len() as u64);
        for m in &self.methods {
            w.put_str(&m.name);
            w.put_varint(m.params.len() as u64);
            for p in &m.params {
                w.put_str(&p.name);
                w.put_u8(p.hint.to_tag());
            }
            w.put_u8(m.returns.to_tag());
            w.put_str(&m.doc);
        }
        w.into_bytes()
    }

    /// Decodes from the wire format.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(bytes);
        let desc = Self::decode_from(&mut r)?;
        Ok(desc)
    }

    /// Decodes from a reader positioned at an encoded interface.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let name = r.str()?.to_owned();
        let n_methods = r.varint()? as usize;
        let mut methods = Vec::with_capacity(n_methods.min(1024));
        for _ in 0..n_methods {
            let m_name = r.str()?.to_owned();
            let n_params = r.varint()? as usize;
            let mut params = Vec::with_capacity(n_params.min(256));
            for _ in 0..n_params {
                let p_name = r.str()?.to_owned();
                let hint = TypeHint::from_tag(r.u8()?)?;
                params.push(ParamSpec { name: p_name, hint });
            }
            let returns = TypeHint::from_tag(r.u8()?)?;
            let doc = r.str()?.to_owned();
            methods.push(MethodSpec {
                name: m_name,
                params,
                returns,
                doc,
            });
        }
        Ok(ServiceInterfaceDesc { name, methods })
    }

    /// Encodes the interface into an existing writer.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_raw(&self.encode());
    }
}

/// A handle to a registered service: its id, interfaces, and properties.
///
/// References are snapshots — properties reflect the registration at lookup
/// time, like `ServiceReference` objects in OSGi. The interface list and
/// property map are shared (`Arc`) with the registration itself, so looking
/// up and cloning references never deep-copies either — what makes lease
/// refreshes and registry scans cheap.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReference {
    id: ServiceId,
    interfaces: Arc<Vec<String>>,
    properties: Arc<Properties>,
}

impl ServiceReference {
    #[cfg(test)]
    pub(crate) fn new(id: ServiceId, interfaces: Vec<String>, properties: Properties) -> Self {
        ServiceReference::new_shared(id, Arc::new(interfaces), Arc::new(properties))
    }

    pub(crate) fn new_shared(
        id: ServiceId,
        interfaces: Arc<Vec<String>>,
        properties: Arc<Properties>,
    ) -> Self {
        ServiceReference {
            id,
            interfaces,
            properties,
        }
    }

    /// The service id.
    pub fn id(&self) -> ServiceId {
        self.id
    }

    /// Interfaces the service is registered under.
    pub fn interfaces(&self) -> &[String] {
        &self.interfaces
    }

    /// The shared interface list (clone is a reference-count bump).
    pub fn shared_interfaces(&self) -> &Arc<Vec<String>> {
        &self.interfaces
    }

    /// The registration properties (including `service.id` and
    /// `objectClass`).
    pub fn properties(&self) -> &Properties {
        &self.properties
    }

    /// The shared property map (clone is a reference-count bump).
    pub fn shared_properties(&self) -> &Arc<Properties> {
        &self.properties
    }

    /// The ranking used for `get_service` tie-breaking.
    pub fn ranking(&self) -> i64 {
        self.properties.ranking()
    }

    /// Whether this reference is a remote proxy installed by R-OSGi.
    pub fn is_remote_proxy(&self) -> bool {
        self.properties
            .get_bool(Properties::REMOTE_PROXY)
            .unwrap_or(false)
    }
}

impl fmt::Display for ServiceReference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.id, self.interfaces.join(", "))
    }
}

/// Shared handle to a service object.
pub type ServiceObject = Arc<dyn Service>;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_interface() -> ServiceInterfaceDesc {
        ServiceInterfaceDesc::new(
            "apps.MouseController",
            vec![
                MethodSpec::new(
                    "move",
                    vec![
                        ParamSpec::new("dx", TypeHint::I64),
                        ParamSpec::new("dy", TypeHint::I64),
                    ],
                    TypeHint::Unit,
                    "Move the pointer by a relative offset.",
                ),
                MethodSpec::new("click", vec![], TypeHint::Unit, "Press the primary button."),
                MethodSpec::new(
                    "screenshot",
                    vec![],
                    TypeHint::Bytes,
                    "Fetch a downscaled RGB snapshot of the screen.",
                ),
            ],
        )
    }

    #[test]
    fn interface_round_trips_through_wire_format() {
        let desc = sample_interface();
        let bytes = desc.encode();
        let back = ServiceInterfaceDesc::decode(&bytes).unwrap();
        assert_eq!(desc, back);
    }

    #[test]
    fn interface_encoding_is_compact() {
        // The paper ships ~2 kB per service interface; ours should be of
        // the same order for a comparable method table, not 10x larger.
        let bytes = sample_interface().encode();
        assert!(bytes.len() < 512, "encoded size {}", bytes.len());
        assert!(bytes.len() > 50);
    }

    #[test]
    fn truncated_interface_fails_to_decode() {
        let bytes = sample_interface().encode();
        assert!(ServiceInterfaceDesc::decode(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn method_lookup_and_arg_checking() {
        let desc = sample_interface();
        let mv = desc.method("move").unwrap();
        assert!(mv.check_args(&[Value::I64(1), Value::I64(2)]).is_ok());
        assert!(matches!(
            mv.check_args(&[Value::I64(1)]),
            Err(ServiceCallError::BadArguments(_))
        ));
        assert!(matches!(
            mv.check_args(&[Value::from("x"), Value::I64(2)]),
            Err(ServiceCallError::BadArguments(_))
        ));
        assert!(desc.method("warp").is_none());
    }

    #[test]
    fn type_hints_admit_expected_values() {
        assert!(TypeHint::Any.admits(&Value::Unit));
        assert!(TypeHint::F64.admits(&Value::I64(3))); // widening
        assert!(!TypeHint::I64.admits(&Value::F64(3.0)));
        assert!(TypeHint::Struct.admits(&Value::structure("t.T", [("a", 1i64)])));
        assert!(!TypeHint::Struct.admits(&Value::Unit));
    }

    #[test]
    fn fn_service_invokes_closure() {
        let svc = FnService::new(|m, _| Ok(Value::from(m)));
        assert_eq!(svc.invoke("x", &[]).unwrap(), Value::from("x"));
        assert!(svc.describe().is_none());
        let svc = svc.with_description(sample_interface());
        assert_eq!(svc.describe().unwrap().name, "apps.MouseController");
    }

    #[test]
    fn service_id_display() {
        assert_eq!(ServiceId::from_raw(7).to_string(), "service#7");
        assert_eq!(ServiceId::from_raw(7).as_raw(), 7);
    }
}
