//! Bundles: the unit of modularity and lifecycle.
//!
//! A bundle encapsulates part of an application's functionality; its
//! lifecycle is controlled individually at runtime so that "each single
//! functional module can be updated with a newer version without restarting
//! the application" (paper, §2). AlfredO leans on the lifecycle heavily:
//! proxy bundles for leased services are installed on the fly and
//! uninstalled the moment an interaction ends.

use std::fmt;
use std::sync::Arc;

use crate::error::OsgiError;
use crate::events::EventAdmin;
use crate::framework::Framework;
use crate::properties::Properties;
use crate::registry::{ServiceRegistration, ServiceRegistry};
use crate::service::Service;

/// A framework-unique bundle identifier. Bundle 0 is the system bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BundleId(u64);

impl BundleId {
    /// The system bundle (the framework itself).
    pub const SYSTEM: BundleId = BundleId(0);

    /// Constructs an id from its raw value.
    pub const fn from_raw(raw: u64) -> Self {
        BundleId(raw)
    }

    /// The raw value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BundleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bundle#{}", self.0)
    }
}

/// The OSGi bundle lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BundleState {
    /// Installed but dependencies not yet checked.
    Installed,
    /// Dependencies satisfied; ready to start.
    Resolved,
    /// The activator's `start` hook is running.
    Starting,
    /// Running.
    Active,
    /// The activator's `stop` hook is running.
    Stopping,
    /// Removed from the framework; terminal.
    Uninstalled,
}

impl BundleState {
    /// Whether a bundle in this state may be started.
    pub fn can_start(self) -> bool {
        matches!(self, BundleState::Installed | BundleState::Resolved)
    }

    /// Whether a bundle in this state may be stopped.
    pub fn can_stop(self) -> bool {
        self == BundleState::Active
    }

    /// Whether the state is terminal.
    pub fn is_uninstalled(self) -> bool {
        self == BundleState::Uninstalled
    }
}

impl fmt::Display for BundleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BundleState::Installed => "INSTALLED",
            BundleState::Resolved => "RESOLVED",
            BundleState::Starting => "STARTING",
            BundleState::Active => "ACTIVE",
            BundleState::Stopping => "STOPPING",
            BundleState::Uninstalled => "UNINSTALLED",
        };
        f.write_str(s)
    }
}

/// The start/stop hooks of a bundle.
///
/// In the JVM original, the activator class is loaded dynamically from the
/// bundle JAR. Here activators are statically compiled and reached through
/// the [`crate::CodeRegistry`] by symbolic key when a bundle arrives as a
/// serialized artifact (see `DESIGN.md` §2 for why this substitution
/// preserves the observable behaviour).
pub trait BundleActivator: Send {
    /// Called when the bundle starts; typically registers services.
    ///
    /// # Errors
    ///
    /// Returning an error aborts the start; the bundle falls back to
    /// `Resolved` and the error surfaces as
    /// [`OsgiError::ActivatorFailed`].
    fn start(&mut self, ctx: &BundleContext) -> Result<(), String>;

    /// Called when the bundle stops; services registered by the bundle are
    /// swept by the framework afterwards regardless.
    ///
    /// # Errors
    ///
    /// Errors are reported as framework events but do not block the stop.
    fn stop(&mut self, ctx: &BundleContext) -> Result<(), String>;
}

/// A no-op activator for bundles that only carry data entries.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopActivator;

impl BundleActivator for NoopActivator {
    fn start(&mut self, _ctx: &BundleContext) -> Result<(), String> {
        Ok(())
    }

    fn stop(&mut self, _ctx: &BundleContext) -> Result<(), String> {
        Ok(())
    }
}

/// The execution context handed to a bundle's activator: its identity plus
/// access to the framework's registry and event bus.
#[derive(Clone)]
pub struct BundleContext {
    framework: Framework,
    bundle: BundleId,
}

impl BundleContext {
    pub(crate) fn new(framework: Framework, bundle: BundleId) -> Self {
        BundleContext { framework, bundle }
    }

    /// The bundle this context belongs to.
    pub fn bundle_id(&self) -> BundleId {
        self.bundle
    }

    /// The owning framework.
    pub fn framework(&self) -> &Framework {
        &self.framework
    }

    /// The framework's service registry.
    pub fn registry(&self) -> &ServiceRegistry {
        self.framework.registry()
    }

    /// The framework's event bus.
    pub fn event_admin(&self) -> &EventAdmin {
        self.framework.event_admin()
    }

    /// Registers a service owned by this bundle. It is unregistered
    /// automatically when the bundle stops.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoInterfaces`] if `interfaces` is empty.
    pub fn register_service(
        &self,
        interfaces: &[&str],
        service: Arc<dyn Service>,
        properties: Properties,
    ) -> Result<ServiceRegistration, OsgiError> {
        self.framework
            .registry()
            .register(self.bundle, interfaces, service, properties)
    }

    /// Convenience lookup of the best service for `interface`.
    pub fn get_service(&self, interface: &str) -> Option<Arc<dyn Service>> {
        self.framework.registry().get_service(interface)
    }
}

impl fmt::Debug for BundleContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BundleContext")
            .field("bundle", &self.bundle)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(BundleState::Installed.can_start());
        assert!(BundleState::Resolved.can_start());
        assert!(!BundleState::Active.can_start());
        assert!(BundleState::Active.can_stop());
        assert!(!BundleState::Resolved.can_stop());
        assert!(BundleState::Uninstalled.is_uninstalled());
    }

    #[test]
    fn ids_and_display() {
        assert_eq!(BundleId::SYSTEM.as_raw(), 0);
        assert_eq!(BundleId::from_raw(4).to_string(), "bundle#4");
        assert_eq!(BundleState::Active.to_string(), "ACTIVE");
    }
}
