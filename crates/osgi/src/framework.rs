//! The framework: bundle management and lifecycle driving.
//!
//! A [`Framework`] owns the set of installed bundles, the service registry,
//! and the event bus. It is the Rust counterpart of the paper's Concierge
//! instance: one framework runs on the phone, one on each target device.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use alfredo_sync::Mutex;

use crate::bundle::{BundleActivator, BundleContext, BundleId, BundleState};
use crate::error::OsgiError;
use crate::events::{BundleEvent, EventAdmin, FrameworkEvent};
use crate::registry::ServiceRegistry;

/// Static metadata of an installed bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bundle {
    /// The bundle's id.
    pub id: BundleId,
    /// Reverse-domain symbolic name, e.g. `"ch.ethz.alfredo.core"`.
    pub symbolic_name: String,
    /// Version string.
    pub version: String,
    /// Current lifecycle state.
    pub state: BundleState,
}

struct BundleRecord {
    meta: Bundle,
    activator: Option<Box<dyn BundleActivator>>,
    /// Named data entries carried by the bundle's artifact (descriptor
    /// files, UI descriptions…).
    entries: BTreeMap<String, Vec<u8>>,
}

type BundleListener = Arc<dyn Fn(&BundleEvent) + Send + Sync>;
type FrameworkListener = Arc<dyn Fn(&FrameworkEvent) + Send + Sync>;

struct Inner {
    bundles: Mutex<BTreeMap<BundleId, BundleRecord>>,
    next_bundle: Mutex<u64>,
    registry: ServiceRegistry,
    event_admin: EventAdmin,
    bundle_listeners: Mutex<Vec<(u64, BundleListener)>>,
    framework_listeners: Mutex<Vec<(u64, FrameworkListener)>>,
    next_listener: Mutex<u64>,
}

/// A running module framework. Cloning yields another handle to the same
/// instance.
///
/// # Example
///
/// ```
/// use alfredo_osgi::{BundleActivator, BundleContext, BundleState, Framework};
///
/// struct Hello;
/// impl BundleActivator for Hello {
///     fn start(&mut self, _ctx: &BundleContext) -> Result<(), String> {
///         Ok(())
///     }
///     fn stop(&mut self, _ctx: &BundleContext) -> Result<(), String> {
///         Ok(())
///     }
/// }
///
/// # fn main() -> Result<(), alfredo_osgi::OsgiError> {
/// let fw = Framework::new();
/// let id = fw.install("demo.hello", "1.0", Box::new(Hello));
/// fw.start_bundle(id)?;
/// assert_eq!(fw.bundle(id).unwrap().state, BundleState::Active);
/// fw.stop_bundle(id)?;
/// fw.uninstall(id)?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Framework {
    inner: Arc<Inner>,
}

impl Default for Framework {
    fn default() -> Self {
        Framework::new()
    }
}

impl Framework {
    /// Creates a framework with an empty registry; bundle 0 (the system
    /// bundle) is installed and active.
    pub fn new() -> Self {
        let fw = Framework {
            inner: Arc::new(Inner {
                bundles: Mutex::new(BTreeMap::new()),
                next_bundle: Mutex::new(1),
                registry: ServiceRegistry::new(),
                event_admin: EventAdmin::new(),
                bundle_listeners: Mutex::new(Vec::new()),
                framework_listeners: Mutex::new(Vec::new()),
                next_listener: Mutex::new(0),
            }),
        };
        fw.inner.bundles.lock().insert(
            BundleId::SYSTEM,
            BundleRecord {
                meta: Bundle {
                    id: BundleId::SYSTEM,
                    symbolic_name: "system.bundle".into(),
                    version: env!("CARGO_PKG_VERSION").into(),
                    state: BundleState::Active,
                },
                activator: None,
                entries: BTreeMap::new(),
            },
        );
        fw
    }

    /// The framework's service registry.
    pub fn registry(&self) -> &ServiceRegistry {
        &self.inner.registry
    }

    /// The framework's event bus.
    pub fn event_admin(&self) -> &EventAdmin {
        &self.inner.event_admin
    }

    /// A context acting on behalf of the system bundle.
    pub fn system_context(&self) -> BundleContext {
        BundleContext::new(self.clone(), BundleId::SYSTEM)
    }

    /// A context acting on behalf of `bundle`.
    pub fn context_for(&self, bundle: BundleId) -> BundleContext {
        BundleContext::new(self.clone(), bundle)
    }

    /// Installs a bundle with the given activator; it starts in
    /// [`BundleState::Installed`].
    pub fn install(
        &self,
        symbolic_name: impl Into<String>,
        version: impl Into<String>,
        activator: Box<dyn BundleActivator>,
    ) -> BundleId {
        self.install_with_entries(symbolic_name, version, activator, BTreeMap::new())
    }

    /// Installs a bundle carrying named data entries (the contents of a
    /// shipped [`crate::BundleArtifact`]).
    pub fn install_with_entries(
        &self,
        symbolic_name: impl Into<String>,
        version: impl Into<String>,
        activator: Box<dyn BundleActivator>,
        entries: BTreeMap<String, Vec<u8>>,
    ) -> BundleId {
        let id = {
            let mut next = self.inner.next_bundle.lock();
            let id = BundleId::from_raw(*next);
            *next += 1;
            id
        };
        self.inner.bundles.lock().insert(
            id,
            BundleRecord {
                meta: Bundle {
                    id,
                    symbolic_name: symbolic_name.into(),
                    version: version.into(),
                    state: BundleState::Installed,
                },
                activator: Some(activator),
                entries,
            },
        );
        self.emit_bundle(BundleEvent {
            bundle: id,
            state: BundleState::Installed,
        });
        id
    }

    /// Returns a snapshot of a bundle's metadata.
    pub fn bundle(&self, id: BundleId) -> Option<Bundle> {
        self.inner.bundles.lock().get(&id).map(|r| r.meta.clone())
    }

    /// Looks up a bundle by symbolic name.
    pub fn bundle_by_name(&self, symbolic_name: &str) -> Option<Bundle> {
        self.inner
            .bundles
            .lock()
            .values()
            .find(|r| r.meta.symbolic_name == symbolic_name)
            .map(|r| r.meta.clone())
    }

    /// Snapshots of all installed bundles, in id order.
    pub fn bundles(&self) -> Vec<Bundle> {
        self.inner
            .bundles
            .lock()
            .values()
            .map(|r| r.meta.clone())
            .collect()
    }

    /// Reads a named data entry from a bundle's artifact contents.
    pub fn bundle_entry(&self, id: BundleId, name: &str) -> Option<Vec<u8>> {
        self.inner
            .bundles
            .lock()
            .get(&id)
            .and_then(|r| r.entries.get(name).cloned())
    }

    /// Resolves a bundle: `Installed` → `Resolved`. (Dependency checking is
    /// a no-op here; artifacts validate their requirements at install.)
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoSuchBundle`] or
    /// [`OsgiError::InvalidStateTransition`].
    pub fn resolve(&self, id: BundleId) -> Result<(), OsgiError> {
        let mut bundles = self.inner.bundles.lock();
        let rec = bundles.get_mut(&id).ok_or(OsgiError::NoSuchBundle(id))?;
        match rec.meta.state {
            BundleState::Installed => {
                rec.meta.state = BundleState::Resolved;
                let ev = BundleEvent {
                    bundle: id,
                    state: BundleState::Resolved,
                };
                drop(bundles);
                self.emit_bundle(ev);
                Ok(())
            }
            BundleState::Resolved => Ok(()),
            from => Err(OsgiError::InvalidStateTransition {
                bundle: id,
                from,
                operation: "resolve",
            }),
        }
    }

    /// Starts a bundle: `Installed`/`Resolved` → `Starting` → `Active`.
    /// On activator failure the bundle falls back to `Resolved`.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoSuchBundle`],
    /// [`OsgiError::InvalidStateTransition`], or
    /// [`OsgiError::ActivatorFailed`].
    pub fn start_bundle(&self, id: BundleId) -> Result<(), OsgiError> {
        // Phase 1: transition to Starting and take the activator out, so
        // the activator runs without the bundle table locked.
        let mut activator = {
            let mut bundles = self.inner.bundles.lock();
            let rec = bundles.get_mut(&id).ok_or(OsgiError::NoSuchBundle(id))?;
            if !rec.meta.state.can_start() {
                return Err(OsgiError::InvalidStateTransition {
                    bundle: id,
                    from: rec.meta.state,
                    operation: "start",
                });
            }
            rec.meta.state = BundleState::Starting;
            rec.activator.take()
        };
        self.emit_bundle(BundleEvent {
            bundle: id,
            state: BundleState::Starting,
        });

        let ctx = self.context_for(id);
        let result = match activator.as_mut() {
            Some(act) => act.start(&ctx),
            None => Ok(()),
        };

        // Phase 2: restore the activator and finalize the state.
        let final_state = if result.is_ok() {
            BundleState::Active
        } else {
            BundleState::Resolved
        };
        {
            let mut bundles = self.inner.bundles.lock();
            if let Some(rec) = bundles.get_mut(&id) {
                rec.activator = activator;
                rec.meta.state = final_state;
            }
        }
        self.emit_bundle(BundleEvent {
            bundle: id,
            state: final_state,
        });
        result.map_err(|message| {
            let err = OsgiError::ActivatorFailed {
                bundle: id,
                message: message.clone(),
            };
            self.emit_framework(FrameworkEvent::Error {
                bundle: Some(id),
                message,
            });
            err
        })
    }

    /// Stops a bundle: `Active` → `Stopping` → `Resolved`. All services
    /// registered by the bundle are unregistered, even if the activator's
    /// stop hook fails.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoSuchBundle`] or
    /// [`OsgiError::InvalidStateTransition`]. Activator stop failures are
    /// reported as framework events, not errors.
    pub fn stop_bundle(&self, id: BundleId) -> Result<(), OsgiError> {
        let mut activator = {
            let mut bundles = self.inner.bundles.lock();
            let rec = bundles.get_mut(&id).ok_or(OsgiError::NoSuchBundle(id))?;
            if !rec.meta.state.can_stop() {
                return Err(OsgiError::InvalidStateTransition {
                    bundle: id,
                    from: rec.meta.state,
                    operation: "stop",
                });
            }
            rec.meta.state = BundleState::Stopping;
            rec.activator.take()
        };
        self.emit_bundle(BundleEvent {
            bundle: id,
            state: BundleState::Stopping,
        });

        let ctx = self.context_for(id);
        if let Some(act) = activator.as_mut() {
            if let Err(message) = act.stop(&ctx) {
                self.emit_framework(FrameworkEvent::Error {
                    bundle: Some(id),
                    message,
                });
            }
        }
        // Sweep services owned by the bundle (OSGi does this for leaked
        // registrations).
        self.inner.registry.unregister_bundle(id);
        {
            let mut bundles = self.inner.bundles.lock();
            if let Some(rec) = bundles.get_mut(&id) {
                rec.activator = activator;
                rec.meta.state = BundleState::Resolved;
            }
        }
        self.emit_bundle(BundleEvent {
            bundle: id,
            state: BundleState::Resolved,
        });
        Ok(())
    }

    /// Updates a bundle in place: if active, it is stopped (services
    /// swept), its activator and version are replaced, and it is started
    /// again — "each single functional module can be updated with a newer
    /// version without restarting the application" (paper §2). If the
    /// bundle was not active it is only replaced, not started.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoSuchBundle`], or start/stop errors from the
    /// old or new activator. On a failed restart the bundle is left
    /// `Resolved` with the *new* activator installed.
    pub fn update_bundle(
        &self,
        id: BundleId,
        version: impl Into<String>,
        activator: Box<dyn BundleActivator>,
    ) -> Result<(), OsgiError> {
        let was_active =
            self.bundle(id).ok_or(OsgiError::NoSuchBundle(id))?.state == BundleState::Active;
        if was_active {
            self.stop_bundle(id)?;
        }
        {
            let mut bundles = self.inner.bundles.lock();
            let rec = bundles.get_mut(&id).ok_or(OsgiError::NoSuchBundle(id))?;
            rec.activator = Some(activator);
            rec.meta.version = version.into();
        }
        if was_active {
            self.start_bundle(id)?;
        }
        Ok(())
    }

    /// Uninstalls a bundle, stopping it first if active. Terminal.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoSuchBundle`] if unknown, or an error from the
    /// implicit stop.
    pub fn uninstall(&self, id: BundleId) -> Result<(), OsgiError> {
        let state = self.bundle(id).ok_or(OsgiError::NoSuchBundle(id))?.state;
        if state == BundleState::Active {
            self.stop_bundle(id)?;
        }
        // Sweep any services registered while not Active, then remove.
        self.inner.registry.unregister_bundle(id);
        self.inner.bundles.lock().remove(&id);
        self.emit_bundle(BundleEvent {
            bundle: id,
            state: BundleState::Uninstalled,
        });
        Ok(())
    }

    /// Registers a bundle lifecycle listener; returns a token for removal.
    pub fn add_bundle_listener<F>(&self, listener: F) -> u64
    where
        F: Fn(&BundleEvent) + Send + Sync + 'static,
    {
        let mut next = self.inner.next_listener.lock();
        let id = *next;
        *next += 1;
        self.inner
            .bundle_listeners
            .lock()
            .push((id, Arc::new(listener)));
        id
    }

    /// Removes a bundle lifecycle listener.
    pub fn remove_bundle_listener(&self, id: u64) {
        self.inner.bundle_listeners.lock().retain(|(i, _)| *i != id);
    }

    /// Registers a framework event listener; returns a token for removal.
    pub fn add_framework_listener<F>(&self, listener: F) -> u64
    where
        F: Fn(&FrameworkEvent) + Send + Sync + 'static,
    {
        let mut next = self.inner.next_listener.lock();
        let id = *next;
        *next += 1;
        self.inner
            .framework_listeners
            .lock()
            .push((id, Arc::new(listener)));
        id
    }

    /// Removes a framework event listener.
    pub fn remove_framework_listener(&self, id: u64) {
        self.inner
            .framework_listeners
            .lock()
            .retain(|(i, _)| *i != id);
    }

    fn emit_bundle(&self, event: BundleEvent) {
        // Lifecycle transitions also go to the process-wide obs hub so a
        // trace of a session can show which bundles moved underneath it.
        alfredo_obs::event("osgi.lifecycle", "bundle", || {
            vec![
                ("bundle".to_string(), format!("{:?}", event.bundle)),
                ("state".to_string(), format!("{:?}", event.state)),
            ]
        });
        let listeners: Vec<BundleListener> = self
            .inner
            .bundle_listeners
            .lock()
            .iter()
            .map(|(_, l)| Arc::clone(l))
            .collect();
        for l in listeners {
            l(&event);
        }
    }

    /// Delivers a framework event to the registered listeners. Public so
    /// that higher layers (e.g. the remote-service layer) can report
    /// framework-level errors through the standard channel.
    pub fn emit_framework(&self, event: FrameworkEvent) {
        alfredo_obs::event("osgi.lifecycle", "framework", || {
            vec![("event".to_string(), format!("{event:?}"))]
        });
        let listeners: Vec<FrameworkListener> = self
            .inner
            .framework_listeners
            .lock()
            .iter()
            .map(|(_, l)| Arc::clone(l))
            .collect();
        for l in listeners {
            l(&event);
        }
    }
}

impl fmt::Debug for Framework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Framework")
            .field("bundles", &self.inner.bundles.lock().len())
            .field("services", &self.inner.registry.service_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::Properties;
    use crate::service::FnService;
    use crate::value::Value;
    use alfredo_sync::Mutex as PlMutex;

    struct Recorder {
        log: Arc<PlMutex<Vec<String>>>,
        fail_start: bool,
        register: bool,
    }

    impl BundleActivator for Recorder {
        fn start(&mut self, ctx: &BundleContext) -> Result<(), String> {
            self.log.lock().push("start".into());
            if self.fail_start {
                return Err("refusing to start".into());
            }
            if self.register {
                ctx.register_service(
                    &["rec.Service"],
                    Arc::new(FnService::new(|_, _| Ok(Value::Unit))),
                    Properties::new(),
                )
                .map_err(|e| e.to_string())?;
            }
            Ok(())
        }

        fn stop(&mut self, _ctx: &BundleContext) -> Result<(), String> {
            self.log.lock().push("stop".into());
            Ok(())
        }
    }

    fn recorder(
        fw: &Framework,
        fail_start: bool,
        register: bool,
    ) -> (BundleId, Arc<PlMutex<Vec<String>>>) {
        let log = Arc::new(PlMutex::new(Vec::new()));
        let id = fw.install(
            "test.recorder",
            "1.0",
            Box::new(Recorder {
                log: Arc::clone(&log),
                fail_start,
                register,
            }),
        );
        (id, log)
    }

    #[test]
    fn full_lifecycle() {
        let fw = Framework::new();
        let (id, log) = recorder(&fw, false, false);
        assert_eq!(fw.bundle(id).unwrap().state, BundleState::Installed);
        fw.resolve(id).unwrap();
        assert_eq!(fw.bundle(id).unwrap().state, BundleState::Resolved);
        fw.start_bundle(id).unwrap();
        assert_eq!(fw.bundle(id).unwrap().state, BundleState::Active);
        fw.stop_bundle(id).unwrap();
        assert_eq!(fw.bundle(id).unwrap().state, BundleState::Resolved);
        fw.uninstall(id).unwrap();
        assert!(fw.bundle(id).is_none());
        assert_eq!(*log.lock(), vec!["start", "stop"]);
    }

    #[test]
    fn start_from_installed_skips_explicit_resolve() {
        let fw = Framework::new();
        let (id, _) = recorder(&fw, false, false);
        fw.start_bundle(id).unwrap();
        assert_eq!(fw.bundle(id).unwrap().state, BundleState::Active);
    }

    #[test]
    fn failed_start_falls_back_to_resolved() {
        let fw = Framework::new();
        let errors = Arc::new(PlMutex::new(Vec::new()));
        let e = Arc::clone(&errors);
        fw.add_framework_listener(move |ev| {
            if let FrameworkEvent::Error { message, .. } = ev {
                e.lock().push(message.clone());
            }
        });
        let (id, _) = recorder(&fw, true, false);
        let err = fw.start_bundle(id).unwrap_err();
        assert!(matches!(err, OsgiError::ActivatorFailed { .. }));
        assert_eq!(fw.bundle(id).unwrap().state, BundleState::Resolved);
        assert_eq!(errors.lock().len(), 1);
    }

    #[test]
    fn stop_sweeps_bundle_services() {
        let fw = Framework::new();
        let (id, _) = recorder(&fw, false, true);
        fw.start_bundle(id).unwrap();
        assert!(fw.registry().get_service("rec.Service").is_some());
        fw.stop_bundle(id).unwrap();
        assert!(fw.registry().get_service("rec.Service").is_none());
    }

    #[test]
    fn uninstall_active_bundle_stops_it_first() {
        let fw = Framework::new();
        let (id, log) = recorder(&fw, false, true);
        fw.start_bundle(id).unwrap();
        fw.uninstall(id).unwrap();
        assert!(fw.registry().get_service("rec.Service").is_none());
        assert_eq!(*log.lock(), vec!["start", "stop"]);
    }

    #[test]
    fn invalid_transitions_are_rejected() {
        let fw = Framework::new();
        let (id, _) = recorder(&fw, false, false);
        // Stop before start.
        assert!(matches!(
            fw.stop_bundle(id),
            Err(OsgiError::InvalidStateTransition { .. })
        ));
        fw.start_bundle(id).unwrap();
        // Double start.
        assert!(matches!(
            fw.start_bundle(id),
            Err(OsgiError::InvalidStateTransition { .. })
        ));
        // Unknown bundle.
        assert!(matches!(
            fw.start_bundle(BundleId::from_raw(999)),
            Err(OsgiError::NoSuchBundle(_))
        ));
    }

    #[test]
    fn bundle_events_trace_lifecycle() {
        let fw = Framework::new();
        let states = Arc::new(PlMutex::new(Vec::new()));
        let s = Arc::clone(&states);
        fw.add_bundle_listener(move |e| s.lock().push(e.state));
        let (id, _) = recorder(&fw, false, false);
        fw.start_bundle(id).unwrap();
        fw.stop_bundle(id).unwrap();
        fw.uninstall(id).unwrap();
        assert_eq!(
            *states.lock(),
            vec![
                BundleState::Installed,
                BundleState::Starting,
                BundleState::Active,
                BundleState::Stopping,
                BundleState::Resolved,
                BundleState::Uninstalled,
            ]
        );
    }

    #[test]
    fn update_replaces_activator_without_framework_restart() {
        let fw = Framework::new();
        let (id, _) = recorder(&fw, false, true);
        fw.start_bundle(id).unwrap();
        assert!(fw.registry().get_service("rec.Service").is_some());
        assert_eq!(fw.bundle(id).unwrap().version, "1.0");

        // v2 registers a different service.
        fw.update_bundle(id, "2.0", Box::new(RegisterOther))
            .unwrap();
        let meta = fw.bundle(id).unwrap();
        assert_eq!(meta.version, "2.0");
        assert_eq!(meta.state, BundleState::Active, "restarted after update");
        // The old service is gone, the new one is live; other bundles and
        // the framework itself never stopped.
        assert!(fw.registry().get_service("rec.Service").is_none());
        assert!(fw.registry().get_service("rec.ServiceV2").is_some());
    }

    struct RegisterOther;

    impl BundleActivator for RegisterOther {
        fn start(&mut self, ctx: &BundleContext) -> Result<(), String> {
            ctx.register_service(
                &["rec.ServiceV2"],
                Arc::new(FnService::new(|_, _| Ok(Value::Unit))),
                Properties::new(),
            )
            .map_err(|e| e.to_string())?;
            Ok(())
        }

        fn stop(&mut self, _ctx: &BundleContext) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn update_of_inactive_bundle_does_not_start_it() {
        let fw = Framework::new();
        let (id, _) = recorder(&fw, false, false);
        fw.update_bundle(id, "2.0", Box::new(RegisterOther))
            .unwrap();
        assert_eq!(fw.bundle(id).unwrap().state, BundleState::Installed);
        assert!(fw.registry().get_service("rec.ServiceV2").is_none());
        // It starts with the new activator on demand.
        fw.start_bundle(id).unwrap();
        assert!(fw.registry().get_service("rec.ServiceV2").is_some());
    }

    #[test]
    fn update_of_unknown_bundle_fails() {
        let fw = Framework::new();
        assert!(matches!(
            fw.update_bundle(BundleId::from_raw(404), "2.0", Box::new(RegisterOther)),
            Err(OsgiError::NoSuchBundle(_))
        ));
    }

    #[test]
    fn system_bundle_exists_and_is_active() {
        let fw = Framework::new();
        let sys = fw.bundle(BundleId::SYSTEM).unwrap();
        assert_eq!(sys.state, BundleState::Active);
        assert_eq!(fw.bundles().len(), 1);
    }

    #[test]
    fn bundle_lookup_by_name() {
        let fw = Framework::new();
        let (_id, _) = recorder(&fw, false, false);
        assert!(fw.bundle_by_name("test.recorder").is_some());
        assert!(fw.bundle_by_name("missing").is_none());
    }

    #[test]
    fn listener_removal() {
        let fw = Framework::new();
        let count = Arc::new(PlMutex::new(0u32));
        let c = Arc::clone(&count);
        let token = fw.add_bundle_listener(move |_| *c.lock() += 1);
        fw.remove_bundle_listener(token);
        let (_id, _) = recorder(&fw, false, false);
        assert_eq!(*count.lock(), 0);
    }
}
