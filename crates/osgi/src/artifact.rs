//! Shippable bundle artifacts and the code registry.
//!
//! In the JVM original, R-OSGi builds a proxy *bundle* — a JAR with
//! generated classes — ships it, and the receiving framework loads the
//! classes dynamically. Rust links statically, so this crate substitutes a
//! faithful data-level equivalent (`DESIGN.md` §2):
//!
//! * A [`BundleArtifact`] is the serialized form of a bundle: a
//!   [`Manifest`] plus entries that are either **data** (descriptors, UI
//!   descriptions — pure bytes, interpretable, sandbox-safe) or
//!   **activator keys** — symbolic names resolved against the receiving
//!   process's [`CodeRegistry`] of statically compiled activator factories.
//! * The observable lifecycle is unchanged: bytes arrive, the artifact is
//!   *installed* (a bundle appears), *started* (services appear), and
//!   later *uninstalled* (services vanish) — exactly the sequence whose
//!   cost Table 1 of the paper decomposes.
//!
//! The security distinction AlfredO draws — a stateless UI description is
//! sandbox-safe, executable logic requires trust — maps here to
//! [`BundleArtifact::is_code_bearing`].

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use alfredo_sync::Mutex;

use alfredo_net::{ByteReader, ByteWriter};

use crate::bundle::{BundleActivator, BundleContext, BundleId};
use crate::error::OsgiError;
use crate::framework::Framework;

/// Bundle metadata shipped at the head of an artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Reverse-domain symbolic name.
    pub symbolic_name: String,
    /// Version string.
    pub version: String,
    /// Human-readable description.
    pub description: String,
}

impl Manifest {
    /// Creates a manifest.
    pub fn new(
        symbolic_name: impl Into<String>,
        version: impl Into<String>,
        description: impl Into<String>,
    ) -> Self {
        Manifest {
            symbolic_name: symbolic_name.into(),
            version: version.into(),
            description: description.into(),
        }
    }
}

/// One entry of a bundle artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactEntry {
    /// Executable behaviour, referenced symbolically: the receiving side
    /// must hold a factory for `key` in its [`CodeRegistry`].
    Activator {
        /// Registry key, e.g. `"rosgi.proxy/v1"`.
        key: String,
    },
    /// Inert named data (descriptors, UI descriptions, images…).
    Data {
        /// Entry name, e.g. `"descriptor.bin"`.
        name: String,
        /// Entry contents.
        bytes: Vec<u8>,
    },
}

const TAG_ACTIVATOR: u8 = 1;
const TAG_DATA: u8 = 2;

/// A serialized, shippable bundle.
///
/// # Example
///
/// ```
/// use alfredo_osgi::{ArtifactEntry, BundleArtifact, Manifest};
///
/// let artifact = BundleArtifact::new(Manifest::new("demo", "1.0", "a demo"))
///     .with_data("descriptor.bin", vec![1, 2, 3]);
/// assert!(!artifact.is_code_bearing());
/// let bytes = artifact.encode();
/// let back = BundleArtifact::decode(&bytes).unwrap();
/// assert_eq!(artifact, back);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleArtifact {
    /// The manifest.
    pub manifest: Manifest,
    /// Ordered entries.
    pub entries: Vec<ArtifactEntry>,
}

impl BundleArtifact {
    /// Creates an artifact with no entries.
    pub fn new(manifest: Manifest) -> Self {
        BundleArtifact {
            manifest,
            entries: Vec::new(),
        }
    }

    /// Builder-style: adds an activator-key entry.
    pub fn with_activator(mut self, key: impl Into<String>) -> Self {
        self.entries
            .push(ArtifactEntry::Activator { key: key.into() });
        self
    }

    /// Builder-style: adds a data entry.
    pub fn with_data(mut self, name: impl Into<String>, bytes: Vec<u8>) -> Self {
        self.entries.push(ArtifactEntry::Data {
            name: name.into(),
            bytes,
        });
        self
    }

    /// Whether the artifact references executable behaviour. Data-only
    /// artifacts are sandbox-safe in AlfredO's security model.
    pub fn is_code_bearing(&self) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e, ArtifactEntry::Activator { .. }))
    }

    /// The activator keys, in order.
    pub fn activator_keys(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter_map(|e| match e {
                ArtifactEntry::Activator { key } => Some(key.as_str()),
                ArtifactEntry::Data { .. } => None,
            })
            .collect()
    }

    /// Looks up a data entry by name.
    pub fn data(&self, name: &str) -> Option<&[u8]> {
        self.entries.iter().find_map(|e| match e {
            ArtifactEntry::Data { name: n, bytes } if n == name => Some(bytes.as_slice()),
            _ => None,
        })
    }

    /// Encodes the artifact to its wire form. The length of this encoding
    /// is the artifact's *file footprint* — the quantity §4.1 of the paper
    /// reports in kBytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str(&self.manifest.symbolic_name);
        w.put_str(&self.manifest.version);
        w.put_str(&self.manifest.description);
        w.put_varint(self.entries.len() as u64);
        for e in &self.entries {
            match e {
                ArtifactEntry::Activator { key } => {
                    w.put_u8(TAG_ACTIVATOR);
                    w.put_str(key);
                }
                ArtifactEntry::Data { name, bytes } => {
                    w.put_u8(TAG_DATA);
                    w.put_str(name);
                    w.put_bytes(bytes);
                }
            }
        }
        w.into_bytes()
    }

    /// Size of the encoded artifact in bytes.
    pub fn footprint(&self) -> usize {
        self.encode().len()
    }

    /// Decodes an artifact from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::MalformedArtifact`] on any decoding failure.
    pub fn decode(bytes: &[u8]) -> Result<Self, OsgiError> {
        let mut r = ByteReader::new(bytes);
        let malformed = |e: alfredo_net::WireError| OsgiError::MalformedArtifact(e.to_string());
        let manifest = Manifest {
            symbolic_name: r.str().map_err(malformed)?.to_owned(),
            version: r.str().map_err(malformed)?.to_owned(),
            description: r.str().map_err(malformed)?.to_owned(),
        };
        let n = r.varint().map_err(malformed)? as usize;
        let mut entries = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let tag = r.u8().map_err(malformed)?;
            match tag {
                TAG_ACTIVATOR => entries.push(ArtifactEntry::Activator {
                    key: r.str().map_err(malformed)?.to_owned(),
                }),
                TAG_DATA => {
                    let name = r.str().map_err(malformed)?.to_owned();
                    let bytes = r.bytes().map_err(malformed)?.to_vec();
                    entries.push(ArtifactEntry::Data { name, bytes });
                }
                other => {
                    return Err(OsgiError::MalformedArtifact(format!(
                        "unknown entry tag {other:#04x}"
                    )))
                }
            }
        }
        if !r.is_empty() {
            return Err(OsgiError::MalformedArtifact(format!(
                "{} trailing bytes",
                r.remaining()
            )));
        }
        Ok(BundleArtifact { manifest, entries })
    }
}

type ActivatorFactory = Arc<dyn Fn() -> Box<dyn BundleActivator> + Send + Sync>;
type ServiceFactory = Arc<dyn Fn() -> Arc<dyn crate::service::Service> + Send + Sync>;

/// The process-local table of activator and service factories, keyed
/// symbolically.
///
/// This is the substitution point for JVM dynamic class loading: shipping a
/// code-bearing artifact only works if the receiver already holds (or
/// trusts and links) the referenced behaviour. Service factories serve the
/// same role for R-OSGi *smart proxies*, whose locally-executing half is
/// statically compiled code referenced by key. Cloning yields another
/// handle to the same table.
#[derive(Clone, Default)]
pub struct CodeRegistry {
    factories: Arc<Mutex<HashMap<String, ActivatorFactory>>>,
    service_factories: Arc<Mutex<HashMap<String, ServiceFactory>>>,
}

impl CodeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        CodeRegistry::default()
    }

    /// Registers a factory under `key`, replacing any previous entry.
    pub fn register<F>(&self, key: impl Into<String>, factory: F)
    where
        F: Fn() -> Box<dyn BundleActivator> + Send + Sync + 'static,
    {
        self.factories.lock().insert(key.into(), Arc::new(factory));
    }

    /// Whether `key` is resolvable.
    pub fn contains(&self, key: &str) -> bool {
        self.factories.lock().contains_key(key)
    }

    /// Instantiates the activator registered under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::UnknownActivatorKey`] if absent.
    pub fn instantiate(&self, key: &str) -> Result<Box<dyn BundleActivator>, OsgiError> {
        let factory = {
            let factories = self.factories.lock();
            factories
                .get(key)
                .cloned()
                .ok_or_else(|| OsgiError::UnknownActivatorKey(key.to_owned()))?
        };
        Ok(factory())
    }

    /// Registered activator keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.factories.lock().keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Registers a service factory under `key` (used for the local half of
    /// R-OSGi smart proxies), replacing any previous entry.
    pub fn register_service<F>(&self, key: impl Into<String>, factory: F)
    where
        F: Fn() -> Arc<dyn crate::service::Service> + Send + Sync + 'static,
    {
        self.service_factories
            .lock()
            .insert(key.into(), Arc::new(factory));
    }

    /// Whether a service factory is registered under `key`.
    pub fn contains_service(&self, key: &str) -> bool {
        self.service_factories.lock().contains_key(key)
    }

    /// Instantiates the service registered under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::UnknownActivatorKey`] if absent.
    pub fn instantiate_service(
        &self,
        key: &str,
    ) -> Result<Arc<dyn crate::service::Service>, OsgiError> {
        let factory = {
            let factories = self.service_factories.lock();
            factories
                .get(key)
                .cloned()
                .ok_or_else(|| OsgiError::UnknownActivatorKey(key.to_owned()))?
        };
        Ok(factory())
    }

    /// Installs `artifact` into `framework`: resolves every activator key,
    /// then installs a bundle carrying the data entries. The bundle is left
    /// in `Installed` state; callers start it explicitly (that's the
    /// "Install proxy bundle" / "Start proxy bundle" split of Table 1).
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::UnknownActivatorKey`] if any key is
    /// unresolvable; in that case nothing is installed.
    pub fn install_artifact(
        &self,
        framework: &Framework,
        artifact: &BundleArtifact,
    ) -> Result<BundleId, OsgiError> {
        let mut activators = Vec::new();
        for key in artifact.activator_keys() {
            activators.push(self.instantiate(key)?);
        }
        let entries: BTreeMap<String, Vec<u8>> = artifact
            .entries
            .iter()
            .filter_map(|e| match e {
                ArtifactEntry::Data { name, bytes } => Some((name.clone(), bytes.clone())),
                ArtifactEntry::Activator { .. } => None,
            })
            .collect();
        let activator: Box<dyn BundleActivator> = Box::new(CompositeActivator { activators });
        Ok(framework.install_with_entries(
            artifact.manifest.symbolic_name.clone(),
            artifact.manifest.version.clone(),
            activator,
            entries,
        ))
    }
}

impl fmt::Debug for CodeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CodeRegistry")
            .field("keys", &self.keys())
            .finish()
    }
}

/// Runs several activators in sequence (artifacts may carry more than one).
struct CompositeActivator {
    activators: Vec<Box<dyn BundleActivator>>,
}

impl BundleActivator for CompositeActivator {
    fn start(&mut self, ctx: &BundleContext) -> Result<(), String> {
        for a in &mut self.activators {
            a.start(ctx)?;
        }
        Ok(())
    }

    fn stop(&mut self, ctx: &BundleContext) -> Result<(), String> {
        let mut first_err = None;
        for a in &mut self.activators {
            if let Err(e) = a.stop(ctx) {
                first_err.get_or_insert(e);
            }
        }
        first_err.map_or(Ok(()), Err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::BundleState;
    use crate::properties::Properties;
    use crate::service::FnService;
    use crate::value::Value;

    struct RegisterOne(&'static str);

    impl BundleActivator for RegisterOne {
        fn start(&mut self, ctx: &BundleContext) -> Result<(), String> {
            ctx.register_service(
                &[self.0],
                Arc::new(FnService::new(|_, _| Ok(Value::Unit))),
                Properties::new(),
            )
            .map_err(|e| e.to_string())?;
            Ok(())
        }

        fn stop(&mut self, _ctx: &BundleContext) -> Result<(), String> {
            Ok(())
        }
    }

    fn sample() -> BundleArtifact {
        BundleArtifact::new(Manifest::new("demo.proxy", "0.3", "generated proxy"))
            .with_activator("proxy/v1")
            .with_data("descriptor.bin", vec![9, 8, 7])
            .with_data("ui.bin", vec![1])
    }

    #[test]
    fn artifact_round_trips() {
        let a = sample();
        let bytes = a.encode();
        assert_eq!(BundleArtifact::decode(&bytes).unwrap(), a);
        assert_eq!(a.footprint(), bytes.len());
    }

    #[test]
    fn artifact_accessors() {
        let a = sample();
        assert!(a.is_code_bearing());
        assert_eq!(a.activator_keys(), vec!["proxy/v1"]);
        assert_eq!(a.data("descriptor.bin"), Some(&[9u8, 8, 7][..]));
        assert_eq!(a.data("missing"), None);
        let data_only = BundleArtifact::new(Manifest::new("d", "1", "")).with_data("x", vec![]);
        assert!(!data_only.is_code_bearing());
    }

    #[test]
    fn malformed_artifacts_rejected() {
        let bytes = sample().encode();
        // Truncation.
        assert!(matches!(
            BundleArtifact::decode(&bytes[..bytes.len() - 2]),
            Err(OsgiError::MalformedArtifact(_))
        ));
        // Trailing garbage.
        let mut extended = bytes.clone();
        extended.push(0xff);
        assert!(matches!(
            BundleArtifact::decode(&extended),
            Err(OsgiError::MalformedArtifact(_))
        ));
        // Bad tag.
        let bad = BundleArtifact::new(Manifest::new("x", "1", "")).encode();
        let mut bad2 = bad.clone();
        bad2[bad.len() - 1] = 1; // one entry claimed
        bad2.push(0x77); // invalid tag
        assert!(BundleArtifact::decode(&bad2).is_err());
    }

    #[test]
    fn code_registry_resolves_keys() {
        let code = CodeRegistry::new();
        assert!(!code.contains("proxy/v1"));
        code.register("proxy/v1", || Box::new(RegisterOne("proxied.Svc")));
        assert!(code.contains("proxy/v1"));
        assert_eq!(code.keys(), vec!["proxy/v1".to_owned()]);
        assert!(code.instantiate("proxy/v1").is_ok());
        assert!(matches!(
            code.instantiate("missing"),
            Err(OsgiError::UnknownActivatorKey(_))
        ));
    }

    #[test]
    fn install_artifact_end_to_end() {
        let fw = Framework::new();
        let code = CodeRegistry::new();
        code.register("proxy/v1", || Box::new(RegisterOne("proxied.Svc")));
        let id = code.install_artifact(&fw, &sample()).unwrap();
        assert_eq!(fw.bundle(id).unwrap().state, BundleState::Installed);
        // Data entries are visible on the installed bundle.
        assert_eq!(fw.bundle_entry(id, "descriptor.bin"), Some(vec![9, 8, 7]));
        // Starting the bundle runs the keyed activator.
        fw.start_bundle(id).unwrap();
        assert!(fw.registry().get_service("proxied.Svc").is_some());
        // Uninstall sweeps the proxied service — the paper's
        // "proxy bundles … are immediately uninstalled as soon as the
        // interaction is terminated".
        fw.uninstall(id).unwrap();
        assert!(fw.registry().get_service("proxied.Svc").is_none());
    }

    #[test]
    fn install_artifact_with_unknown_key_installs_nothing() {
        let fw = Framework::new();
        let code = CodeRegistry::new();
        let before = fw.bundles().len();
        assert!(matches!(
            code.install_artifact(&fw, &sample()),
            Err(OsgiError::UnknownActivatorKey(_))
        ));
        assert_eq!(fw.bundles().len(), before);
    }

    #[test]
    fn composite_activator_runs_all_and_reports_first_stop_error() {
        struct Failing;
        impl BundleActivator for Failing {
            fn start(&mut self, _: &BundleContext) -> Result<(), String> {
                Ok(())
            }
            fn stop(&mut self, _: &BundleContext) -> Result<(), String> {
                Err("stop failed".into())
            }
        }
        let fw = Framework::new();
        let code = CodeRegistry::new();
        code.register("a", || Box::new(RegisterOne("svc.A")));
        code.register("b", || Box::new(RegisterOne("svc.B")));
        code.register("failing", || Box::new(Failing));
        let artifact = BundleArtifact::new(Manifest::new("multi", "1", ""))
            .with_activator("a")
            .with_activator("failing")
            .with_activator("b");
        let id = code.install_artifact(&fw, &artifact).unwrap();
        fw.start_bundle(id).unwrap();
        assert!(fw.registry().get_service("svc.A").is_some());
        assert!(fw.registry().get_service("svc.B").is_some());
        // Stop errors surface as framework events but do not abort the stop.
        fw.stop_bundle(id).unwrap();
        assert!(fw.registry().get_service("svc.A").is_none());
    }
}
