//! The dynamic value type flowing through service invocations.
//!
//! OSGi services in Java exchange arbitrary objects via reflection; the
//! closest faithful analogue in Rust is a self-describing value tree. Every
//! service method in this framework takes and returns [`Value`]s, which is
//! also what makes transparent remote proxying possible: `alfredo-rosgi`
//! serializes `Value`s onto the wire without knowing anything about the
//! service.
//!
//! Struct-shaped values carry a type name, which is what R-OSGi *type
//! injection* validates against shipped type descriptors.

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing dynamic value.
///
/// # Example
///
/// ```
/// use alfredo_osgi::Value;
///
/// let v = Value::structure(
///     "shop.Product",
///     [("name", Value::from("bed")), ("price", Value::from(499i64))],
/// );
/// assert_eq!(v.type_name(), "struct shop.Product");
/// assert_eq!(v.field("price").and_then(Value::as_i64), Some(499));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// The absence of a value (Java `void`/`null`).
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer (covers Java's integral types).
    I64(i64),
    /// A 64-bit float.
    F64(f64),
    /// A UTF-8 string.
    Str(String),
    /// An opaque byte array (bitmaps, file contents…).
    Bytes(Vec<u8>),
    /// An ordered list.
    List(Vec<Value>),
    /// A string-keyed map.
    Map(BTreeMap<String, Value>),
    /// A named record: the analogue of a Java object of an injected type.
    Struct {
        /// The injected type's name, e.g. `"shop.Product"`.
        type_name: String,
        /// Field values by name.
        fields: BTreeMap<String, Value>,
    },
}

impl Value {
    /// Builds a struct value from a type name and field pairs.
    pub fn structure<K, V, I>(type_name: impl Into<String>, fields: I) -> Value
    where
        K: Into<String>,
        V: Into<Value>,
        I: IntoIterator<Item = (K, V)>,
    {
        Value::Struct {
            type_name: type_name.into(),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        }
    }

    /// Builds a map value from key/value pairs.
    pub fn map<K, V, I>(entries: I) -> Value
    where
        K: Into<String>,
        V: Into<Value>,
        I: IntoIterator<Item = (K, V)>,
    {
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// A short name for the value's runtime type, for error messages.
    pub fn type_name(&self) -> String {
        match self {
            Value::Unit => "unit".into(),
            Value::Bool(_) => "bool".into(),
            Value::I64(_) => "i64".into(),
            Value::F64(_) => "f64".into(),
            Value::Str(_) => "str".into(),
            Value::Bytes(_) => "bytes".into(),
            Value::List(_) => "list".into(),
            Value::Map(_) => "map".into(),
            Value::Struct { type_name, .. } => format!("struct {type_name}"),
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer if this is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float if this is an `F64` (or a lossless `I64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the bytes if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the elements if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the entries if this is a `Map`.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a field of a `Struct` (or a key of a `Map`).
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Struct { fields, .. } => fields.get(name),
            Value::Map(m) => m.get(name),
            _ => None,
        }
    }

    /// Returns `true` for `Unit`.
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Unit)
    }

    /// Approximate in-memory footprint in bytes, used by the §4.1
    /// resource-consumption experiment (e.g. the MouseController's RGB
    /// snapshot dominating its runtime memory).
    pub fn memory_footprint(&self) -> usize {
        let inline = std::mem::size_of::<Value>();
        match self {
            Value::Unit | Value::Bool(_) | Value::I64(_) | Value::F64(_) => inline,
            Value::Str(s) => inline + s.len(),
            Value::Bytes(b) => inline + b.len(),
            Value::List(items) => inline + items.iter().map(Value::memory_footprint).sum::<usize>(),
            Value::Map(m) => {
                inline
                    + m.iter()
                        .map(|(k, v)| k.len() + v.memory_footprint())
                        .sum::<usize>()
            }
            Value::Struct { type_name, fields } => {
                inline
                    + type_name.len()
                    + fields
                        .iter()
                        .map(|(k, v)| k.len() + v.memory_footprint())
                        .sum::<usize>()
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Struct { type_name, fields } => {
                write!(f, "{type_name} {{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(i64::from(v))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::I64(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}

impl From<()> for Value {
    fn from((): ()) -> Self {
        Value::Unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_produce_expected_variants() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(42i64), Value::I64(42));
        assert_eq!(Value::from(42i32), Value::I64(42));
        assert_eq!(Value::from(2.5), Value::F64(2.5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(()), Value::Unit);
        assert_eq!(
            Value::from(vec![1i64, 2]),
            Value::List(vec![Value::I64(1), Value::I64(2)])
        );
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = Value::from(7i64);
        assert_eq!(v.as_i64(), Some(7));
        assert_eq!(v.as_f64(), Some(7.0));
        assert_eq!(v.as_str(), None);
        assert!(!v.is_unit());
        assert!(Value::Unit.is_unit());
    }

    #[test]
    fn struct_fields_accessible() {
        let v = Value::structure("t.T", [("a", 1i64), ("b", 2i64)]);
        assert_eq!(v.field("a"), Some(&Value::I64(1)));
        assert_eq!(v.field("missing"), None);
        assert_eq!(v.type_name(), "struct t.T");
    }

    #[test]
    fn map_builder_and_lookup() {
        let v = Value::map([("k", "v")]);
        assert_eq!(v.field("k").and_then(Value::as_str), Some("v"));
        assert_eq!(v.as_map().unwrap().len(), 1);
    }

    #[test]
    fn memory_footprint_counts_payload() {
        let small = Value::from(1i64).memory_footprint();
        let big = Value::Bytes(vec![0; 10_000]).memory_footprint();
        assert!(big > small + 9_000);
    }

    #[test]
    fn display_is_readable() {
        let v = Value::structure("p.Point", [("x", 1i64), ("y", 2i64)]);
        assert_eq!(v.to_string(), "p.Point {x: 1, y: 2}");
        assert_eq!(Value::from(vec![1i64, 2]).to_string(), "[1, 2]");
        assert_eq!(Value::Bytes(vec![0; 3]).to_string(), "<3 bytes>");
    }

    #[test]
    fn json_round_trip() {
        use crate::json::{FromJson, ToJson};
        let v = Value::structure(
            "t.T",
            [
                ("list", Value::from(vec![1i64, 2, 3])),
                ("nested", Value::map([("k", Value::Bytes(vec![9, 9]))])),
            ],
        );
        let json = v.to_json_string();
        let back = Value::from_json_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
