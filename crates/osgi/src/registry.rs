//! The central service registry.
//!
//! Bundles publish service objects under interface names; consumers look
//! them up directly and receive a reference to the service object — the
//! "very lightweight communication model that avoids performance-adverse
//! indirections known from container systems such as EJB" (paper, §1).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use alfredo_sync::Mutex;

use crate::bundle::BundleId;
use crate::error::OsgiError;
use crate::events::ServiceEvent;
use crate::filter::Filter;
use crate::properties::Properties;
use crate::service::{Service, ServiceId, ServiceInterfaceDesc, ServiceReference};
use crate::value::Value;

/// Identifier of a registered service listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListenerId(u64);

type ListenerFn = Arc<dyn Fn(&ServiceEvent) + Send + Sync>;

struct Registration {
    // Shared with every ServiceReference handed out for this service, so
    // lookups are allocation-free.
    interfaces: Arc<Vec<String>>,
    properties: Arc<Properties>,
    service: Arc<dyn Service>,
    owner: BundleId,
}

impl Registration {
    fn reference(&self, id: ServiceId) -> ServiceReference {
        ServiceReference::new_shared(
            id,
            Arc::clone(&self.interfaces),
            Arc::clone(&self.properties),
        )
    }
}

struct Listener {
    id: ListenerId,
    filter: Option<Filter>,
    callback: ListenerFn,
}

#[derive(Default)]
struct Inner {
    services: BTreeMap<ServiceId, Registration>,
    by_interface: HashMap<String, Vec<ServiceId>>,
    listeners: Vec<Listener>,
    next_service: u64,
    next_listener: u64,
}

/// The service registry. Cloning yields another handle to the same
/// registry.
///
/// # Example
///
/// ```
/// use alfredo_osgi::{BundleId, FnService, Properties, ServiceRegistry, Value};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), alfredo_osgi::OsgiError> {
/// let registry = ServiceRegistry::new();
/// let svc = Arc::new(FnService::new(|_, _| Ok(Value::I64(1))));
/// registry.register(BundleId::SYSTEM, &["math.One"], svc, Properties::new())?;
/// assert!(registry.get_service("math.One").is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default)]
pub struct ServiceRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ServiceRegistry::default()
    }

    /// Registers `service` under `interfaces` on behalf of `owner`.
    ///
    /// The registry adds the standard `service.id` and `objectClass`
    /// properties. Listeners observe a [`ServiceEvent::Registered`].
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoInterfaces`] if `interfaces` is empty.
    pub fn register(
        &self,
        owner: BundleId,
        interfaces: &[&str],
        service: Arc<dyn Service>,
        mut properties: Properties,
    ) -> Result<ServiceRegistration, OsgiError> {
        if interfaces.is_empty() {
            return Err(OsgiError::NoInterfaces);
        }
        let names: Vec<String> = interfaces.iter().map(|s| (*s).to_owned()).collect();
        let (id, event) = {
            let mut inner = self.inner.lock();
            let id = ServiceId::from_raw(inner.next_service);
            inner.next_service += 1;
            properties.insert(Properties::SERVICE_ID, id.as_raw() as i64);
            properties.insert(
                Properties::OBJECT_CLASS,
                Value::List(names.iter().cloned().map(Value::Str).collect()),
            );
            for name in &names {
                inner.by_interface.entry(name.clone()).or_default().push(id);
            }
            let registration = Registration {
                interfaces: Arc::new(names),
                properties: Arc::new(properties),
                service,
                owner,
            };
            let reference = registration.reference(id);
            inner.services.insert(id, registration);
            (id, ServiceEvent::Registered(reference))
        };
        self.dispatch(&event);
        Ok(ServiceRegistration {
            registry: self.clone(),
            id,
        })
    }

    /// Unregisters a service by id. Listeners observe a
    /// [`ServiceEvent::Unregistering`] before removal.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoSuchService`] if the id is unknown.
    pub fn unregister(&self, id: ServiceId) -> Result<(), OsgiError> {
        let event = {
            let inner = self.inner.lock();
            let reg = inner
                .services
                .get(&id)
                .ok_or(OsgiError::NoSuchService(id.as_raw()))?;
            ServiceEvent::Unregistering(reg.reference(id))
        };
        self.dispatch(&event);
        let mut inner = self.inner.lock();
        if let Some(reg) = inner.services.remove(&id) {
            for name in reg.interfaces.iter() {
                if let Some(ids) = inner.by_interface.get_mut(name) {
                    ids.retain(|i| *i != id);
                    if ids.is_empty() {
                        inner.by_interface.remove(name);
                    }
                }
            }
        }
        Ok(())
    }

    /// Unregisters every service owned by `bundle`; returns how many were
    /// removed. Used when a bundle stops or a remote peer disconnects.
    pub fn unregister_bundle(&self, bundle: BundleId) -> usize {
        let ids: Vec<ServiceId> = {
            let inner = self.inner.lock();
            inner
                .services
                .iter()
                .filter(|(_, r)| r.owner == bundle)
                .map(|(id, _)| *id)
                .collect()
        };
        let count = ids.len();
        for id in ids {
            let _ = self.unregister(id);
        }
        count
    }

    /// Replaces a service's properties (preserving `service.id` and
    /// `objectClass`). Listeners observe a [`ServiceEvent::Modified`].
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoSuchService`] if the id is unknown.
    pub fn set_properties(
        &self,
        id: ServiceId,
        mut properties: Properties,
    ) -> Result<(), OsgiError> {
        let event = {
            let mut inner = self.inner.lock();
            let reg = inner
                .services
                .get_mut(&id)
                .ok_or(OsgiError::NoSuchService(id.as_raw()))?;
            properties.insert(Properties::SERVICE_ID, id.as_raw() as i64);
            properties.insert(
                Properties::OBJECT_CLASS,
                Value::List(reg.interfaces.iter().cloned().map(Value::Str).collect()),
            );
            reg.properties = Arc::new(properties);
            ServiceEvent::Modified(reg.reference(id))
        };
        self.dispatch(&event);
        Ok(())
    }

    /// Returns the best reference for `interface`: highest ranking first,
    /// then lowest service id (the OSGi tie-break).
    ///
    /// This is the invocation-path lookup, so it scans for the best match
    /// in place rather than materializing and sorting every candidate
    /// like [`Self::get_references`] does.
    pub fn get_reference(&self, interface: &str) -> Option<ServiceReference> {
        let inner = self.inner.lock();
        let ids = inner.by_interface.get(interface)?;
        let mut best: Option<(ServiceId, &Registration)> = None;
        for id in ids {
            let Some(reg) = inner.services.get(id) else {
                continue;
            };
            // Ids were appended in registration order (ascending), so
            // requiring a strictly higher ranking keeps the lowest id
            // among equals — the same order get_references sorts into.
            let better = match &best {
                None => true,
                Some((_, b)) => reg.properties.ranking() > b.properties.ranking(),
            };
            if better {
                best = Some((*id, reg));
            }
        }
        best.map(|(id, reg)| reg.reference(id))
    }

    /// Returns all references for `interface`, optionally filtered, sorted
    /// best-first.
    pub fn get_references(
        &self,
        interface: &str,
        filter: Option<&Filter>,
    ) -> Vec<ServiceReference> {
        let inner = self.inner.lock();
        let mut refs: Vec<ServiceReference> = inner
            .by_interface
            .get(interface)
            .into_iter()
            .flatten()
            .filter_map(|id| {
                let reg = inner.services.get(id)?;
                if let Some(f) = filter {
                    if !f.matches(&reg.properties) {
                        return None;
                    }
                }
                Some(reg.reference(*id))
            })
            .collect();
        refs.sort_by(|a, b| b.ranking().cmp(&a.ranking()).then(a.id().cmp(&b.id())));
        refs
    }

    /// Returns references for every registered service, optionally
    /// filtered, in id order.
    pub fn all_references(&self, filter: Option<&Filter>) -> Vec<ServiceReference> {
        let inner = self.inner.lock();
        inner
            .services
            .iter()
            .filter(|(_, reg)| filter.is_none_or(|f| f.matches(&reg.properties)))
            .map(|(id, reg)| reg.reference(*id))
            .collect()
    }

    /// Returns the best service object for `interface`.
    pub fn get_service(&self, interface: &str) -> Option<Arc<dyn Service>> {
        let reference = self.get_reference(interface)?;
        self.get_service_by_id(reference.id())
    }

    /// Returns the service object for a reference id.
    pub fn get_service_by_id(&self, id: ServiceId) -> Option<Arc<dyn Service>> {
        self.inner
            .lock()
            .services
            .get(&id)
            .map(|r| Arc::clone(&r.service))
    }

    /// The interface description for `interface`, if the best-ranked
    /// provider can describe itself.
    pub fn describe(&self, interface: &str) -> Option<ServiceInterfaceDesc> {
        self.get_service(interface)?.describe()
    }

    /// Registers a service listener; `filter` (over service properties)
    /// restricts which events are delivered.
    pub fn add_listener<F>(&self, filter: Option<Filter>, callback: F) -> ListenerId
    where
        F: Fn(&ServiceEvent) + Send + Sync + 'static,
    {
        let mut inner = self.inner.lock();
        let id = ListenerId(inner.next_listener);
        inner.next_listener += 1;
        inner.listeners.push(Listener {
            id,
            filter,
            callback: Arc::new(callback),
        });
        id
    }

    /// Removes a service listener. Unknown ids are ignored.
    pub fn remove_listener(&self, id: ListenerId) {
        self.inner.lock().listeners.retain(|l| l.id != id);
    }

    /// Number of currently registered services.
    pub fn service_count(&self) -> usize {
        self.inner.lock().services.len()
    }

    /// The interface names currently present, sorted.
    pub fn interfaces(&self) -> Vec<String> {
        let inner = self.inner.lock();
        let mut names: Vec<String> = inner.by_interface.keys().cloned().collect();
        names.sort();
        names
    }

    fn dispatch(&self, event: &ServiceEvent) {
        let callbacks: Vec<ListenerFn> = {
            let inner = self.inner.lock();
            inner
                .listeners
                .iter()
                .filter(|l| {
                    l.filter
                        .as_ref()
                        .is_none_or(|f| f.matches(event.reference().properties()))
                })
                .map(|l| Arc::clone(&l.callback))
                .collect()
        };
        for cb in callbacks {
            cb(event);
        }
    }
}

impl fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ServiceRegistry")
            .field("services", &inner.services.len())
            .field("listeners", &inner.listeners.len())
            .finish()
    }
}

/// A handle returned from [`ServiceRegistry::register`], used to update or
/// unregister the service. Dropping the handle does **not** unregister the
/// service (as in OSGi, where registrations outlive local handles until
/// explicitly removed or their bundle stops).
pub struct ServiceRegistration {
    registry: ServiceRegistry,
    id: ServiceId,
}

impl ServiceRegistration {
    /// The registered service's id.
    pub fn id(&self) -> ServiceId {
        self.id
    }

    /// Replaces the service's properties.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoSuchService`] if already unregistered.
    pub fn set_properties(&self, properties: Properties) -> Result<(), OsgiError> {
        self.registry.set_properties(self.id, properties)
    }

    /// Unregisters the service.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoSuchService`] if already unregistered.
    pub fn unregister(self) -> Result<(), OsgiError> {
        self.registry.unregister(self.id)
    }
}

impl fmt::Debug for ServiceRegistration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceRegistration")
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::FnService;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn constant(v: i64) -> Arc<dyn Service> {
        Arc::new(FnService::new(move |_, _| Ok(Value::I64(v))))
    }

    #[test]
    fn register_lookup_invoke() {
        let reg = ServiceRegistry::new();
        reg.register(BundleId::SYSTEM, &["t.A"], constant(7), Properties::new())
            .unwrap();
        let svc = reg.get_service("t.A").unwrap();
        assert_eq!(svc.invoke("anything", &[]).unwrap(), Value::I64(7));
        assert_eq!(reg.service_count(), 1);
        assert_eq!(reg.interfaces(), vec!["t.A".to_owned()]);
    }

    #[test]
    fn empty_interface_list_rejected() {
        let reg = ServiceRegistry::new();
        assert_eq!(
            reg.register(BundleId::SYSTEM, &[], constant(0), Properties::new())
                .unwrap_err(),
            OsgiError::NoInterfaces
        );
    }

    #[test]
    fn ranking_selects_best_service() {
        let reg = ServiceRegistry::new();
        reg.register(
            BundleId::SYSTEM,
            &["t.A"],
            constant(1),
            Properties::new().with_ranking(1),
        )
        .unwrap();
        reg.register(
            BundleId::SYSTEM,
            &["t.A"],
            constant(2),
            Properties::new().with_ranking(5),
        )
        .unwrap();
        reg.register(
            BundleId::SYSTEM,
            &["t.A"],
            constant(3),
            Properties::new().with_ranking(5),
        )
        .unwrap();
        // Highest ranking wins; among equals, the lowest service id.
        let best = reg.get_service("t.A").unwrap();
        assert_eq!(best.invoke("x", &[]).unwrap(), Value::I64(2));
        let refs = reg.get_references("t.A", None);
        assert_eq!(refs.len(), 3);
        assert!(refs[0].ranking() >= refs[1].ranking());
    }

    #[test]
    fn filtered_lookup() {
        let reg = ServiceRegistry::new();
        reg.register(
            BundleId::SYSTEM,
            &["t.A"],
            constant(1),
            Properties::new().with("zone", "eu"),
        )
        .unwrap();
        reg.register(
            BundleId::SYSTEM,
            &["t.A"],
            constant(2),
            Properties::new().with("zone", "us"),
        )
        .unwrap();
        let f = Filter::parse("(zone=us)").unwrap();
        let refs = reg.get_references("t.A", Some(&f));
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].properties().get_str("zone"), Some("us"));
    }

    #[test]
    fn standard_properties_are_set() {
        let reg = ServiceRegistry::new();
        let registration = reg
            .register(
                BundleId::SYSTEM,
                &["t.A", "t.B"],
                constant(1),
                Properties::new(),
            )
            .unwrap();
        let r = reg.get_reference("t.B").unwrap();
        assert_eq!(r.id(), registration.id());
        assert_eq!(
            r.properties().get_i64(Properties::SERVICE_ID),
            Some(registration.id().as_raw() as i64)
        );
        let classes = r.properties().get(Properties::OBJECT_CLASS).unwrap();
        assert_eq!(
            classes.as_list().unwrap().len(),
            2,
            "objectClass lists both interfaces"
        );
    }

    #[test]
    fn unregister_removes_and_notifies() {
        let reg = ServiceRegistry::new();
        let events = Arc::new(Mutex::new(Vec::new()));
        let ev = Arc::clone(&events);
        reg.add_listener(None, move |e| {
            ev.lock().push(match e {
                ServiceEvent::Registered(_) => "reg",
                ServiceEvent::Modified(_) => "mod",
                ServiceEvent::Unregistering(_) => "unreg",
            });
        });
        let registration = reg
            .register(BundleId::SYSTEM, &["t.A"], constant(1), Properties::new())
            .unwrap();
        registration
            .set_properties(Properties::new().with("x", 1i64))
            .unwrap();
        let id = registration.id();
        registration.unregister().unwrap();
        assert!(reg.get_service("t.A").is_none());
        assert!(reg.get_service_by_id(id).is_none());
        assert_eq!(*events.lock(), vec!["reg", "mod", "unreg"]);
        // Double unregister fails cleanly.
        assert!(matches!(
            reg.unregister(id),
            Err(OsgiError::NoSuchService(_))
        ));
    }

    #[test]
    fn listener_filter_restricts_events() {
        let reg = ServiceRegistry::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        reg.add_listener(Some(Filter::parse("(kind=ui)").unwrap()), move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        reg.register(
            BundleId::SYSTEM,
            &["t.A"],
            constant(1),
            Properties::new().with("kind", "ui"),
        )
        .unwrap();
        reg.register(BundleId::SYSTEM, &["t.B"], constant(2), Properties::new())
            .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn remove_listener_stops_events() {
        let reg = ServiceRegistry::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let id = reg.add_listener(None, move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        reg.remove_listener(id);
        reg.register(BundleId::SYSTEM, &["t.A"], constant(1), Properties::new())
            .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn unregister_bundle_sweeps_owned_services() {
        let reg = ServiceRegistry::new();
        let b1 = BundleId::from_raw(1);
        let b2 = BundleId::from_raw(2);
        reg.register(b1, &["t.A"], constant(1), Properties::new())
            .unwrap();
        reg.register(b1, &["t.B"], constant(2), Properties::new())
            .unwrap();
        reg.register(b2, &["t.C"], constant(3), Properties::new())
            .unwrap();
        assert_eq!(reg.unregister_bundle(b1), 2);
        assert_eq!(reg.service_count(), 1);
        assert!(reg.get_service("t.C").is_some());
    }

    #[test]
    fn all_references_supports_filters() {
        let reg = ServiceRegistry::new();
        reg.register(
            BundleId::SYSTEM,
            &["t.A"],
            constant(1),
            Properties::new().with("remote", true),
        )
        .unwrap();
        reg.register(BundleId::SYSTEM, &["t.B"], constant(2), Properties::new())
            .unwrap();
        assert_eq!(reg.all_references(None).len(), 2);
        let f = Filter::parse("(remote=true)").unwrap();
        assert_eq!(reg.all_references(Some(&f)).len(), 1);
    }

    #[test]
    fn lookup_of_absent_interface_is_none() {
        let reg = ServiceRegistry::new();
        assert!(reg.get_reference("nope").is_none());
        assert!(reg.get_service("nope").is_none());
        assert!(reg.get_references("nope", None).is_empty());
    }
}
