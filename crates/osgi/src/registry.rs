//! The central service registry.
//!
//! Bundles publish service objects under interface names; consumers look
//! them up directly and receive a reference to the service object — the
//! "very lightweight communication model that avoids performance-adverse
//! indirections known from container systems such as EJB" (paper, §1).
//!
//! # Sharding
//!
//! Lookups are the hot path: every remote invocation a device serves
//! resolves the target interface through [`ServiceRegistry::get_service`],
//! so with many phones connected the registry is hit concurrently from
//! every endpoint's serving thread. The registry is therefore *sharded
//! and read-mostly*: interface entries live in one of `SHARD_COUNT` (16)
//! shards selected by interface-name hash, each behind its own `RwLock`.
//! Concurrent lookups of different interfaces touch different locks, and
//! concurrent lookups of the *same* interface share a read lock — neither
//! serializes. Registrations and unregistrations (rare) take short write
//! locks on the affected shards only; listeners live behind a separate
//! read-mostly lock and are always called with no registry lock held.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use alfredo_sync::RwLock;

use crate::bundle::BundleId;
use crate::error::OsgiError;
use crate::events::ServiceEvent;
use crate::filter::Filter;
use crate::properties::Properties;
use crate::service::{Service, ServiceId, ServiceInterfaceDesc, ServiceReference};
use crate::value::Value;

/// Number of interface shards. A small power of two: enough that a
/// device serving a dozen concurrent phones rarely sees two different
/// interfaces collide on one lock, small enough that whole-registry
/// scans (`interfaces`, `Debug`) stay cheap.
const SHARD_COUNT: usize = 16;

/// Identifier of a registered service listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListenerId(u64);

type ListenerFn = Arc<dyn Fn(&ServiceEvent) + Send + Sync>;

struct Registration {
    // Shared with every ServiceReference handed out for this service, so
    // lookups are allocation-free. One `Registration` is shared between
    // the id map and every interface shard it is published under, which
    // is why `properties` needs interior mutability: `set_properties`
    // must be visible through all of them at once.
    interfaces: Arc<Vec<String>>,
    properties: RwLock<Arc<Properties>>,
    service: Arc<dyn Service>,
    owner: BundleId,
}

impl Registration {
    fn props(&self) -> Arc<Properties> {
        Arc::clone(&self.properties.read())
    }

    fn ranking(&self) -> i64 {
        self.properties.read().ranking()
    }

    fn reference(&self, id: ServiceId) -> ServiceReference {
        ServiceReference::new_shared(id, Arc::clone(&self.interfaces), self.props())
    }
}

struct Listener {
    id: ListenerId,
    filter: Option<Filter>,
    callback: ListenerFn,
}

/// One interface shard: interface name → the registrations published
/// under it. The `Arc<Registration>` is shared with the id map, so a
/// lookup resolves service object and properties from a single shard
/// read lock.
type Shard = RwLock<HashMap<String, Vec<(ServiceId, Arc<Registration>)>>>;

struct Inner {
    /// Interface-name-hashed shards; the lookup hot path.
    shards: Vec<Shard>,
    /// All registrations by id (id-ordered iteration, id-based ops).
    services: RwLock<BTreeMap<ServiceId, Arc<Registration>>>,
    listeners: RwLock<Vec<Listener>>,
    next_service: AtomicU64,
    next_listener: AtomicU64,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            services: RwLock::new(BTreeMap::new()),
            listeners: RwLock::new(Vec::new()),
            next_service: AtomicU64::new(0),
            next_listener: AtomicU64::new(0),
        }
    }
}

impl Inner {
    fn shard(&self, interface: &str) -> &Shard {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        interface.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARD_COUNT]
    }
}

/// The service registry. Cloning yields another handle to the same
/// registry.
///
/// # Example
///
/// ```
/// use alfredo_osgi::{BundleId, FnService, Properties, ServiceRegistry, Value};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), alfredo_osgi::OsgiError> {
/// let registry = ServiceRegistry::new();
/// let svc = Arc::new(FnService::new(|_, _| Ok(Value::I64(1))));
/// registry.register(BundleId::SYSTEM, &["math.One"], svc, Properties::new())?;
/// assert!(registry.get_service("math.One").is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default)]
pub struct ServiceRegistry {
    inner: Arc<Inner>,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ServiceRegistry::default()
    }

    /// Registers `service` under `interfaces` on behalf of `owner`.
    ///
    /// The registry adds the standard `service.id` and `objectClass`
    /// properties. Listeners observe a [`ServiceEvent::Registered`].
    ///
    /// A registration spanning several interfaces becomes visible one
    /// shard at a time; a concurrent lookup may briefly see it under one
    /// of its interfaces and not yet another. The `Registered` event is
    /// dispatched only after the service is visible under all of them.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoInterfaces`] if `interfaces` is empty.
    pub fn register(
        &self,
        owner: BundleId,
        interfaces: &[&str],
        service: Arc<dyn Service>,
        mut properties: Properties,
    ) -> Result<ServiceRegistration, OsgiError> {
        if interfaces.is_empty() {
            return Err(OsgiError::NoInterfaces);
        }
        let names: Vec<String> = interfaces.iter().map(|s| (*s).to_owned()).collect();
        let id = ServiceId::from_raw(self.inner.next_service.fetch_add(1, Ordering::Relaxed));
        properties.insert(Properties::SERVICE_ID, id.as_raw() as i64);
        properties.insert(
            Properties::OBJECT_CLASS,
            Value::List(names.iter().cloned().map(Value::Str).collect()),
        );
        let registration = Arc::new(Registration {
            interfaces: Arc::new(names),
            properties: RwLock::new(Arc::new(properties)),
            service,
            owner,
        });
        self.inner
            .services
            .write()
            .insert(id, Arc::clone(&registration));
        for name in registration.interfaces.iter() {
            self.inner
                .shard(name)
                .write()
                .entry(name.clone())
                .or_default()
                .push((id, Arc::clone(&registration)));
        }
        self.dispatch(&ServiceEvent::Registered(registration.reference(id)));
        Ok(ServiceRegistration {
            registry: self.clone(),
            id,
        })
    }

    /// Unregisters a service by id. Listeners observe a
    /// [`ServiceEvent::Unregistering`] carrying the final reference.
    ///
    /// Exactly one caller wins a concurrent unregister race (the id map
    /// entry is the claim), so the event fires once.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoSuchService`] if the id is unknown.
    pub fn unregister(&self, id: ServiceId) -> Result<(), OsgiError> {
        let registration = self
            .inner
            .services
            .write()
            .remove(&id)
            .ok_or(OsgiError::NoSuchService(id.as_raw()))?;
        for name in registration.interfaces.iter() {
            let mut shard = self.inner.shard(name).write();
            if let Some(entries) = shard.get_mut(name) {
                entries.retain(|(i, _)| *i != id);
                if entries.is_empty() {
                    shard.remove(name);
                }
            }
        }
        self.dispatch(&ServiceEvent::Unregistering(registration.reference(id)));
        Ok(())
    }

    /// Unregisters every service owned by `bundle`; returns how many were
    /// removed. Used when a bundle stops or a remote peer disconnects.
    pub fn unregister_bundle(&self, bundle: BundleId) -> usize {
        let ids: Vec<ServiceId> = {
            let services = self.inner.services.read();
            services
                .iter()
                .filter(|(_, r)| r.owner == bundle)
                .map(|(id, _)| *id)
                .collect()
        };
        ids.into_iter()
            .filter(|id| self.unregister(*id).is_ok())
            .count()
    }

    /// Replaces a service's properties (preserving `service.id` and
    /// `objectClass`). Listeners observe a [`ServiceEvent::Modified`].
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoSuchService`] if the id is unknown.
    pub fn set_properties(
        &self,
        id: ServiceId,
        mut properties: Properties,
    ) -> Result<(), OsgiError> {
        let registration = self
            .inner
            .services
            .read()
            .get(&id)
            .cloned()
            .ok_or(OsgiError::NoSuchService(id.as_raw()))?;
        properties.insert(Properties::SERVICE_ID, id.as_raw() as i64);
        properties.insert(
            Properties::OBJECT_CLASS,
            Value::List(
                registration
                    .interfaces
                    .iter()
                    .cloned()
                    .map(Value::Str)
                    .collect(),
            ),
        );
        *registration.properties.write() = Arc::new(properties);
        self.dispatch(&ServiceEvent::Modified(registration.reference(id)));
        Ok(())
    }

    /// Returns the best reference for `interface`: highest ranking first,
    /// then lowest service id (the OSGi tie-break).
    ///
    /// This is the invocation-path lookup: a single shard read lock and
    /// an in-place scan, no candidate materialization. Concurrent
    /// lookups — same interface or different — run in parallel.
    pub fn get_reference(&self, interface: &str) -> Option<ServiceReference> {
        let shard = self.inner.shard(interface).read();
        Self::best_in(shard.get(interface)?).map(|(id, reg)| reg.reference(id))
    }

    /// Returns all references for `interface`, optionally filtered, sorted
    /// best-first.
    pub fn get_references(
        &self,
        interface: &str,
        filter: Option<&Filter>,
    ) -> Vec<ServiceReference> {
        let mut refs: Vec<ServiceReference> = {
            let shard = self.inner.shard(interface).read();
            shard
                .get(interface)
                .into_iter()
                .flatten()
                .filter_map(|(id, reg)| {
                    let props = reg.props();
                    if let Some(f) = filter {
                        if !f.matches(&props) {
                            return None;
                        }
                    }
                    Some(ServiceReference::new_shared(
                        *id,
                        Arc::clone(&reg.interfaces),
                        props,
                    ))
                })
                .collect()
        };
        refs.sort_by(|a, b| b.ranking().cmp(&a.ranking()).then(a.id().cmp(&b.id())));
        refs
    }

    /// Returns references for every registered service, optionally
    /// filtered, in id order.
    pub fn all_references(&self, filter: Option<&Filter>) -> Vec<ServiceReference> {
        let services = self.inner.services.read();
        services
            .iter()
            .filter_map(|(id, reg)| {
                let props = reg.props();
                if let Some(f) = filter {
                    if !f.matches(&props) {
                        return None;
                    }
                }
                Some(ServiceReference::new_shared(
                    *id,
                    Arc::clone(&reg.interfaces),
                    props,
                ))
            })
            .collect()
    }

    /// Returns the best service object for `interface`.
    ///
    /// Resolved from a single shard read lock (reference selection and
    /// service object come from the same shared registration).
    pub fn get_service(&self, interface: &str) -> Option<Arc<dyn Service>> {
        let shard = self.inner.shard(interface).read();
        Self::best_in(shard.get(interface)?).map(|(_, reg)| Arc::clone(&reg.service))
    }

    /// Returns the service object for a reference id.
    pub fn get_service_by_id(&self, id: ServiceId) -> Option<Arc<dyn Service>> {
        self.inner
            .services
            .read()
            .get(&id)
            .map(|r| Arc::clone(&r.service))
    }

    /// The interface description for `interface`, if the best-ranked
    /// provider can describe itself.
    pub fn describe(&self, interface: &str) -> Option<ServiceInterfaceDesc> {
        self.get_service(interface)?.describe()
    }

    /// Registers a service listener; `filter` (over service properties)
    /// restricts which events are delivered.
    pub fn add_listener<F>(&self, filter: Option<Filter>, callback: F) -> ListenerId
    where
        F: Fn(&ServiceEvent) + Send + Sync + 'static,
    {
        let id = ListenerId(self.inner.next_listener.fetch_add(1, Ordering::Relaxed));
        self.inner.listeners.write().push(Listener {
            id,
            filter,
            callback: Arc::new(callback),
        });
        id
    }

    /// Removes a service listener. Unknown ids are ignored.
    pub fn remove_listener(&self, id: ListenerId) {
        self.inner.listeners.write().retain(|l| l.id != id);
    }

    /// Number of currently registered services.
    pub fn service_count(&self) -> usize {
        self.inner.services.read().len()
    }

    /// The interface names currently present, sorted.
    pub fn interfaces(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for shard in &self.inner.shards {
            names.extend(shard.read().keys().cloned());
        }
        names.sort();
        names
    }

    /// Picks the best entry: highest ranking, lowest id among equals.
    /// The tie-break is explicit — under concurrent registration the
    /// shard vector is not id-ordered.
    fn best_in(
        entries: &[(ServiceId, Arc<Registration>)],
    ) -> Option<(ServiceId, &Arc<Registration>)> {
        let mut best: Option<(ServiceId, i64, &Arc<Registration>)> = None;
        for (id, reg) in entries {
            let ranking = reg.ranking();
            let better = match &best {
                None => true,
                Some((best_id, best_ranking, _)) => {
                    ranking > *best_ranking || (ranking == *best_ranking && id < best_id)
                }
            };
            if better {
                best = Some((*id, ranking, reg));
            }
        }
        best.map(|(id, _, reg)| (id, reg))
    }

    fn dispatch(&self, event: &ServiceEvent) {
        let callbacks: Vec<ListenerFn> = {
            let listeners = self.inner.listeners.read();
            listeners
                .iter()
                .filter(|l| {
                    l.filter
                        .as_ref()
                        .is_none_or(|f| f.matches(event.reference().properties()))
                })
                .map(|l| Arc::clone(&l.callback))
                .collect()
        };
        for cb in callbacks {
            cb(event);
        }
    }
}

impl fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceRegistry")
            .field("services", &self.service_count())
            .field("listeners", &self.inner.listeners.read().len())
            .finish()
    }
}

/// A handle returned from [`ServiceRegistry::register`], used to update or
/// unregister the service. Dropping the handle does **not** unregister the
/// service (as in OSGi, where registrations outlive local handles until
/// explicitly removed or their bundle stops).
pub struct ServiceRegistration {
    registry: ServiceRegistry,
    id: ServiceId,
}

impl ServiceRegistration {
    /// The registered service's id.
    pub fn id(&self) -> ServiceId {
        self.id
    }

    /// Replaces the service's properties.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoSuchService`] if already unregistered.
    pub fn set_properties(&self, properties: Properties) -> Result<(), OsgiError> {
        self.registry.set_properties(self.id, properties)
    }

    /// Unregisters the service.
    ///
    /// # Errors
    ///
    /// Returns [`OsgiError::NoSuchService`] if already unregistered.
    pub fn unregister(self) -> Result<(), OsgiError> {
        self.registry.unregister(self.id)
    }
}

impl fmt::Debug for ServiceRegistration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceRegistration")
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::FnService;
    use alfredo_sync::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn constant(v: i64) -> Arc<dyn Service> {
        Arc::new(FnService::new(move |_, _| Ok(Value::I64(v))))
    }

    #[test]
    fn register_lookup_invoke() {
        let reg = ServiceRegistry::new();
        reg.register(BundleId::SYSTEM, &["t.A"], constant(7), Properties::new())
            .unwrap();
        let svc = reg.get_service("t.A").unwrap();
        assert_eq!(svc.invoke("anything", &[]).unwrap(), Value::I64(7));
        assert_eq!(reg.service_count(), 1);
        assert_eq!(reg.interfaces(), vec!["t.A".to_owned()]);
    }

    #[test]
    fn empty_interface_list_rejected() {
        let reg = ServiceRegistry::new();
        assert_eq!(
            reg.register(BundleId::SYSTEM, &[], constant(0), Properties::new())
                .unwrap_err(),
            OsgiError::NoInterfaces
        );
    }

    #[test]
    fn ranking_selects_best_service() {
        let reg = ServiceRegistry::new();
        reg.register(
            BundleId::SYSTEM,
            &["t.A"],
            constant(1),
            Properties::new().with_ranking(1),
        )
        .unwrap();
        reg.register(
            BundleId::SYSTEM,
            &["t.A"],
            constant(2),
            Properties::new().with_ranking(5),
        )
        .unwrap();
        reg.register(
            BundleId::SYSTEM,
            &["t.A"],
            constant(3),
            Properties::new().with_ranking(5),
        )
        .unwrap();
        // Highest ranking wins; among equals, the lowest service id.
        let best = reg.get_service("t.A").unwrap();
        assert_eq!(best.invoke("x", &[]).unwrap(), Value::I64(2));
        let refs = reg.get_references("t.A", None);
        assert_eq!(refs.len(), 3);
        assert!(refs[0].ranking() >= refs[1].ranking());
    }

    #[test]
    fn filtered_lookup() {
        let reg = ServiceRegistry::new();
        reg.register(
            BundleId::SYSTEM,
            &["t.A"],
            constant(1),
            Properties::new().with("zone", "eu"),
        )
        .unwrap();
        reg.register(
            BundleId::SYSTEM,
            &["t.A"],
            constant(2),
            Properties::new().with("zone", "us"),
        )
        .unwrap();
        let f = Filter::parse("(zone=us)").unwrap();
        let refs = reg.get_references("t.A", Some(&f));
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].properties().get_str("zone"), Some("us"));
    }

    #[test]
    fn standard_properties_are_set() {
        let reg = ServiceRegistry::new();
        let registration = reg
            .register(
                BundleId::SYSTEM,
                &["t.A", "t.B"],
                constant(1),
                Properties::new(),
            )
            .unwrap();
        let r = reg.get_reference("t.B").unwrap();
        assert_eq!(r.id(), registration.id());
        assert_eq!(
            r.properties().get_i64(Properties::SERVICE_ID),
            Some(registration.id().as_raw() as i64)
        );
        let classes = r.properties().get(Properties::OBJECT_CLASS).unwrap();
        assert_eq!(
            classes.as_list().unwrap().len(),
            2,
            "objectClass lists both interfaces"
        );
    }

    #[test]
    fn unregister_removes_and_notifies() {
        let reg = ServiceRegistry::new();
        let events = Arc::new(Mutex::new(Vec::new()));
        let ev = Arc::clone(&events);
        reg.add_listener(None, move |e| {
            ev.lock().push(match e {
                ServiceEvent::Registered(_) => "reg",
                ServiceEvent::Modified(_) => "mod",
                ServiceEvent::Unregistering(_) => "unreg",
            });
        });
        let registration = reg
            .register(BundleId::SYSTEM, &["t.A"], constant(1), Properties::new())
            .unwrap();
        registration
            .set_properties(Properties::new().with("x", 1i64))
            .unwrap();
        let id = registration.id();
        registration.unregister().unwrap();
        assert!(reg.get_service("t.A").is_none());
        assert!(reg.get_service_by_id(id).is_none());
        assert_eq!(*events.lock(), vec!["reg", "mod", "unreg"]);
        // Double unregister fails cleanly.
        assert!(matches!(
            reg.unregister(id),
            Err(OsgiError::NoSuchService(_))
        ));
    }

    #[test]
    fn listener_filter_restricts_events() {
        let reg = ServiceRegistry::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        reg.add_listener(Some(Filter::parse("(kind=ui)").unwrap()), move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        reg.register(
            BundleId::SYSTEM,
            &["t.A"],
            constant(1),
            Properties::new().with("kind", "ui"),
        )
        .unwrap();
        reg.register(BundleId::SYSTEM, &["t.B"], constant(2), Properties::new())
            .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn remove_listener_stops_events() {
        let reg = ServiceRegistry::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let id = reg.add_listener(None, move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        reg.remove_listener(id);
        reg.register(BundleId::SYSTEM, &["t.A"], constant(1), Properties::new())
            .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn unregister_bundle_sweeps_owned_services() {
        let reg = ServiceRegistry::new();
        let b1 = BundleId::from_raw(1);
        let b2 = BundleId::from_raw(2);
        reg.register(b1, &["t.A"], constant(1), Properties::new())
            .unwrap();
        reg.register(b1, &["t.B"], constant(2), Properties::new())
            .unwrap();
        reg.register(b2, &["t.C"], constant(3), Properties::new())
            .unwrap();
        assert_eq!(reg.unregister_bundle(b1), 2);
        assert_eq!(reg.service_count(), 1);
        assert!(reg.get_service("t.C").is_some());
    }

    #[test]
    fn all_references_supports_filters() {
        let reg = ServiceRegistry::new();
        reg.register(
            BundleId::SYSTEM,
            &["t.A"],
            constant(1),
            Properties::new().with("remote", true),
        )
        .unwrap();
        reg.register(BundleId::SYSTEM, &["t.B"], constant(2), Properties::new())
            .unwrap();
        assert_eq!(reg.all_references(None).len(), 2);
        let f = Filter::parse("(remote=true)").unwrap();
        assert_eq!(reg.all_references(Some(&f)).len(), 1);
    }

    #[test]
    fn lookup_of_absent_interface_is_none() {
        let reg = ServiceRegistry::new();
        assert!(reg.get_reference("nope").is_none());
        assert!(reg.get_service("nope").is_none());
        assert!(reg.get_references("nope", None).is_empty());
    }

    #[test]
    fn set_properties_visible_through_all_interfaces() {
        let reg = ServiceRegistry::new();
        let registration = reg
            .register(
                BundleId::SYSTEM,
                &["t.A", "t.B"],
                constant(1),
                Properties::new(),
            )
            .unwrap();
        registration
            .set_properties(Properties::new().with("zone", "eu"))
            .unwrap();
        // Both interfaces hash to (potentially) different shards, yet both
        // observe the update through the shared registration.
        assert_eq!(
            reg.get_reference("t.A")
                .unwrap()
                .properties()
                .get_str("zone"),
            Some("eu")
        );
        assert_eq!(
            reg.get_reference("t.B")
                .unwrap()
                .properties()
                .get_str("zone"),
            Some("eu")
        );
    }

    #[test]
    fn concurrent_lookups_during_churn() {
        // Hammer the registry from reader threads while a writer
        // registers and unregisters: no deadlock, readers always see
        // either a consistent service or none, and the final state is
        // exactly the services left registered.
        let reg = ServiceRegistry::new();
        reg.register(
            BundleId::SYSTEM,
            &["keep.A"],
            constant(1),
            Properties::new(),
        )
        .unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let reg = reg.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    // At least one lookup is guaranteed even if the
                    // writer finishes before this thread is scheduled.
                    loop {
                        let svc = reg.get_service("keep.A").expect("keep.A stays registered");
                        assert_eq!(svc.invoke("x", &[]).unwrap(), Value::I64(1));
                        let _ = reg.get_references("churn.B", None);
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let r = reg
                .register(
                    BundleId::SYSTEM,
                    &["churn.B"],
                    constant(2),
                    Properties::new(),
                )
                .unwrap();
            let _ = reg.get_reference("churn.B");
            r.unregister().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(reg.service_count(), 1);
        assert_eq!(reg.interfaces(), vec!["keep.A".to_owned()]);
    }
}
