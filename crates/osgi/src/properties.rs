//! Service properties.
//!
//! Every service registration carries a property dictionary used for
//! filter-based lookup ([`crate::Filter`]), service ranking, and transport
//! of metadata in R-OSGi leases. Well-known keys mirror the OSGi spec:
//! [`Properties::SERVICE_ID`], [`Properties::SERVICE_RANKING`], and
//! [`Properties::OBJECT_CLASS`].

use std::collections::BTreeMap;
use std::fmt;

use crate::value::Value;

/// An ordered string-keyed property dictionary.
///
/// # Example
///
/// ```
/// use alfredo_osgi::Properties;
///
/// let props = Properties::new()
///     .with("device.kind", "touchscreen")
///     .with_ranking(10);
/// assert_eq!(props.get_str("device.kind"), Some("touchscreen"));
/// assert_eq!(props.ranking(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Properties {
    entries: BTreeMap<String, Value>,
}

impl Properties {
    /// The framework-assigned unique service id.
    pub const SERVICE_ID: &'static str = "service.id";
    /// Integer ranking; higher ranked services win `get_service`.
    pub const SERVICE_RANKING: &'static str = "service.ranking";
    /// Interfaces the service is registered under.
    pub const OBJECT_CLASS: &'static str = "objectClass";
    /// Marker property set on proxies created by `alfredo-rosgi`.
    pub const REMOTE_PROXY: &'static str = "service.remote.proxy";

    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Properties::default()
    }

    /// Builder-style insert.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.entries.insert(key.into(), value.into());
        self
    }

    /// Builder-style ranking insert.
    pub fn with_ranking(self, ranking: i64) -> Self {
        self.with(Properties::SERVICE_RANKING, ranking)
    }

    /// Inserts a property, returning the previous value if any.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        self.entries.insert(key.into(), value.into())
    }

    /// Removes a property.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.entries.remove(key)
    }

    /// Looks up a property.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Looks up a string property.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Looks up an integer property.
    pub fn get_i64(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(Value::as_i64)
    }

    /// Looks up a boolean property.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Value::as_bool)
    }

    /// The service ranking (defaults to 0, as in OSGi).
    pub fn ranking(&self) -> i64 {
        self.get_i64(Properties::SERVICE_RANKING).unwrap_or(0)
    }

    /// Returns `true` if `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges `other` into `self`, overwriting duplicate keys.
    pub fn merge(&mut self, other: &Properties) {
        for (k, v) in other.iter() {
            self.entries.insert(k.to_owned(), v.clone());
        }
    }
}

impl fmt::Display for Properties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl<K: Into<String>, V: Into<Value>> FromIterator<(K, V)> for Properties {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Properties {
            entries: iter
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        }
    }
}

impl<K: Into<String>, V: Into<Value>> Extend<(K, V)> for Properties {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.entries.insert(k.into(), v.into());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut p = Properties::new();
        assert!(p.is_empty());
        p.insert("a", 1i64);
        assert_eq!(p.get_i64("a"), Some(1));
        assert_eq!(p.insert("a", 2i64), Some(Value::I64(1)));
        assert_eq!(p.remove("a"), Some(Value::I64(2)));
        assert!(p.get("a").is_none());
    }

    #[test]
    fn ranking_defaults_to_zero() {
        assert_eq!(Properties::new().ranking(), 0);
        assert_eq!(Properties::new().with_ranking(-5).ranking(), -5);
    }

    #[test]
    fn typed_getters_reject_wrong_types() {
        let p = Properties::new().with("s", "text");
        assert_eq!(p.get_str("s"), Some("text"));
        assert_eq!(p.get_i64("s"), None);
        assert_eq!(p.get_bool("s"), None);
    }

    #[test]
    fn merge_overwrites() {
        let mut a = Properties::new().with("x", 1i64).with("y", 1i64);
        let b = Properties::new().with("y", 2i64).with("z", 3i64);
        a.merge(&b);
        assert_eq!(a.get_i64("x"), Some(1));
        assert_eq!(a.get_i64("y"), Some(2));
        assert_eq!(a.get_i64("z"), Some(3));
    }

    #[test]
    fn from_iterator_and_display() {
        let p: Properties = [("b", 2i64), ("a", 1i64)].into_iter().collect();
        assert_eq!(p.len(), 2);
        // BTreeMap ordering: keys sorted.
        assert_eq!(p.to_string(), "{a=1, b=2}");
    }
}
