//! A minimal JSON value, parser, and writer.
//!
//! The workspace builds fully offline with no external crates, so the few
//! places that need a human-inspectable text encoding (the HTTP gateway,
//! the service-descriptor metadata) use this module instead of `serde`.
//! It is deliberately small: a [`Json`] tree, a recursive-descent parser,
//! a writer, and the [`ToJson`]/[`FromJson`] conversion traits.
//!
//! Numbers are kept lossless for the framework's needs: integers without a
//! fractional part parse as [`Json::I64`], everything else as
//! [`Json::F64`]; the writer always emits a decimal point (or exponent)
//! for floats so the distinction survives a round trip.
//!
//! # Example
//!
//! ```
//! use alfredo_osgi::json::Json;
//!
//! let j = Json::parse(r#"{"kind":"click","n":3}"#).unwrap();
//! assert_eq!(j.get("kind").and_then(Json::as_str), Some("click"));
//! assert_eq!(j.get("n").and_then(Json::as_i64), Some(3));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::properties::Properties;
use crate::value::Value;

/// A parse or conversion error, with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional part or exponent.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (keys kept in sorted order).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(entries: I) -> Json {
        Json::Obj(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Returns the bool if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer if this is an `I64` (or an exact `F64`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            Json::F64(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    /// Returns the number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the elements if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the entries if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a key of an `Obj`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// `true` for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses a JSON document. The whole input must be consumed (modulo
    /// trailing whitespace).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Serializes to a compact JSON string.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Appends the compact JSON serialization onto `out` — the
    /// allocation-free form of [`Json::to_json_string`] for hot paths
    /// that assemble documents into a reused buffer.
    pub fn write_to(&self, out: &mut String) {
        self.write(out);
    }

    /// Appends `s` as a JSON string literal (quoted and escaped) onto
    /// `out`, without building an intermediate [`Json::Str`].
    pub fn write_str_to(s: &str, out: &mut String) {
        write_escaped(s, out);
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::I64(v) => {
                out.push_str(&v.to_string());
            }
            Json::F64(v) => {
                if !v.is_finite() {
                    // NaN/inf are not representable in JSON.
                    out.push_str("null");
                } else {
                    let s = v.to_string();
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    // Clean spans are bulk-copied; only `"`, `\`, and control bytes need
    // per-char handling (multi-byte UTF-8 is >= 0x80 and never matches,
    // so byte offsets stay on char boundaries).
    let mut start = 0;
    for (i, b) in s.bytes().enumerate() {
        if b == b'"' || b == b'\\' || b < 0x20 {
            out.push_str(&s[start..i]);
            match b {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\r' => out.push_str("\\r"),
                b'\t' => out.push_str("\\t"),
                _ => {
                    let _ = write!(out, "\\u{:04x}", b);
                }
            }
            start = i + 1;
        }
    }
    out.push_str(&s[start..]);
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => err("unexpected end of input"),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Json::Null)
                } else {
                    err(format!("invalid literal at byte {}", self.pos))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Json::Bool(true))
                } else {
                    err(format!("invalid literal at byte {}", self.pos))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Json::Bool(false))
                } else {
                    err(format!("invalid literal at byte {}", self.pos))
                }
            }
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return err("unpaired surrogate");
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return err("invalid low surrogate");
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| JsonError("invalid surrogate pair".into()))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| JsonError("invalid \\u escape".into()))?
                            };
                            out.push(c);
                            // parse_hex4 leaves pos after the 4 digits;
                            // compensate for the += 1 below.
                            self.pos -= 1;
                        }
                        _ => return err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input is a &str, so
                    // byte sequences are valid; find the char boundary.
                    let rest = &self.bytes[self.pos..];
                    let s =
                        std::str::from_utf8(rest).map_err(|_| JsonError("invalid utf-8".into()))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return err("truncated \\u escape");
        }
        let digits = &self.bytes[self.pos..self.pos + 4];
        let s = std::str::from_utf8(digits).map_err(|_| JsonError("bad \\u".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| JsonError("bad \\u".into()))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("bad number".into()))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::F64(v)),
            Err(_) => err(format!("invalid number '{text}'")),
        }
    }
}

/// Conversion of a domain type into a [`Json`] tree.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;

    /// Convenience: straight to a string.
    fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }
}

/// Conversion of a [`Json`] tree back into a domain type.
pub trait FromJson: Sized {
    /// Rebuilds the value.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] if the tree has the wrong shape.
    fn from_json(json: &Json) -> Result<Self, JsonError>;

    /// Convenience: parse then convert.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or wrong shape.
    fn from_json_str(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(json.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_bool()
            .ok_or_else(|| JsonError("expected bool".into()))
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::I64(*self)
    }
}

impl FromJson for i64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_i64()
            .ok_or_else(|| JsonError("expected integer".into()))
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        match i64::try_from(*self) {
            Ok(v) => Json::I64(v),
            Err(_) => Json::F64(*self as f64),
        }
    }
}

impl FromJson for u64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_u64()
            .ok_or_else(|| JsonError("expected unsigned integer".into()))
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::I64(i64::from(*self))
    }
}

impl FromJson for u32 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_u64()
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| JsonError("expected u32".into()))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_f64()
            .ok_or_else(|| JsonError("expected number".into()))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError("expected string".into()))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_owned())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_arr()
            .ok_or_else(|| JsonError("expected array".into()))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        if json.is_null() {
            Ok(None)
        } else {
            T::from_json(json).map(Some)
        }
    }
}

/// Helper: extract a required field of an object.
///
/// # Errors
///
/// Returns [`JsonError`] if `json` is not an object or the field is
/// missing or of the wrong shape.
pub fn field<T: FromJson>(json: &Json, name: &str) -> Result<T, JsonError> {
    match json.get(name) {
        Some(v) => T::from_json(v).map_err(|e| JsonError(format!("field '{name}': {}", e.0))),
        None => err(format!("missing field '{name}'")),
    }
}

/// Helper: extract an optional field (missing ⇒ `None`).
///
/// # Errors
///
/// Returns [`JsonError`] if the field is present but of the wrong shape.
pub fn opt_field<T: FromJson>(json: &Json, name: &str) -> Result<Option<T>, JsonError> {
    match json.get(name) {
        Some(v) => {
            Option::<T>::from_json(v).map_err(|e| JsonError(format!("field '{name}': {}", e.0)))
        }
        None => Ok(None),
    }
}

// --- Value <-> Json -------------------------------------------------------
//
// `Value` has variants JSON lacks (unit, bytes, structs, i64/f64 split), so
// the ambiguous ones are wrapped in single-key tag objects: `$bytes`,
// `$struct`, and `$map` (the latter only so a map's own keys can never
// collide with the tags). Scalars and lists map directly.

impl ToJson for Value {
    fn to_json(&self) -> Json {
        match self {
            Value::Unit => Json::Null,
            Value::Bool(b) => Json::Bool(*b),
            Value::I64(v) => Json::I64(*v),
            Value::F64(v) => Json::F64(*v),
            Value::Str(s) => Json::Str(s.clone()),
            Value::Bytes(b) => Json::obj([(
                "$bytes",
                Json::Arr(b.iter().map(|&x| Json::I64(i64::from(x))).collect()),
            )]),
            Value::List(items) => Json::Arr(items.iter().map(ToJson::to_json).collect()),
            Value::Map(m) => Json::obj([(
                "$map",
                Json::Obj(m.iter().map(|(k, v)| (k.clone(), v.to_json())).collect()),
            )]),
            Value::Struct { type_name, fields } => Json::obj([
                ("$struct", Json::Str(type_name.clone())),
                (
                    "$fields",
                    Json::Obj(
                        fields
                            .iter()
                            .map(|(k, v)| (k.clone(), v.to_json()))
                            .collect(),
                    ),
                ),
            ]),
        }
    }
}

impl FromJson for Value {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(match json {
            Json::Null => Value::Unit,
            Json::Bool(b) => Value::Bool(*b),
            Json::I64(v) => Value::I64(*v),
            Json::F64(v) => Value::F64(*v),
            Json::Str(s) => Value::Str(s.clone()),
            Json::Arr(items) => Value::List(
                items
                    .iter()
                    .map(Value::from_json)
                    .collect::<Result<_, _>>()?,
            ),
            Json::Obj(m) => {
                if let Some(bytes) = m.get("$bytes") {
                    let arr = bytes
                        .as_arr()
                        .ok_or_else(|| JsonError("$bytes must be an array".into()))?;
                    let mut out = Vec::with_capacity(arr.len());
                    for b in arr {
                        let v = b
                            .as_u64()
                            .and_then(|v| u8::try_from(v).ok())
                            .ok_or_else(|| JsonError("$bytes element out of range".into()))?;
                        out.push(v);
                    }
                    Value::Bytes(out)
                } else if let Some(map) = m.get("$map") {
                    let obj = map
                        .as_obj()
                        .ok_or_else(|| JsonError("$map must be an object".into()))?;
                    Value::Map(
                        obj.iter()
                            .map(|(k, v)| Ok((k.clone(), Value::from_json(v)?)))
                            .collect::<Result<_, JsonError>>()?,
                    )
                } else if let Some(name) = m.get("$struct") {
                    let type_name = name
                        .as_str()
                        .ok_or_else(|| JsonError("$struct must be a string".into()))?
                        .to_owned();
                    let fields = m
                        .get("$fields")
                        .and_then(Json::as_obj)
                        .ok_or_else(|| JsonError("$fields must be an object".into()))?;
                    Value::Struct {
                        type_name,
                        fields: fields
                            .iter()
                            .map(|(k, v)| Ok((k.clone(), Value::from_json(v)?)))
                            .collect::<Result<_, JsonError>>()?,
                    }
                } else {
                    // A plain object (e.g. from an external client) reads
                    // as a map.
                    Value::Map(
                        m.iter()
                            .map(|(k, v)| Ok((k.clone(), Value::from_json(v)?)))
                            .collect::<Result<_, JsonError>>()?,
                    )
                }
            }
        })
    }
}

impl ToJson for Properties {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_owned(), v.to_json()))
                .collect(),
        )
    }
}

impl FromJson for Properties {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let obj = json
            .as_obj()
            .ok_or_else(|| JsonError("expected object".into()))?;
        let mut props = Properties::new();
        for (k, v) in obj {
            props.insert(k.clone(), Value::from_json(v)?);
        }
        Ok(props)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null", "true", "false", "0", "-7", "3.5", "\"hi\"", "[]", "{}",
        ] {
            let j = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&j.to_json_string()).unwrap(), j, "{text}");
        }
    }

    #[test]
    fn integer_float_distinction_survives() {
        assert_eq!(Json::parse("5").unwrap(), Json::I64(5));
        assert_eq!(Json::parse("5.0").unwrap(), Json::F64(5.0));
        assert_eq!(Json::F64(5.0).to_json_string(), "5.0");
        assert_eq!(Json::I64(5).to_json_string(), "5");
    }

    #[test]
    fn nested_document_parses() {
        let j = Json::parse(r#" {"a": [1, 2.5, {"b": null}], "c": "x\ny"} "#).unwrap();
        assert_eq!(j.get("c").and_then(Json::as_str), Some("x\ny"));
        let arr = j.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote \" slash \\ newline \n tab \t unicode \u{1F600} end";
        let j = Json::Str(original.to_owned());
        let text = j.to_json_string();
        assert_eq!(Json::parse(&text).unwrap(), j);
        // Explicit \u escapes, including a surrogate pair.
        let j = Json::parse(r#""aA😀""#).unwrap();
        assert_eq!(j.as_str(), Some("aA\u{1F600}"));
    }

    #[test]
    fn malformed_inputs_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "\"abc",
            "01x",
            "{\"a\" 1}",
            "[1] tail",
            "nul",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn value_round_trips_through_json() {
        let v = Value::structure(
            "t.T",
            [
                ("list", Value::from(vec![1i64, 2, 3])),
                ("nested", Value::map([("k", Value::Bytes(vec![9, 9]))])),
                ("f", Value::F64(2.0)),
                ("unit", Value::Unit),
            ],
        );
        let text = v.to_json_string();
        let back = Value::from_json_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn plain_object_reads_as_map() {
        let v = Value::from_json_str(r#"{"a": 1, "b": [true]}"#).unwrap();
        assert_eq!(v.field("a"), Some(&Value::I64(1)));
        assert_eq!(v.field("b"), Some(&Value::List(vec![Value::Bool(true)])));
    }

    #[test]
    fn properties_round_trip() {
        let p = Properties::new()
            .with("a", 1i64)
            .with("s", "x")
            .with_ranking(3);
        let text = p.to_json_string();
        let back = Properties::from_json_str(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn field_helpers_report_names() {
        let j = Json::parse(r#"{"n": 3}"#).unwrap();
        let n: i64 = field(&j, "n").unwrap();
        assert_eq!(n, 3);
        let missing: Result<i64, _> = field(&j, "absent");
        assert!(missing.unwrap_err().0.contains("absent"));
        let opt: Option<i64> = opt_field(&j, "absent").unwrap();
        assert!(opt.is_none());
    }
}
