//! Concurrency stress tests: the registry, event bus, and framework are
//! shared across every bundle and every R-OSGi connection thread, so they
//! must stay consistent under parallel mutation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use alfredo_osgi::{
    BundleActivator, BundleContext, BundleId, Event, EventAdmin, FnService, Framework, Properties,
    ServiceRegistry, Value,
};

fn constant(v: i64) -> Arc<dyn alfredo_osgi::Service> {
    Arc::new(FnService::new(move |_, _| Ok(Value::I64(v))))
}

#[test]
fn registry_survives_parallel_register_unregister_lookup() {
    let registry = ServiceRegistry::new();
    let mut handles = Vec::new();

    // Writers: register + unregister in tight loops on distinct interfaces.
    for t in 0..4i64 {
        let registry = registry.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..200 {
                let iface = format!("stress.T{t}");
                let reg = registry
                    .register(
                        BundleId::from_raw(t as u64 + 1),
                        &[&iface],
                        constant(t * 1000 + i),
                        Properties::new(),
                    )
                    .unwrap();
                if i % 2 == 0 {
                    reg.unregister().unwrap();
                }
            }
        }));
    }
    // Readers: lookups + filtered scans concurrently.
    for _ in 0..4 {
        let registry = registry.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..500 {
                for t in 0..4 {
                    let _ = registry.get_service(&format!("stress.T{t}"));
                }
                let _ = registry.all_references(None);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Half of each writer's 200 registrations remain.
    assert_eq!(registry.service_count(), 4 * 100);
    // Sweeping by bundle clears exactly each owner's survivors.
    for t in 0..4u64 {
        assert_eq!(registry.unregister_bundle(BundleId::from_raw(t + 1)), 100);
    }
    assert_eq!(registry.service_count(), 0);
}

#[test]
fn event_bus_survives_parallel_post_subscribe() {
    let bus = EventAdmin::new();
    let received = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    // Subscribers come and go while posters hammer the bus.
    for _ in 0..3 {
        let bus = bus.clone();
        let received = Arc::clone(&received);
        handles.push(std::thread::spawn(move || {
            for _ in 0..100 {
                let r = Arc::clone(&received);
                let id = bus.subscribe("stress/*", move |_| {
                    r.fetch_add(1, Ordering::Relaxed);
                });
                bus.post(&Event::new("stress/self", Properties::new()));
                bus.unsubscribe(id);
            }
        }));
    }
    for _ in 0..3 {
        let bus = bus.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..200i64 {
                bus.post(&Event::new("stress/other", Properties::new().with("i", i)));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Every subscriber saw at least its own post while subscribed.
    assert!(received.load(Ordering::Relaxed) >= 300);
    assert_eq!(bus.subscription_count(), 0);
}

struct Registrar;

impl BundleActivator for Registrar {
    fn start(&mut self, ctx: &BundleContext) -> Result<(), String> {
        ctx.register_service(&["stress.Bundle"], constant(1), Properties::new())
            .map_err(|e| e.to_string())?;
        Ok(())
    }

    fn stop(&mut self, _ctx: &BundleContext) -> Result<(), String> {
        Ok(())
    }
}

#[test]
fn framework_survives_parallel_bundle_lifecycles() {
    let fw = Framework::new();
    let mut handles = Vec::new();
    for _ in 0..4 {
        let fw = fw.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..50 {
                let id = fw.install("stress.bundle", "1.0", Box::new(Registrar));
                fw.start_bundle(id).unwrap();
                fw.stop_bundle(id).unwrap();
                fw.uninstall(id).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Only the system bundle remains; no leaked services.
    assert_eq!(fw.bundles().len(), 1);
    assert_eq!(fw.registry().service_count(), 0);
}
