//! Property-based tests for the OSGi substrate: filter round-trips,
//! artifact codec, and registry ranking invariants.

use std::sync::Arc;

use alfredo_osgi::{
    BundleArtifact, BundleId, Filter, FnService, Manifest, Properties, ServiceRegistry, Value,
};
use proptest::prelude::*;

fn attr_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9.]{0,12}"
}

fn literal_strategy() -> impl Strategy<Value = String> {
    // Any printable text including characters that need escaping.
    "[ -~]{0,12}"
}

fn leaf_filter() -> impl Strategy<Value = Filter> {
    (attr_strategy(), literal_strategy()).prop_flat_map(|(attr, value)| {
        prop_oneof![
            Just(Filter::Equals {
                attr: attr.clone(),
                value: value.clone()
            }),
            Just(Filter::Approx {
                attr: attr.clone(),
                value: value.clone()
            }),
            Just(Filter::GreaterEq {
                attr: attr.clone(),
                value: value.clone()
            }),
            Just(Filter::LessEq {
                attr: attr.clone(),
                value: value.clone()
            }),
            Just(Filter::Present { attr: attr.clone() }),
        ]
    })
}

fn filter_strategy() -> impl Strategy<Value = Filter> {
    leaf_filter().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Filter::And),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Filter::Or),
            inner.prop_map(|f| Filter::Not(Box::new(f))),
        ]
    })
}

proptest! {
    /// Display → parse is the identity on filter ASTs.
    #[test]
    fn filter_display_parse_round_trip(f in filter_strategy()) {
        let text = f.to_string();
        let reparsed = Filter::parse(&text)
            .unwrap_or_else(|e| panic!("reparse of {text:?} failed: {e}"));
        prop_assert_eq!(reparsed, f);
    }

    /// The filter parser never panics on arbitrary input.
    #[test]
    fn filter_parser_never_panics(s in "[ -~]{0,64}") {
        let _ = Filter::parse(&s);
    }

    /// De Morgan: !(a & b) ≡ (!a | !b) over arbitrary properties.
    #[test]
    fn filter_de_morgan(
        a in leaf_filter(),
        b in leaf_filter(),
        keys in prop::collection::vec(attr_strategy(), 0..6),
        vals in prop::collection::vec(-100i64..100, 0..6),
    ) {
        let mut props = Properties::new();
        for (k, v) in keys.iter().zip(&vals) {
            props.insert(k.clone(), *v);
        }
        let not_and = Filter::Not(Box::new(Filter::And(vec![a.clone(), b.clone()])));
        let or_nots = Filter::Or(vec![
            Filter::Not(Box::new(a)),
            Filter::Not(Box::new(b)),
        ]);
        prop_assert_eq!(not_and.matches(&props), or_nots.matches(&props));
    }

    /// Artifact encode → decode is the identity.
    #[test]
    fn artifact_round_trips(
        name in "[a-z.]{1,20}",
        version in "[0-9.]{1,8}",
        datas in prop::collection::vec(
            ("[a-z]{1,10}", prop::collection::vec(any::<u8>(), 0..128)),
            0..6,
        ),
        keys in prop::collection::vec("[a-z/]{1,10}", 0..3),
    ) {
        let mut artifact = BundleArtifact::new(Manifest::new(name, version, "prop test"));
        for key in keys {
            artifact = artifact.with_activator(key);
        }
        for (n, bytes) in datas {
            artifact = artifact.with_data(n, bytes);
        }
        let encoded = artifact.encode();
        prop_assert_eq!(BundleArtifact::decode(&encoded).unwrap(), artifact);
    }

    /// Artifact decoding never panics on arbitrary bytes.
    #[test]
    fn artifact_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = BundleArtifact::decode(&bytes);
    }

    /// The registry always returns the highest-ranked service; ties break
    /// toward the oldest registration.
    #[test]
    fn registry_ranking_invariant(rankings in prop::collection::vec(-10i64..10, 1..12)) {
        let registry = ServiceRegistry::new();
        for (idx, r) in rankings.iter().enumerate() {
            let v = idx as i64;
            registry
                .register(
                    BundleId::SYSTEM,
                    &["t.Ranked"],
                    Arc::new(FnService::new(move |_, _| Ok(Value::I64(v)))),
                    Properties::new().with_ranking(*r),
                )
                .unwrap();
        }
        let best_rank = *rankings.iter().max().unwrap();
        let expected_idx = rankings.iter().position(|r| *r == best_rank).unwrap();
        let got = registry
            .get_service("t.Ranked")
            .unwrap()
            .invoke("x", &[])
            .unwrap();
        prop_assert_eq!(got, Value::I64(expected_idx as i64));

        // The sorted reference list is monotone non-increasing in ranking.
        let refs = registry.get_references("t.Ranked", None);
        prop_assert!(refs.windows(2).all(|w| w[0].ranking() >= w[1].ranking()));
    }

    /// Value serde JSON round-trip (descriptor dumps).
    #[test]
    fn value_json_round_trip(n in any::<i64>(), s in ".{0,20}", b in prop::collection::vec(any::<u8>(), 0..32)) {
        let v = Value::structure(
            "prop.T",
            [
                ("n", Value::I64(n)),
                ("s", Value::Str(s)),
                ("b", Value::Bytes(b)),
                ("list", Value::List(vec![Value::Bool(true), Value::Unit])),
            ],
        );
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, v);
    }
}
