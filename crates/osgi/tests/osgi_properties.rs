//! Randomized tests for the OSGi substrate: filter round-trips, artifact
//! codec, and registry ranking invariants. Driven by the deterministic
//! [`SimRng`] so failures are reproducible from the printed seed.

use std::sync::Arc;

use alfredo_osgi::{
    BundleArtifact, BundleId, Filter, FnService, FromJson, Manifest, Properties, ServiceRegistry,
    ToJson, Value,
};
use alfredo_sim::SimRng;

const SEED: u64 = 0xa1f2_ed00;
const CASES: usize = 200;

fn rand_string(rng: &mut SimRng, charset: &[u8], min: usize, max: usize) -> String {
    let len = min + rng.next_below((max - min + 1) as u64) as usize;
    (0..len)
        .map(|_| charset[rng.next_below(charset.len() as u64) as usize] as char)
        .collect()
}

fn attr(rng: &mut SimRng) -> String {
    const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.";
    let mut s = rand_string(rng, HEAD, 1, 1);
    s.push_str(&rand_string(rng, TAIL, 0, 12));
    s
}

fn literal(rng: &mut SimRng) -> String {
    // Any printable ASCII including characters that need escaping.
    let printable: Vec<u8> = (0x20..0x7f).collect();
    rand_string(rng, &printable, 0, 12)
}

fn leaf_filter(rng: &mut SimRng) -> Filter {
    let attr = attr(rng);
    let value = literal(rng);
    match rng.next_below(5) {
        0 => Filter::Equals { attr, value },
        1 => Filter::Approx { attr, value },
        2 => Filter::GreaterEq { attr, value },
        3 => Filter::LessEq { attr, value },
        _ => Filter::Present { attr },
    }
}

fn filter(rng: &mut SimRng, depth: u32) -> Filter {
    if depth == 0 || rng.next_below(3) == 0 {
        return leaf_filter(rng);
    }
    match rng.next_below(3) {
        0 => Filter::And(
            (0..1 + rng.next_below(3))
                .map(|_| filter(rng, depth - 1))
                .collect(),
        ),
        1 => Filter::Or(
            (0..1 + rng.next_below(3))
                .map(|_| filter(rng, depth - 1))
                .collect(),
        ),
        _ => Filter::Not(Box::new(filter(rng, depth - 1))),
    }
}

/// Display → parse is the identity on filter ASTs.
#[test]
fn filter_display_parse_round_trip() {
    let mut rng = SimRng::seed_from(SEED);
    for case in 0..CASES {
        let f = filter(&mut rng, 3);
        let text = f.to_string();
        let reparsed = Filter::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: reparse of {text:?} failed: {e}"));
        assert_eq!(reparsed, f, "case {case}: {text:?}");
    }
}

/// The filter parser never panics on arbitrary input.
#[test]
fn filter_parser_never_panics() {
    let mut rng = SimRng::seed_from(SEED ^ 1);
    let printable: Vec<u8> = (0x20..0x7f).collect();
    for _ in 0..CASES {
        let s = rand_string(&mut rng, &printable, 0, 64);
        let _ = Filter::parse(&s);
    }
}

/// De Morgan: !(a & b) ≡ (!a | !b) over arbitrary properties.
#[test]
fn filter_de_morgan() {
    let mut rng = SimRng::seed_from(SEED ^ 2);
    for case in 0..CASES {
        let a = leaf_filter(&mut rng);
        let b = leaf_filter(&mut rng);
        let mut props = Properties::new();
        for _ in 0..rng.next_below(6) {
            let k = attr(&mut rng);
            let v = rng.next_below(200) as i64 - 100;
            props.insert(k, v);
        }
        let not_and = Filter::Not(Box::new(Filter::And(vec![a.clone(), b.clone()])));
        let or_nots = Filter::Or(vec![Filter::Not(Box::new(a)), Filter::Not(Box::new(b))]);
        assert_eq!(
            not_and.matches(&props),
            or_nots.matches(&props),
            "case {case}"
        );
    }
}

/// Artifact encode → decode is the identity.
#[test]
fn artifact_round_trips() {
    let mut rng = SimRng::seed_from(SEED ^ 3);
    for case in 0..CASES {
        let name = rand_string(&mut rng, b"abcdefghijklmnopqrstuvwxyz.", 1, 20);
        let version = rand_string(&mut rng, b"0123456789.", 1, 8);
        let mut artifact = BundleArtifact::new(Manifest::new(name, version, "rng test"));
        for _ in 0..rng.next_below(3) {
            let key = rand_string(&mut rng, b"abcdefghijklmnopqrstuvwxyz/", 1, 10);
            artifact = artifact.with_activator(key);
        }
        for _ in 0..rng.next_below(6) {
            let n = rand_string(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 1, 10);
            let len = rng.next_below(128) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            artifact = artifact.with_data(n, bytes);
        }
        let encoded = artifact.encode();
        assert_eq!(
            BundleArtifact::decode(&encoded).unwrap(),
            artifact,
            "case {case}"
        );
    }
}

/// Artifact decoding never panics on arbitrary bytes.
#[test]
fn artifact_decode_never_panics() {
    let mut rng = SimRng::seed_from(SEED ^ 4);
    for _ in 0..CASES {
        let len = rng.next_below(256) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = BundleArtifact::decode(&bytes);
    }
}

/// The registry always returns the highest-ranked service; ties break
/// toward the oldest registration.
#[test]
fn registry_ranking_invariant() {
    let mut rng = SimRng::seed_from(SEED ^ 5);
    for case in 0..50 {
        let n = 1 + rng.next_below(11) as usize;
        let rankings: Vec<i64> = (0..n).map(|_| rng.next_below(20) as i64 - 10).collect();
        let registry = ServiceRegistry::new();
        for (idx, r) in rankings.iter().enumerate() {
            let v = idx as i64;
            registry
                .register(
                    BundleId::SYSTEM,
                    &["t.Ranked"],
                    Arc::new(FnService::new(move |_, _| Ok(Value::I64(v)))),
                    Properties::new().with_ranking(*r),
                )
                .unwrap();
        }
        let best_rank = *rankings.iter().max().unwrap();
        let expected_idx = rankings.iter().position(|r| *r == best_rank).unwrap();
        let got = registry
            .get_service("t.Ranked")
            .unwrap()
            .invoke("x", &[])
            .unwrap();
        assert_eq!(got, Value::I64(expected_idx as i64), "case {case}");

        // The sorted reference list is monotone non-increasing in ranking.
        let refs = registry.get_references("t.Ranked", None);
        assert!(refs.windows(2).all(|w| w[0].ranking() >= w[1].ranking()));
    }
}

/// Value JSON round-trip (descriptor dumps).
#[test]
fn value_json_round_trip() {
    let mut rng = SimRng::seed_from(SEED ^ 6);
    let printable: Vec<u8> = (0x20..0x7f).collect();
    for case in 0..CASES {
        let blen = rng.next_below(32) as usize;
        let v = Value::structure(
            "prop.T",
            [
                ("n", Value::I64(rng.next_u64() as i64)),
                ("s", Value::Str(rand_string(&mut rng, &printable, 0, 20))),
                (
                    "b",
                    Value::Bytes((0..blen).map(|_| rng.next_u64() as u8).collect()),
                ),
                ("list", Value::List(vec![Value::Bool(true), Value::Unit])),
            ],
        );
        let json = v.to_json_string();
        let back = Value::from_json_str(&json).unwrap();
        assert_eq!(back, v, "case {case}");
    }
}
