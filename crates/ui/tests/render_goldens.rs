//! Golden renderings: exact expected output for a fixed UI on fixed
//! devices, pinning the renderers' observable behaviour.

use alfredo_ui::control::{ControlKind, RelationKind};
use alfredo_ui::render::{GridRenderer, HtmlRenderer, Renderer, WidgetRenderer};
use alfredo_ui::{Control, DeviceCapabilities, Relation, UiDescription};

fn golden_ui() -> UiDescription {
    UiDescription::new("golden")
        .with_control(Control::label("title", "Golden sample"))
        .with_control(Control::panel(
            "row",
            false,
            vec![Control::button("yes", "Yes"), Control::button("no", "No")],
        ))
        .with_control(Control::list("options", ["alpha", "beta"]))
        .with_control(Control::new("meter", ControlKind::Progress { value: 40 }))
        .with_relation(Relation::new("title", RelationKind::LabelFor, "options"))
}

#[test]
fn grid_golden_nokia() {
    let rendered = GridRenderer::default()
        .render(&golden_ui(), &DeviceCapabilities::nokia_9300i())
        .unwrap();
    // The progress bar width depends on screen columns; check the stable
    // prefix lines exactly and the bar structurally.
    let lines: Vec<&str> = rendered.as_text().lines().collect();
    assert_eq!(lines[0], "== golden ==");
    assert_eq!(lines[1], "Golden sample");
    assert_eq!(lines[2], "[ Yes ]  [ No ]");
    assert_eq!(lines[3], "  alpha");
    assert_eq!(lines[4], "  beta");
    assert!(lines[5].starts_with('[') && lines[5].ends_with(']'));
    let hashes = lines[5].matches('#').count();
    let dashes = lines[5].matches('-').count();
    let frac = hashes as f64 / (hashes + dashes) as f64;
    assert!((0.35..0.45).contains(&frac), "40% bar, got {frac}");
}

#[test]
fn widget_golden_nokia() {
    let rendered = WidgetRenderer::default()
        .render(&golden_ui(), &DeviceCapabilities::nokia_9300i())
        .unwrap();
    let expected = "\
Shell \"golden\" (Landscape)
  Label(\"Golden sample\")
  Composite[row]
    swt.Button(\"Yes\")
    swt.Button(\"No\")
  List(2 items)
  ProgressBar(40%)
";
    assert_eq!(rendered.as_text(), expected);
}

#[test]
fn widget_golden_m600i_portrait() {
    let rendered = WidgetRenderer::default()
        .render(&golden_ui(), &DeviceCapabilities::sony_ericsson_m600i())
        .unwrap();
    let expected = "\
Shell \"golden\" (Portrait)
  Label(\"Golden sample\")
  Composite[column]
    swt.TouchButton(\"Yes\")
    swt.TouchButton(\"No\")
  List(2 items)
  ProgressBar(40%)
";
    assert_eq!(rendered.as_text(), expected);
}

#[test]
fn html_golden_iphone() {
    let rendered = HtmlRenderer::default()
        .render(&golden_ui(), &DeviceCapabilities::iphone())
        .unwrap();
    let html = rendered.as_text();
    // Structural golden: exact element lines in order.
    let body: Vec<&str> = html
        .lines()
        .skip_while(|l| *l != "<body>")
        .skip(1)
        .take_while(|l| *l != "</body>")
        .collect();
    assert_eq!(body[0], r#"<p id="title">Golden sample</p>"#);
    assert_eq!(
        body[1],
        r#"<div id="row" style="display:flex;flex-direction:row">"#
    );
    assert_eq!(
        body[2],
        r#"<button id="yes" onclick="postEvent('yes','click',null)">Yes</button>"#
    );
    assert_eq!(
        body[3],
        r#"<button id="no" onclick="postEvent('no','click',null)">No</button>"#
    );
    assert_eq!(body[4], "</div>");
    assert!(body[5].starts_with(r#"<select id="options""#));
    assert_eq!(body[6], "<option>alpha</option>");
    assert_eq!(body[7], "<option>beta</option>");
    assert_eq!(body[8], "</select>");
    assert_eq!(
        body[9],
        r#"<progress id="meter" max="100" value="40"></progress>"#
    );
}
