//! Randomized tests for the abstract UI model: codec round-trips, renderer
//! totality, and capability-matching invariants. Driven by the
//! deterministic [`SimRng`] so failures are reproducible from the seed.

use alfredo_sim::SimRng;
use alfredo_ui::capability::{CapabilityPlan, ConcreteCapability};
use alfredo_ui::control::{ControlKind, Relation, RelationKind};
use alfredo_ui::render::{GridRenderer, HtmlRenderer, Renderer, WidgetRenderer};
use alfredo_ui::{CapabilityInterface, Control, DeviceCapabilities, UiDescription};

const SEED: u64 = 0x715_eed0;
const CASES: usize = 150;

fn rand_string(rng: &mut SimRng, charset: &[u8], min: usize, max: usize) -> String {
    let len = min + rng.next_below((max - min + 1) as u64) as usize;
    (0..len)
        .map(|_| charset[rng.next_below(charset.len() as u64) as usize] as char)
        .collect()
}

fn ident(rng: &mut SimRng) -> String {
    let mut s = rand_string(rng, b"abcdefghijklmnopqrstuvwxyz", 1, 1);
    s.push_str(&rand_string(
        rng,
        b"abcdefghijklmnopqrstuvwxyz0123456789_",
        0,
        8,
    ));
    s
}

fn text(rng: &mut SimRng) -> String {
    let printable: Vec<u8> = (0x20..0x7f).collect();
    rand_string(rng, &printable, 0, 20)
}

fn leaf_control(rng: &mut SimRng) -> Control {
    let id = ident(rng);
    let t = text(rng);
    match rng.next_below(7) {
        0 => Control::label(id, t),
        1 => Control::button(id, t),
        2 => Control::text_input(id, t),
        3 => {
            let items: Vec<String> = (0..rng.next_below(4)).map(|_| text(rng)).collect();
            Control::list(id, items)
        }
        4 => {
            let w = 1 + rng.next_below(1999) as u32;
            let h = 1 + rng.next_below(1999) as u32;
            Control::image(id, w, h, t)
        }
        5 => Control::new(
            id,
            ControlKind::Progress {
                value: rng.next_below(101) as u8,
            },
        ),
        _ => Control::new(
            id,
            ControlKind::Slider {
                min: rng.next_u64() as i32 as i64,
                max: rng.next_u64() as i32 as i64,
                value: rng.next_u64() as i32 as i64,
            },
        ),
    }
}

fn control(rng: &mut SimRng, depth: u32) -> Control {
    if depth == 0 || rng.next_below(3) != 0 {
        return leaf_control(rng);
    }
    let id = ident(rng);
    let vertical = rng.next_below(2) == 0;
    let children: Vec<Control> = (0..rng.next_below(4))
        .map(|_| control(rng, depth - 1))
        .collect();
    Control::panel(id, vertical, children)
}

fn ui(rng: &mut SimRng) -> UiDescription {
    let name = rand_string(
        rng,
        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ",
        1,
        12,
    );
    let mut ui = UiDescription::new(name);
    for _ in 0..rng.next_below(5) {
        ui = ui.with_control(control(rng, 3));
    }
    for _ in 0..rng.next_below(4) {
        let kind = match rng.next_below(4) {
            0 => RelationKind::LabelFor,
            1 => RelationKind::Triggers,
            2 => RelationKind::DisplaysResultOf,
            _ => RelationKind::Adjacent,
        };
        ui = ui.with_relation(Relation::new(ident(rng), kind, ident(rng)));
    }
    ui
}

/// Encode → decode is the identity on arbitrary UI descriptions.
#[test]
fn ui_wire_round_trip() {
    let mut rng = SimRng::seed_from(SEED);
    for case in 0..CASES {
        let u = ui(&mut rng);
        let bytes = u.encode();
        assert_eq!(
            UiDescription::decode(&bytes).expect("decode"),
            u,
            "case {case}"
        );
    }
}

/// The decoder never panics on arbitrary bytes.
#[test]
fn ui_decode_never_panics() {
    let mut rng = SimRng::seed_from(SEED ^ 2);
    for _ in 0..CASES {
        let len = rng.next_below(256) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = UiDescription::decode(&bytes);
    }
}

/// Every *valid* UI renders on every backend for a capable device, and
/// every control receives a widget binding.
#[test]
fn renderers_are_total_on_valid_uis() {
    let mut rng = SimRng::seed_from(SEED ^ 3);
    let notebook = DeviceCapabilities::notebook();
    let mut checked = 0;
    for _ in 0..CASES {
        let u = ui(&mut rng);
        if u.validate().is_err() {
            continue;
        }
        checked += 1;
        for renderer in [
            Box::new(GridRenderer::default()) as Box<dyn Renderer>,
            Box::new(WidgetRenderer::default()),
            Box::new(HtmlRenderer::default()),
        ] {
            let rendered = renderer
                .render(&u, &notebook)
                .unwrap_or_else(|e| panic!("{} failed: {e}", renderer.name()));
            for control in u.all_controls() {
                assert!(
                    rendered.widget_for(&control.id).is_some(),
                    "{} lost control {}",
                    renderer.name(),
                    control.id
                );
            }
        }
    }
    assert!(checked > 10, "only {checked} valid UIs generated");
}

/// Capability resolution is monotone: adding a federated helper never
/// makes an assignment worse.
#[test]
fn federation_never_degrades_quality() {
    for primary in [
        DeviceCapabilities::nokia_9300i(),
        DeviceCapabilities::sony_ericsson_m600i(),
        DeviceCapabilities::iphone(),
    ] {
        let helper = DeviceCapabilities::notebook();
        let required = [
            CapabilityInterface::KeyboardDevice,
            CapabilityInterface::PointingDevice,
            CapabilityInterface::ScreenDevice,
        ];
        let alone = CapabilityPlan::resolve(&required, &primary, &[]).unwrap();
        let federated = CapabilityPlan::resolve(&required, &primary, &[&helper]).unwrap();
        for interface in required {
            let a = alone.assignment(interface).unwrap();
            let f = federated.assignment(interface).unwrap();
            assert!(
                f.quality >= a.quality,
                "{interface}: {} < {}",
                f.quality,
                a.quality
            );
        }
    }
}

/// Quality scores are consistent with the `implements` relation.
#[test]
fn quality_iff_implements() {
    let caps = [
        ConcreteCapability::QwertyKeyboard,
        ConcreteCapability::PhoneKeypad,
        ConcreteCapability::Handwriting,
        ConcreteCapability::VirtualKeyboard,
        ConcreteCapability::Mouse,
        ConcreteCapability::Trackpoint,
        ConcreteCapability::CursorKeys,
        ConcreteCapability::Accelerometer,
        ConcreteCapability::TouchScreen,
        ConcreteCapability::Speaker,
        ConcreteCapability::Camera,
    ];
    let interfaces = [
        CapabilityInterface::KeyboardDevice,
        CapabilityInterface::PointingDevice,
        CapabilityInterface::ScreenDevice,
        CapabilityInterface::AudioDevice,
        CapabilityInterface::CameraDevice,
    ];
    for cap in caps {
        for interface in interfaces {
            let q = cap.quality_for(interface);
            assert_eq!(q.is_some(), cap.implements().contains(&interface));
            if let Some(q) = q {
                assert!(q >= 1);
            }
        }
    }
}
