//! Property-based tests for the abstract UI model: codec round-trips,
//! renderer totality, and capability-matching invariants.

use alfredo_ui::capability::{CapabilityPlan, ConcreteCapability};
use alfredo_ui::control::{ControlKind, Relation, RelationKind};
use alfredo_ui::render::{GridRenderer, HtmlRenderer, Renderer, WidgetRenderer};
use alfredo_ui::{CapabilityInterface, Control, DeviceCapabilities, UiDescription};
use proptest::prelude::*;

fn id_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}"
}

fn text_strategy() -> impl Strategy<Value = String> {
    ".{0,20}"
}

fn leaf_control() -> impl Strategy<Value = Control> {
    (id_strategy(), text_strategy()).prop_flat_map(|(id, text)| {
        prop_oneof![
            Just(Control::label(id.clone(), text.clone())),
            Just(Control::button(id.clone(), text.clone())),
            Just(Control::text_input(id.clone(), text.clone())),
            (prop::collection::vec(text_strategy(), 0..4)).prop_map({
                let id = id.clone();
                move |items| Control::list(id.clone(), items)
            }),
            (1u32..2000, 1u32..2000).prop_map({
                let id = id.clone();
                let text = text.clone();
                move |(w, h)| Control::image(id.clone(), w, h, text.clone())
            }),
            (0u8..=100).prop_map({
                let id = id.clone();
                move |value| Control::new(id.clone(), ControlKind::Progress { value })
            }),
            (any::<i32>(), any::<i32>(), any::<i32>()).prop_map({
                let id = id.clone();
                move |(a, b, c)| {
                    Control::new(
                        id.clone(),
                        ControlKind::Slider {
                            min: i64::from(a),
                            max: i64::from(b),
                            value: i64::from(c),
                        },
                    )
                }
            }),
        ]
    })
}

fn control_strategy() -> impl Strategy<Value = Control> {
    leaf_control().prop_recursive(3, 12, 4, |inner| {
        (id_strategy(), any::<bool>(), prop::collection::vec(inner, 0..4))
            .prop_map(|(id, vertical, children)| Control::panel(id, vertical, children))
    })
}

fn ui_strategy() -> impl Strategy<Value = UiDescription> {
    (
        "[a-zA-Z]{1,12}",
        prop::collection::vec(control_strategy(), 0..5),
        prop::collection::vec(
            (id_strategy(), id_strategy(), 0u8..4),
            0..4,
        ),
    )
        .prop_map(|(name, controls, relations)| {
            let mut ui = UiDescription::new(name);
            for c in controls {
                ui = ui.with_control(c);
            }
            for (from, to, kind) in relations {
                let kind = match kind {
                    0 => RelationKind::LabelFor,
                    1 => RelationKind::Triggers,
                    2 => RelationKind::DisplaysResultOf,
                    _ => RelationKind::Adjacent,
                };
                ui = ui.with_relation(Relation::new(from, kind, to));
            }
            ui
        })
}

proptest! {
    /// Encode → decode is the identity on arbitrary UI descriptions.
    #[test]
    fn ui_wire_round_trip(ui in ui_strategy()) {
        let bytes = ui.encode();
        prop_assert_eq!(UiDescription::decode(&bytes).expect("decode"), ui);
    }

    /// JSON serde round-trips too (descriptor dumps).
    #[test]
    fn ui_json_round_trip(ui in ui_strategy()) {
        let json = serde_json::to_string(&ui).unwrap();
        let back: UiDescription = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, ui);
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn ui_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = UiDescription::decode(&bytes);
    }

    /// Every *valid* UI renders on every backend for a capable device, and
    /// every control receives a widget binding.
    #[test]
    fn renderers_are_total_on_valid_uis(ui in ui_strategy()) {
        prop_assume!(ui.validate().is_ok());
        let notebook = DeviceCapabilities::notebook();
        for renderer in [
            Box::new(GridRenderer::default()) as Box<dyn Renderer>,
            Box::new(WidgetRenderer::default()),
            Box::new(HtmlRenderer::default()),
        ] {
            let rendered = renderer
                .render(&ui, &notebook)
                .unwrap_or_else(|e| panic!("{} failed: {e}", renderer.name()));
            for control in ui.all_controls() {
                prop_assert!(
                    rendered.widget_for(&control.id).is_some(),
                    "{} lost control {}",
                    renderer.name(),
                    control.id
                );
            }
        }
    }

    /// Capability resolution is monotone: adding a federated helper never
    /// makes an assignment worse.
    #[test]
    fn federation_never_degrades_quality(seed in any::<u8>()) {
        let primary = match seed % 3 {
            0 => DeviceCapabilities::nokia_9300i(),
            1 => DeviceCapabilities::sony_ericsson_m600i(),
            _ => DeviceCapabilities::iphone(),
        };
        let helper = DeviceCapabilities::notebook();
        let required = [
            CapabilityInterface::KeyboardDevice,
            CapabilityInterface::PointingDevice,
            CapabilityInterface::ScreenDevice,
        ];
        let alone = CapabilityPlan::resolve(&required, &primary, &[]).unwrap();
        let federated = CapabilityPlan::resolve(&required, &primary, &[&helper]).unwrap();
        for interface in required {
            let a = alone.assignment(interface).unwrap();
            let f = federated.assignment(interface).unwrap();
            prop_assert!(f.quality >= a.quality, "{interface}: {} < {}", f.quality, a.quality);
        }
    }

    /// Quality scores are consistent with the `implements` relation.
    #[test]
    fn quality_iff_implements(seed in any::<u8>()) {
        let caps = [
            ConcreteCapability::QwertyKeyboard,
            ConcreteCapability::PhoneKeypad,
            ConcreteCapability::Handwriting,
            ConcreteCapability::VirtualKeyboard,
            ConcreteCapability::Mouse,
            ConcreteCapability::Trackpoint,
            ConcreteCapability::CursorKeys,
            ConcreteCapability::Accelerometer,
            ConcreteCapability::TouchScreen,
            ConcreteCapability::Speaker,
            ConcreteCapability::Camera,
        ];
        let interfaces = [
            CapabilityInterface::KeyboardDevice,
            CapabilityInterface::PointingDevice,
            CapabilityInterface::ScreenDevice,
            CapabilityInterface::AudioDevice,
            CapabilityInterface::CameraDevice,
        ];
        let cap = caps[seed as usize % caps.len()];
        for interface in interfaces {
            let q = cap.quality_for(interface);
            prop_assert_eq!(q.is_some(), cap.implements().contains(&interface));
            if let Some(q) = q {
                prop_assert!(q >= 1);
            }
        }
    }
}
