//! The HTML renderer (servlet/AJAX stand-in).
//!
//! "For phone platforms that do not support any graphical toolkit, it is
//! possible to use a web browser that is fed by a servlet renderer. This
//! produces HTML enriched with AJAX" (§3.3) — the path used for the
//! iPhone in Figure 9. This backend emits a complete HTML document whose
//! controls post [`crate::UiEvent`]s back through an XMLHttpRequest
//! endpoint (`/event`).

use std::fmt::Write as _;

use crate::capability::DeviceCapabilities;
use crate::control::{Control, ControlKind, UiDescription, UiError};
use crate::render::{check_plan, RenderedUi, Renderer, WidgetInstance};

/// The HTML renderer. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct HtmlRenderer {
    _private: (),
}

impl Renderer for HtmlRenderer {
    fn name(&self) -> &'static str {
        "html"
    }

    fn render(&self, ui: &UiDescription, caps: &DeviceCapabilities) -> Result<RenderedUi, UiError> {
        let plan = check_plan(ui, caps)?;
        let mut body = String::new();
        let mut widgets = Vec::new();
        for c in &ui.controls {
            emit(c, &mut body, &mut widgets).map_err(|e| UiError::RenderFailed(e.to_string()))?;
        }
        let (vw, vh) = caps.screen().unwrap_or((320, 480));
        let html = format!(
            "<!DOCTYPE html>\n\
             <html>\n<head>\n\
             <meta name=\"viewport\" content=\"width={vw}, height={vh}\"/>\n\
             <title>{}</title>\n\
             <script>\n\
             function postEvent(id, kind, value) {{\n\
               var xhr = new XMLHttpRequest();\n\
               xhr.open('POST', '/event', true);\n\
               xhr.setRequestHeader('Content-Type', 'application/json');\n\
               xhr.send(JSON.stringify({{control: id, kind: kind, value: value}}));\n\
             }}\n\
             </script>\n</head>\n<body>\n{}</body>\n</html>\n",
            escape(&ui.name),
            body
        );
        Ok(RenderedUi {
            backend: self.name().to_owned(),
            device: caps.device.clone(),
            text: html,
            widgets,
            plan,
        })
    }
}

fn emit(
    c: &Control,
    out: &mut String,
    widgets: &mut Vec<WidgetInstance>,
) -> Result<(), std::fmt::Error> {
    let id = escape(&c.id);
    match &c.kind {
        ControlKind::Label { text } => {
            writeln!(out, "<p id=\"{id}\">{}</p>", escape(text))?;
            widgets.push(widget(&c.id, "html.p"));
        }
        ControlKind::Button { text } => {
            writeln!(
                out,
                "<button id=\"{id}\" onclick=\"postEvent('{id}','click',null)\">{}</button>",
                escape(text)
            )?;
            widgets.push(widget(&c.id, "html.button"));
        }
        ControlKind::TextInput { text, placeholder } => {
            writeln!(
                out,
                "<input id=\"{id}\" value=\"{}\" placeholder=\"{}\" \
                 oninput=\"postEvent('{id}','text',this.value)\"/>",
                escape(text),
                escape(placeholder)
            )?;
            widgets.push(widget(&c.id, "html.input"));
        }
        ControlKind::List { items, selected } => {
            writeln!(
                out,
                "<select id=\"{id}\" size=\"{}\" \
                 onchange=\"postEvent('{id}','select',this.selectedIndex)\">",
                items.len().clamp(2, 12)
            )?;
            for (i, item) in items.iter().enumerate() {
                let sel = if Some(i) == *selected {
                    " selected"
                } else {
                    ""
                };
                writeln!(out, "<option{sel}>{}</option>", escape(item))?;
            }
            writeln!(out, "</select>")?;
            widgets.push(widget(&c.id, "html.select"));
        }
        ControlKind::Image {
            width,
            height,
            source,
        } => {
            writeln!(
                out,
                "<img id=\"{id}\" width=\"{width}\" height=\"{height}\" src=\"/stream/{}\"/>",
                escape(source)
            )?;
            widgets.push(widget(&c.id, "html.img"));
        }
        ControlKind::Progress { value } => {
            writeln!(
                out,
                "<progress id=\"{id}\" max=\"100\" value=\"{value}\"></progress>"
            )?;
            widgets.push(widget(&c.id, "html.progress"));
        }
        ControlKind::Slider { min, max, value } => {
            writeln!(
                out,
                "<input id=\"{id}\" type=\"range\" min=\"{min}\" max=\"{max}\" value=\"{value}\" \
                 onchange=\"postEvent('{id}','slider',this.value)\"/>"
            )?;
            widgets.push(widget(&c.id, "html.range"));
        }
        ControlKind::Panel { children, vertical } => {
            let class = if *vertical { "col" } else { "row" };
            writeln!(
                out,
                "<div id=\"{id}\" style=\"display:flex;flex-direction:{}\">",
                if *vertical { "column" } else { "row" }
            )?;
            let _ = class;
            for child in children {
                emit(child, out, widgets)?;
            }
            writeln!(out, "</div>")?;
            widgets.push(widget(&c.id, "html.div"));
        }
    }
    Ok(())
}

fn widget(control: &str, class: &str) -> WidgetInstance {
    WidgetInstance {
        control: control.to_owned(),
        widget: class.to_owned(),
        // In the browser everything is operated through the touchscreen /
        // pointer abstraction the browser itself provides.
        input: None,
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ui() -> UiDescription {
        UiDescription::new("AlfredOShop")
            .with_control(Control::label("title", "Beds & Sofas <new>"))
            .with_control(Control::list("products", ["Bed \"Queen\"", "Sofa"]))
            .with_control(Control::button("details", "Details"))
            .with_control(Control::image("photo", 300, 200, "shop/photo"))
    }

    #[test]
    fn emits_complete_html_document() {
        let rendered = HtmlRenderer::default()
            .render(&ui(), &DeviceCapabilities::iphone())
            .unwrap();
        let html = rendered.as_text();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("</html>"));
        assert!(html.contains("XMLHttpRequest"), "AJAX event channel");
        assert!(html.contains("viewport\" content=\"width=320"));
    }

    #[test]
    fn controls_map_to_elements_with_event_bindings() {
        let rendered = HtmlRenderer::default()
            .render(&ui(), &DeviceCapabilities::iphone())
            .unwrap();
        let html = rendered.as_text();
        assert!(html.contains("postEvent('details','click'"));
        assert!(html.contains("postEvent('products','select'"));
        assert!(html.contains("src=\"/stream/shop/photo\""));
        assert_eq!(
            rendered.widget_for("details").unwrap().widget,
            "html.button"
        );
    }

    #[test]
    fn text_is_escaped() {
        let rendered = HtmlRenderer::default()
            .render(&ui(), &DeviceCapabilities::iphone())
            .unwrap();
        let html = rendered.as_text();
        assert!(html.contains("Beds &amp; Sofas &lt;new&gt;"));
        assert!(html.contains("Bed &quot;Queen&quot;"));
        assert!(!html.contains("<new>"));
    }

    #[test]
    fn panels_become_flex_divs() {
        let ui = UiDescription::new("t").with_control(Control::panel(
            "row",
            false,
            vec![Control::button("a", "A"), Control::button("b", "B")],
        ));
        let rendered = HtmlRenderer::default()
            .render(&ui, &DeviceCapabilities::iphone())
            .unwrap();
        assert!(rendered.as_text().contains("flex-direction:row"));
    }

    #[test]
    fn same_ui_as_widget_backend_but_different_realization() {
        // Figure 8 vs Figure 9: same service, SWT on the Nokia, AJAX on
        // the iPhone — equal functionality, different implementation.
        let widgety = crate::render::WidgetRenderer::default()
            .render(&ui(), &DeviceCapabilities::nokia_9300i())
            .unwrap();
        let htmly = HtmlRenderer::default()
            .render(&ui(), &DeviceCapabilities::iphone())
            .unwrap();
        assert_eq!(widgety.widgets.len(), htmly.widgets.len());
        assert_ne!(widgety.as_text(), htmly.as_text());
    }
}
