//! Renderers: from abstract description to device-specific implementation.
//!
//! "Depending on the capabilities offered by the interacting phone, the
//! abstract description of the UI can be rendered differently, i.e., each
//! phone generates the UI in a different manner" (§3.3). The paper's
//! implementation has an AWT renderer, an SWT/eRCP renderer, and a
//! servlet renderer producing HTML + AJAX for browser-only devices (the
//! iPhone). This module provides the three corresponding backends:
//!
//! * [`GridRenderer`] — a text-grid backend (the AWT stand-in), rendering
//!   into a character matrix sized to the device's screen.
//! * [`WidgetRenderer`] — a widget-tree backend (the SWT/eRCP stand-in)
//!   that picks concrete widget classes per control based on the device's
//!   input capabilities and **adapts the layout to screen orientation**,
//!   as AlfredOShop does between the landscape 9300i and portrait M600i.
//! * [`HtmlRenderer`] — emits a real HTML + JavaScript page (the
//!   servlet/AJAX stand-in used for the iPhone in Figure 9).

mod grid;
mod html;
mod widget;

pub use grid::GridRenderer;
pub use html::HtmlRenderer;
pub use widget::WidgetRenderer;

use std::fmt;

use crate::capability::{CapabilityPlan, ConcreteCapability, DeviceCapabilities};
use crate::control::{UiDescription, UiError};

/// One concrete widget chosen for an abstract control.
#[derive(Debug, Clone, PartialEq)]
pub struct WidgetInstance {
    /// The abstract control's id.
    pub control: String,
    /// The concrete widget class, e.g. `"swt.TouchButton"`.
    pub widget: String,
    /// The input capability wired to the widget, if interactive.
    pub input: Option<ConcreteCapability>,
}

/// The output of rendering: a textual realization plus the widget binding
/// table used to route [`crate::UiEvent`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedUi {
    /// The backend that produced this ("grid", "widget", "html").
    pub backend: String,
    /// The device it was rendered for.
    pub device: String,
    /// The realized UI as text (screen dump, widget tree, or HTML).
    pub text: String,
    /// Concrete widgets by control.
    pub widgets: Vec<WidgetInstance>,
    /// The capability plan the renderer used.
    pub plan: CapabilityPlan,
}

impl RenderedUi {
    /// The textual realization.
    pub fn as_text(&self) -> &str {
        &self.text
    }

    /// Looks up the widget chosen for a control.
    pub fn widget_for(&self, control: &str) -> Option<&WidgetInstance> {
        self.widgets.iter().find(|w| w.control == control)
    }

    /// Number of interactive widgets.
    pub fn interactive_count(&self) -> usize {
        self.widgets.iter().filter(|w| w.input.is_some()).count()
    }

    /// Approximate in-memory footprint of the rendered artifact in bytes
    /// (used by the §4.1 resource-consumption experiment).
    pub fn memory_footprint(&self) -> usize {
        self.text.len()
            + self
                .widgets
                .iter()
                .map(|w| w.control.len() + w.widget.len() + 16)
                .sum::<usize>()
    }
}

impl fmt::Display for RenderedUi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{} on {}]", self.backend, self.device)?;
        f.write_str(&self.text)
    }
}

/// A rendering backend.
pub trait Renderer {
    /// The backend's name.
    fn name(&self) -> &'static str;

    /// Renders `ui` for a device with `caps`.
    ///
    /// # Errors
    ///
    /// Returns [`UiError::UnsatisfiedCapability`] if the device cannot
    /// operate the UI, or [`UiError::RenderFailed`] for backend problems.
    fn render(&self, ui: &UiDescription, caps: &DeviceCapabilities) -> Result<RenderedUi, UiError>;
}

/// Picks the preferred renderer for a device, mirroring §5.2: SWT-style
/// widgets where a rich toolkit exists, HTML for browser-only devices,
/// and the text grid as the lowest common denominator.
pub fn select_renderer(caps: &DeviceCapabilities) -> Box<dyn Renderer> {
    if caps.device.contains("iPhone") {
        Box::new(HtmlRenderer::default())
    } else if caps
        .screen()
        .map(|(w, h)| w * h >= 240 * 240)
        .unwrap_or(false)
    {
        Box::new(WidgetRenderer::default())
    } else {
        Box::new(GridRenderer::default())
    }
}

pub(crate) fn check_plan(
    ui: &UiDescription,
    caps: &DeviceCapabilities,
) -> Result<CapabilityPlan, UiError> {
    ui.validate()?;
    CapabilityPlan::resolve(&ui.required_capabilities(), caps, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::Control;

    #[test]
    fn renderer_selection_matches_paper() {
        // iPhone: no Java toolkit → servlet/HTML renderer.
        assert_eq!(
            select_renderer(&DeviceCapabilities::iphone()).name(),
            "html"
        );
        // 9300i runs eRCP → widget renderer.
        assert_eq!(
            select_renderer(&DeviceCapabilities::nokia_9300i()).name(),
            "widget"
        );
    }

    #[test]
    fn rendered_ui_accessors() {
        let ui = UiDescription::new("t").with_control(Control::button("ok", "OK"));
        let rendered = GridRenderer::default()
            .render(&ui, &DeviceCapabilities::nokia_9300i())
            .unwrap();
        assert!(rendered.widget_for("ok").is_some());
        assert!(rendered.widget_for("nope").is_none());
        assert!(rendered.interactive_count() >= 1);
        assert!(rendered.memory_footprint() > 0);
        assert!(rendered.to_string().contains("grid"));
    }
}
