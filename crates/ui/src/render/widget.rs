//! The widget-tree renderer (SWT/eRCP stand-in).
//!
//! Chooses a concrete widget class per control based on the device's input
//! capabilities and adapts the arrangement to the screen orientation: "as
//! the Sony Ericsson phone has a portrait-oriented display and the Nokia a
//! landscape-oriented display the output interface is adapted accordingly"
//! (§5.2).

use crate::capability::{CapabilityInterface, ConcreteCapability, DeviceCapabilities, Orientation};
use crate::control::{Control, ControlKind, UiDescription, UiError};
use crate::render::{check_plan, RenderedUi, Renderer, WidgetInstance};

/// The widget renderer. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct WidgetRenderer {
    _private: (),
}

impl Renderer for WidgetRenderer {
    fn name(&self) -> &'static str {
        "widget"
    }

    fn render(&self, ui: &UiDescription, caps: &DeviceCapabilities) -> Result<RenderedUi, UiError> {
        let plan = check_plan(ui, caps)?;
        let orientation = caps.orientation();
        let mut out = String::new();
        let mut widgets = Vec::new();
        out.push_str(&format!("Shell \"{}\" ({:?})\n", ui.name, orientation));
        for c in &ui.controls {
            emit(c, caps, orientation, 1, &mut out, &mut widgets);
        }
        Ok(RenderedUi {
            backend: self.name().to_owned(),
            device: caps.device.clone(),
            text: out,
            widgets,
            plan,
        })
    }
}

fn button_widget(caps: &DeviceCapabilities) -> (String, Option<ConcreteCapability>) {
    match caps.best_for(CapabilityInterface::PointingDevice) {
        Some((ConcreteCapability::TouchScreen, _)) => (
            "swt.TouchButton".into(),
            Some(ConcreteCapability::TouchScreen),
        ),
        Some((cap, _)) => ("swt.Button".into(), Some(cap)),
        None => (
            "swt.SoftkeyItem".into(),
            caps.best_for(CapabilityInterface::KeyboardDevice)
                .map(|(c, _)| c),
        ),
    }
}

fn emit(
    c: &Control,
    caps: &DeviceCapabilities,
    orientation: Orientation,
    depth: usize,
    out: &mut String,
    widgets: &mut Vec<WidgetInstance>,
) {
    let pad = "  ".repeat(depth);
    match &c.kind {
        ControlKind::Label { text } => {
            out.push_str(&format!("{pad}Label(\"{text}\")\n"));
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget: "swt.Label".into(),
                input: None,
            });
        }
        ControlKind::Button { text } => {
            let (widget, input) = button_widget(caps);
            out.push_str(&format!("{pad}{widget}(\"{text}\")\n"));
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget,
                input,
            });
        }
        ControlKind::TextInput { placeholder, .. } => {
            let input = caps
                .best_for(CapabilityInterface::KeyboardDevice)
                .map(|(cap, _)| cap);
            let widget = match input {
                Some(ConcreteCapability::Handwriting) => "swt.InkInput",
                Some(ConcreteCapability::VirtualKeyboard | ConcreteCapability::TouchScreen) => {
                    "swt.TouchInput"
                }
                _ => "swt.Text",
            };
            out.push_str(&format!("{pad}{widget}(hint=\"{placeholder}\")\n"));
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget: widget.into(),
                input,
            });
        }
        ControlKind::List { items, .. } => {
            let input = caps
                .best_for(CapabilityInterface::PointingDevice)
                .map(|(cap, _)| cap);
            out.push_str(&format!("{pad}List({} items)\n", items.len()));
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget: "swt.List".into(),
                input,
            });
        }
        ControlKind::Image {
            width,
            height,
            source,
        } => {
            // Scale to fit the device's screen, preserving aspect ratio.
            let (sw, sh) = caps.screen().unwrap_or((*width, *height));
            let scale = f64::min(
                f64::min(f64::from(sw) / f64::from(*width), 1.0),
                f64::min(f64::from(sh) / f64::from(*height), 1.0),
            );
            let (dw, dh) = (
                (f64::from(*width) * scale) as u32,
                (f64::from(*height) * scale) as u32,
            );
            out.push_str(&format!("{pad}Canvas({dw}x{dh}, src={source})\n"));
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget: "swt.Canvas".into(),
                input: None,
            });
        }
        ControlKind::Progress { value } => {
            out.push_str(&format!("{pad}ProgressBar({value}%)\n"));
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget: "swt.ProgressBar".into(),
                input: None,
            });
        }
        ControlKind::Slider { min, max, value } => {
            let input = caps
                .best_for(CapabilityInterface::PointingDevice)
                .map(|(cap, _)| cap);
            out.push_str(&format!("{pad}Scale({min}..{max}={value})\n"));
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget: "swt.Scale".into(),
                input,
            });
        }
        ControlKind::Panel { children, vertical } => {
            // Orientation adaptation: on portrait screens, horizontal rows
            // reflow to vertical stacks (narrow screens can't fit rows).
            let effective_vertical = match orientation {
                Orientation::Portrait => true,
                Orientation::Landscape => *vertical,
            };
            let layout = if effective_vertical { "column" } else { "row" };
            out.push_str(&format!("{pad}Composite[{layout}]\n"));
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget: format!("swt.Composite[{layout}]"),
                input: None,
            });
            for child in children {
                emit(child, caps, orientation, depth + 1, out, widgets);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ui() -> UiDescription {
        UiDescription::new("AlfredOShop")
            .with_control(Control::label("title", "Products"))
            .with_control(Control::panel(
                "row",
                false,
                vec![
                    Control::button("details", "Details"),
                    Control::button("back", "Back"),
                ],
            ))
            .with_control(Control::text_input("search", "search…"))
            .with_control(Control::image("photo", 800, 600, "shop/photo"))
    }

    #[test]
    fn orientation_adapts_panels() {
        // Landscape 9300i keeps the row; portrait M600i reflows to column.
        let nokia = WidgetRenderer::default()
            .render(&ui(), &DeviceCapabilities::nokia_9300i())
            .unwrap();
        assert!(
            nokia.as_text().contains("Composite[row]"),
            "{}",
            nokia.as_text()
        );
        let se = WidgetRenderer::default()
            .render(&ui(), &DeviceCapabilities::sony_ericsson_m600i())
            .unwrap();
        assert!(
            se.as_text().contains("Composite[column]"),
            "{}",
            se.as_text()
        );
        // Same abstract UI, different realizations.
        assert_ne!(nokia.as_text(), se.as_text());
    }

    #[test]
    fn widget_classes_follow_input_capabilities() {
        let nokia = WidgetRenderer::default()
            .render(&ui(), &DeviceCapabilities::nokia_9300i())
            .unwrap();
        assert_eq!(nokia.widget_for("details").unwrap().widget, "swt.Button");
        assert_eq!(nokia.widget_for("search").unwrap().widget, "swt.Text");

        let se = WidgetRenderer::default()
            .render(&ui(), &DeviceCapabilities::sony_ericsson_m600i())
            .unwrap();
        assert_eq!(se.widget_for("details").unwrap().widget, "swt.TouchButton");
        // M600i keyboard: touchscreen virtual input beats handwriting.
        assert_eq!(se.widget_for("search").unwrap().widget, "swt.TouchInput");
    }

    #[test]
    fn images_scale_to_screen() {
        let se = WidgetRenderer::default()
            .render(&ui(), &DeviceCapabilities::sony_ericsson_m600i())
            .unwrap();
        // An 800x600 image on a 240x320 screen must shrink.
        assert!(se.as_text().contains("Canvas(240x180"), "{}", se.as_text());
    }

    #[test]
    fn landscape_default_for_screenless() {
        let headless =
            DeviceCapabilities::new("headless", vec![ConcreteCapability::QwertyKeyboard]);
        let simple = UiDescription::new("t").with_control(Control::label("l", "x"));
        let rendered = WidgetRenderer::default()
            .render(&simple, &headless)
            .unwrap();
        assert!(rendered.as_text().contains("Landscape"));
    }
}
