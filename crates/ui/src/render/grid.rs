//! The text-grid renderer (AWT stand-in).
//!
//! Renders the abstract UI into a character matrix sized to the device's
//! screen (8×16 px per character cell), the lowest-common-denominator
//! backend every device can run.

use crate::capability::{CapabilityInterface, DeviceCapabilities};
use crate::control::{Control, ControlKind, UiDescription, UiError};
use crate::render::{check_plan, RenderedUi, Renderer, WidgetInstance};

/// The grid renderer. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct GridRenderer {
    _private: (),
}

impl Renderer for GridRenderer {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn render(&self, ui: &UiDescription, caps: &DeviceCapabilities) -> Result<RenderedUi, UiError> {
        let plan = check_plan(ui, caps)?;
        let columns = caps
            .screen()
            .map(|(w, _)| (w / 8).clamp(20, 120) as usize)
            .unwrap_or(40);
        let mut lines = Vec::new();
        let mut widgets = Vec::new();
        lines.push(format!("== {} ==", ui.name));
        for c in &ui.controls {
            render_control(c, caps, columns, 0, &mut lines, &mut widgets);
        }
        // Clip to screen columns: the grid renderer never overflows the
        // physical screen width.
        let text = lines
            .iter()
            .map(|l| {
                let mut truncated: String = l.chars().take(columns).collect();
                if l.chars().count() > columns {
                    truncated.pop();
                    truncated.push('…');
                }
                truncated
            })
            .collect::<Vec<_>>()
            .join("\n");
        Ok(RenderedUi {
            backend: self.name().to_owned(),
            device: caps.device.clone(),
            text,
            widgets,
            plan,
        })
    }
}

fn render_control(
    c: &Control,
    caps: &DeviceCapabilities,
    columns: usize,
    indent: usize,
    lines: &mut Vec<String>,
    widgets: &mut Vec<WidgetInstance>,
) {
    let pad = "  ".repeat(indent);
    let pointer = caps
        .best_for(CapabilityInterface::PointingDevice)
        .map(|(cap, _)| cap);
    let keyboard = caps
        .best_for(CapabilityInterface::KeyboardDevice)
        .map(|(cap, _)| cap);
    match &c.kind {
        ControlKind::Label { text } => {
            lines.push(format!("{pad}{text}"));
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget: "grid.Text".into(),
                input: None,
            });
        }
        ControlKind::Button { text } => {
            lines.push(format!("{pad}[ {text} ]"));
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget: "grid.Button".into(),
                input: pointer.or(keyboard),
            });
        }
        ControlKind::TextInput { text, placeholder } => {
            let shown = if text.is_empty() { placeholder } else { text };
            lines.push(format!("{pad}[{shown}_]"));
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget: "grid.Input".into(),
                input: keyboard,
            });
        }
        ControlKind::List { items, selected } => {
            for (i, item) in items.iter().enumerate() {
                let marker = if Some(i) == *selected { '>' } else { ' ' };
                lines.push(format!("{pad}{marker} {item}"));
            }
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget: "grid.List".into(),
                input: pointer,
            });
        }
        ControlKind::Image {
            width,
            height,
            source,
        } => {
            lines.push(format!("{pad}({width}x{height} image: {source})"));
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget: "grid.ImageBox".into(),
                input: None,
            });
        }
        ControlKind::Progress { value } => {
            let width = columns.saturating_sub(pad.len() + 2).clamp(10, 40);
            let filled = (usize::from(*value) * width) / 100;
            lines.push(format!(
                "{pad}[{}{}]",
                "#".repeat(filled),
                "-".repeat(width - filled)
            ));
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget: "grid.Progress".into(),
                input: None,
            });
        }
        ControlKind::Slider { min, max, value } => {
            lines.push(format!("{pad}{min} --({value})-- {max}"));
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget: "grid.Slider".into(),
                input: pointer,
            });
        }
        ControlKind::Panel { children, vertical } => {
            widgets.push(WidgetInstance {
                control: c.id.clone(),
                widget: "grid.Panel".into(),
                input: None,
            });
            if *vertical {
                for child in children {
                    render_control(child, caps, columns, indent + 1, lines, widgets);
                }
            } else {
                // Horizontal hint: join simple children on one line where
                // possible; fall back to vertical for complex children.
                let mut row = Vec::new();
                let mut complex = Vec::new();
                for child in children {
                    match &child.kind {
                        ControlKind::Label { text } => {
                            row.push(text.clone());
                            widgets.push(WidgetInstance {
                                control: child.id.clone(),
                                widget: "grid.Text".into(),
                                input: None,
                            });
                        }
                        ControlKind::Button { text } => {
                            row.push(format!("[ {text} ]"));
                            widgets.push(WidgetInstance {
                                control: child.id.clone(),
                                widget: "grid.Button".into(),
                                input: pointer.or(keyboard),
                            });
                        }
                        _ => complex.push(child),
                    }
                }
                if !row.is_empty() {
                    lines.push(format!("{pad}{}", row.join("  ")));
                }
                for child in complex {
                    render_control(child, caps, columns, indent + 1, lines, widgets);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::ConcreteCapability;
    use crate::control::Relation;
    use crate::control::RelationKind;

    fn shop_ui() -> UiDescription {
        UiDescription::new("AlfredOShop")
            .with_control(Control::label("title", "Shop products"))
            .with_control(Control::list("products", ["Bed", "Sofa", "Chair"]))
            .with_control(Control::panel(
                "actions",
                false,
                vec![
                    Control::button("details", "Details"),
                    Control::button("compare", "Compare"),
                ],
            ))
            .with_relation(Relation::new("title", RelationKind::LabelFor, "products"))
    }

    #[test]
    fn renders_all_controls() {
        let rendered = GridRenderer::default()
            .render(&shop_ui(), &DeviceCapabilities::nokia_9300i())
            .unwrap();
        let text = rendered.as_text();
        assert!(text.contains("Shop products"));
        assert!(text.contains("Bed"));
        assert!(text.contains("[ Details ]"));
        assert!(text.contains("[ Compare ]"));
        // Horizontal panel: both buttons on one line.
        assert!(
            text.lines()
                .any(|l| l.contains("Details") && l.contains("Compare")),
            "{text}"
        );
    }

    #[test]
    fn input_bindings_use_device_capabilities() {
        let rendered = GridRenderer::default()
            .render(&shop_ui(), &DeviceCapabilities::nokia_9300i())
            .unwrap();
        // 9300i points with cursor keys.
        assert_eq!(
            rendered.widget_for("products").unwrap().input,
            Some(ConcreteCapability::CursorKeys)
        );
        let rendered = GridRenderer::default()
            .render(&shop_ui(), &DeviceCapabilities::iphone())
            .unwrap();
        assert_eq!(
            rendered.widget_for("products").unwrap().input,
            Some(ConcreteCapability::TouchScreen)
        );
    }

    #[test]
    fn clips_to_screen_width() {
        let long = "x".repeat(500);
        let ui = UiDescription::new("t").with_control(Control::label("l", long));
        let rendered = GridRenderer::default()
            .render(&ui, &DeviceCapabilities::sony_ericsson_m600i())
            .unwrap();
        let cols = 240 / 8;
        assert!(rendered
            .as_text()
            .lines()
            .all(|l| l.chars().count() <= cols));
    }

    #[test]
    fn unsatisfiable_ui_is_rejected() {
        let ui = UiDescription::new("t")
            .with_control(Control::label("l", "x").requiring(CapabilityInterface::CameraDevice));
        let err = GridRenderer::default()
            .render(&ui, &DeviceCapabilities::nokia_9300i())
            .unwrap_err();
        assert!(matches!(err, UiError::UnsatisfiedCapability(_)));
    }

    #[test]
    fn invalid_ui_is_rejected() {
        let ui = UiDescription::new("t")
            .with_control(Control::label("dup", "a"))
            .with_control(Control::label("dup", "b"));
        assert!(GridRenderer::default()
            .render(&ui, &DeviceCapabilities::notebook())
            .is_err());
    }

    #[test]
    fn progress_and_slider_render() {
        let ui = UiDescription::new("t")
            .with_control(Control::new("p", ControlKind::Progress { value: 50 }))
            .with_control(Control::new(
                "s",
                ControlKind::Slider {
                    min: 0,
                    max: 10,
                    value: 4,
                },
            ));
        let rendered = GridRenderer::default()
            .render(&ui, &DeviceCapabilities::notebook())
            .unwrap();
        assert!(rendered.as_text().contains('#'));
        assert!(rendered.as_text().contains("--(4)--"));
    }
}
