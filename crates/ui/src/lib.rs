#![warn(missing_docs)]

//! # alfredo-ui
//!
//! AlfredO's device-independent presentation model.
//!
//! The paper's central presentation idea (§3.3): *"Instead of defining
//! layouts that typically break on different screen resolutions and ratios,
//! the UI is specified using abstract controls and relationships"*, and a
//! device-local **renderer** turns that abstract description into an
//! implementation tailored to the device's hardware. Input and output
//! capabilities are modelled as OSGi service interfaces organized in a
//! hierarchy (a notebook keyboard implements both `KeyboardDevice` and —
//! via its cursor keys — `PointingDevice`), so one device's capabilities
//! can stand in for another's.
//!
//! This crate provides:
//!
//! * [`UiDescription`] — the abstract control tree with relationships, the
//!   *stateless description* that AlfredO ships instead of code (the
//!   sandbox story). Serializable with the compact wire codec.
//! * [`capability`] — the abstract interface hierarchy (`KeyboardDevice`,
//!   `PointingDevice`, `ScreenDevice`, …), concrete device capabilities
//!   (cursor keys, accelerometer, touchscreen…), and the matcher that maps
//!   a UI's requirements onto what a device (or a federation of devices)
//!   offers.
//! * [`render`] — three renderers standing in for the paper's backends:
//!   a text-grid renderer (AWT), a widget-tree renderer with
//!   orientation adaptation (SWT/eRCP), and an HTML+JS renderer (the
//!   servlet/AJAX path used for the iPhone).
//! * [`UiEvent`]/[`UiState`] — the event model connecting rendered views
//!   back to AlfredO's controller.
//!
//! # Example
//!
//! ```
//! use alfredo_ui::{Control, UiDescription};
//! use alfredo_ui::capability::DeviceCapabilities;
//! use alfredo_ui::render::{GridRenderer, Renderer};
//!
//! let ui = UiDescription::new("hello")
//!     .with_control(Control::label("title", "Hello, AlfredO"))
//!     .with_control(Control::button("ok", "OK"));
//! let caps = DeviceCapabilities::nokia_9300i();
//! let rendered = GridRenderer::default().render(&ui, &caps).unwrap();
//! assert!(rendered.as_text().contains("Hello, AlfredO"));
//! ```

pub mod capability;
pub mod control;
pub mod event;
pub mod render;

pub use capability::{CapabilityInterface, DeviceCapabilities, Orientation};
pub use control::{Control, ControlKind, Relation, UiDescription, UiError};
pub use event::{UiEvent, UiState};
pub use render::{GridRenderer, HtmlRenderer, RenderedUi, Renderer, WidgetRenderer};
