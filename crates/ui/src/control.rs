//! The abstract UI description: controls and relationships.
//!
//! This is the *stateless description of the UI* that AlfredO ships to the
//! phone instead of executable interface code — the artifact whose
//! "sandbox model" security benefit the paper emphasizes. It deliberately
//! contains no layout coordinates: "instead of defining layouts that
//! typically break on different screen resolutions and ratios, the UI is
//! specified using abstract controls and relationships" (§3.2).

use std::collections::BTreeSet;
use std::fmt;

use alfredo_net::{ByteReader, ByteWriter, WireError};

use crate::capability::CapabilityInterface;

/// Errors produced while building, validating, or decoding UI
/// descriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UiError {
    /// Two controls share an id.
    DuplicateControlId(String),
    /// A relation references an id that no control has.
    UnknownControlId(String),
    /// The description failed to decode.
    Malformed(String),
    /// The device cannot satisfy a capability the UI requires.
    UnsatisfiedCapability(CapabilityInterface),
    /// A renderer cannot handle the description.
    RenderFailed(String),
}

impl fmt::Display for UiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UiError::DuplicateControlId(id) => write!(f, "duplicate control id: {id}"),
            UiError::UnknownControlId(id) => write!(f, "relation references unknown control: {id}"),
            UiError::Malformed(msg) => write!(f, "malformed UI description: {msg}"),
            UiError::UnsatisfiedCapability(c) => {
                write!(f, "device cannot satisfy required capability {c}")
            }
            UiError::RenderFailed(msg) => write!(f, "rendering failed: {msg}"),
        }
    }
}

impl std::error::Error for UiError {}

/// The kind (and intrinsic state) of an abstract control.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlKind {
    /// Static text.
    Label {
        /// The text to show.
        text: String,
    },
    /// An activatable command.
    Button {
        /// The caption.
        text: String,
    },
    /// Free-text entry.
    TextInput {
        /// Initial contents.
        text: String,
        /// Hint shown when empty.
        placeholder: String,
    },
    /// A selectable list of entries.
    List {
        /// The entries.
        items: Vec<String>,
        /// Initially selected index, if any.
        selected: Option<usize>,
    },
    /// A bitmap placeholder; pixel data travels separately (e.g. as a
    /// stream), keeping the description itself small and stateless.
    Image {
        /// Natural width in abstract units.
        width: u32,
        /// Natural height in abstract units.
        height: u32,
        /// Name under which pixel data is delivered (stream/event key).
        source: String,
    },
    /// A bounded progress indicator (0–100).
    Progress {
        /// Current value.
        value: u8,
    },
    /// A continuous value selector.
    Slider {
        /// Minimum.
        min: i64,
        /// Maximum.
        max: i64,
        /// Current value.
        value: i64,
    },
    /// A grouping of child controls. `vertical` is a *hint*, not a layout:
    /// renderers may reflow (the SWT renderer flips it on portrait
    /// screens).
    Panel {
        /// Child controls.
        children: Vec<Control>,
        /// Stacking hint.
        vertical: bool,
    },
}

/// One abstract control: an id, a kind, and the input capabilities its
/// interaction needs (e.g. the MouseController's movement pad requires a
/// `PointingDevice`).
#[derive(Debug, Clone, PartialEq)]
pub struct Control {
    /// Unique id within the description.
    pub id: String,
    /// Kind and intrinsic state.
    pub kind: ControlKind,
    /// Abstract input interfaces required to operate this control.
    pub requires: Vec<CapabilityInterface>,
}

impl Control {
    /// Creates a control of the given kind with no capability requirements.
    pub fn new(id: impl Into<String>, kind: ControlKind) -> Self {
        Control {
            id: id.into(),
            kind,
            requires: Vec::new(),
        }
    }

    /// Convenience: a label.
    pub fn label(id: impl Into<String>, text: impl Into<String>) -> Self {
        Control::new(id, ControlKind::Label { text: text.into() })
    }

    /// Convenience: a button (requires a pointing device by default —
    /// renderers may map it to a softkey instead).
    pub fn button(id: impl Into<String>, text: impl Into<String>) -> Self {
        Control::new(id, ControlKind::Button { text: text.into() })
            .requiring(CapabilityInterface::PointingDevice)
    }

    /// Convenience: a text input (requires a keyboard device).
    pub fn text_input(id: impl Into<String>, placeholder: impl Into<String>) -> Self {
        Control::new(
            id,
            ControlKind::TextInput {
                text: String::new(),
                placeholder: placeholder.into(),
            },
        )
        .requiring(CapabilityInterface::KeyboardDevice)
    }

    /// Convenience: a list.
    pub fn list<I, S>(id: impl Into<String>, items: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Control::new(
            id,
            ControlKind::List {
                items: items.into_iter().map(Into::into).collect(),
                selected: None,
            },
        )
        .requiring(CapabilityInterface::PointingDevice)
    }

    /// Convenience: an image placeholder fed from `source`.
    pub fn image(
        id: impl Into<String>,
        width: u32,
        height: u32,
        source: impl Into<String>,
    ) -> Self {
        Control::new(
            id,
            ControlKind::Image {
                width,
                height,
                source: source.into(),
            },
        )
        .requiring(CapabilityInterface::ScreenDevice)
    }

    /// Convenience: a panel with children.
    pub fn panel(id: impl Into<String>, vertical: bool, children: Vec<Control>) -> Self {
        Control::new(id, ControlKind::Panel { children, vertical })
    }

    /// Builder-style: adds a required capability interface.
    pub fn requiring(mut self, interface: CapabilityInterface) -> Self {
        if !self.requires.contains(&interface) {
            self.requires.push(interface);
        }
        self
    }

    /// Depth-first iteration over this control and its descendants.
    pub fn walk<'a>(&'a self, out: &mut Vec<&'a Control>) {
        out.push(self);
        if let ControlKind::Panel { children, .. } = &self.kind {
            for c in children {
                c.walk(out);
            }
        }
    }
}

/// A semantic relationship between two controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelationKind {
    /// `from` is a caption for `to`.
    LabelFor,
    /// Activating `from` triggers the action observed by `to` (e.g. a
    /// button refreshing a list).
    Triggers,
    /// `from` displays the result of interacting with `to`.
    DisplaysResultOf,
    /// `from` should be presented adjacent to `to` if space allows.
    Adjacent,
}

/// A relationship instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Source control id.
    pub from: String,
    /// Target control id.
    pub to: String,
    /// The semantic kind.
    pub kind: RelationKind,
}

impl Relation {
    /// Creates a relation.
    pub fn new(from: impl Into<String>, kind: RelationKind, to: impl Into<String>) -> Self {
        Relation {
            from: from.into(),
            to: to.into(),
            kind,
        }
    }
}

/// The complete abstract UI of one service.
///
/// # Example
///
/// ```
/// use alfredo_ui::{Control, Relation, UiDescription};
/// use alfredo_ui::control::RelationKind;
///
/// # fn main() -> Result<(), alfredo_ui::UiError> {
/// let ui = UiDescription::new("shop")
///     .with_control(Control::label("title", "Products"))
///     .with_control(Control::list("products", ["Bed", "Sofa"]))
///     .with_relation(Relation::new("title", RelationKind::LabelFor, "products"));
/// ui.validate()?;
/// let bytes = ui.encode();
/// assert_eq!(UiDescription::decode(&bytes)?, ui);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UiDescription {
    /// A name for the UI (usually the service name).
    pub name: String,
    /// Top-level controls, in presentation order.
    pub controls: Vec<Control>,
    /// Relationships between controls.
    pub relations: Vec<Relation>,
}

impl UiDescription {
    /// Creates an empty description.
    pub fn new(name: impl Into<String>) -> Self {
        UiDescription {
            name: name.into(),
            controls: Vec::new(),
            relations: Vec::new(),
        }
    }

    /// Builder-style: appends a top-level control.
    pub fn with_control(mut self, control: Control) -> Self {
        self.controls.push(control);
        self
    }

    /// Builder-style: appends a relation.
    pub fn with_relation(mut self, relation: Relation) -> Self {
        self.relations.push(relation);
        self
    }

    /// All controls in depth-first order (panels included).
    pub fn all_controls(&self) -> Vec<&Control> {
        let mut out = Vec::new();
        for c in &self.controls {
            c.walk(&mut out);
        }
        out
    }

    /// Finds a control by id anywhere in the tree.
    pub fn find(&self, id: &str) -> Option<&Control> {
        self.all_controls().into_iter().find(|c| c.id == id)
    }

    /// Number of controls in the tree.
    pub fn control_count(&self) -> usize {
        self.all_controls().len()
    }

    /// The union of capability interfaces the UI requires.
    pub fn required_capabilities(&self) -> Vec<CapabilityInterface> {
        let mut set = BTreeSet::new();
        for c in self.all_controls() {
            for r in &c.requires {
                set.insert(*r);
            }
        }
        set.into_iter().collect()
    }

    /// Checks structural invariants: unique ids, and relations that
    /// reference existing controls.
    ///
    /// # Errors
    ///
    /// Returns [`UiError::DuplicateControlId`] or
    /// [`UiError::UnknownControlId`].
    pub fn validate(&self) -> Result<(), UiError> {
        let mut seen = BTreeSet::new();
        for c in self.all_controls() {
            if !seen.insert(c.id.clone()) {
                return Err(UiError::DuplicateControlId(c.id.clone()));
            }
        }
        for rel in &self.relations {
            if !seen.contains(&rel.from) {
                return Err(UiError::UnknownControlId(rel.from.clone()));
            }
            if !seen.contains(&rel.to) {
                return Err(UiError::UnknownControlId(rel.to.clone()));
            }
        }
        Ok(())
    }

    /// Encodes to the compact wire format (this is what ships to the
    /// phone; its size is part of the "about 2 kBytes" of Table 1).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str(&self.name);
        w.put_varint(self.controls.len() as u64);
        for c in &self.controls {
            encode_control(&mut w, c);
        }
        w.put_varint(self.relations.len() as u64);
        for r in &self.relations {
            w.put_str(&r.from);
            w.put_str(&r.to);
            w.put_u8(match r.kind {
                RelationKind::LabelFor => 0,
                RelationKind::Triggers => 1,
                RelationKind::DisplaysResultOf => 2,
                RelationKind::Adjacent => 3,
            });
        }
        w.into_bytes()
    }

    /// Decodes from the wire format.
    ///
    /// # Errors
    ///
    /// Returns [`UiError::Malformed`] on any decoding problem.
    pub fn decode(bytes: &[u8]) -> Result<Self, UiError> {
        let mut r = ByteReader::new(bytes);
        let ui = decode_description(&mut r).map_err(|e| UiError::Malformed(e.to_string()))?;
        if !r.is_empty() {
            return Err(UiError::Malformed(format!(
                "{} trailing bytes",
                r.remaining()
            )));
        }
        Ok(ui)
    }
}

const K_LABEL: u8 = 0;
const K_BUTTON: u8 = 1;
const K_TEXT: u8 = 2;
const K_LIST: u8 = 3;
const K_IMAGE: u8 = 4;
const K_PROGRESS: u8 = 5;
const K_SLIDER: u8 = 6;
const K_PANEL: u8 = 7;

fn encode_control(w: &mut ByteWriter, c: &Control) {
    w.put_str(&c.id);
    w.put_varint(c.requires.len() as u64);
    for cap in &c.requires {
        w.put_u8(cap.tag());
    }
    match &c.kind {
        ControlKind::Label { text } => {
            w.put_u8(K_LABEL);
            w.put_str(text);
        }
        ControlKind::Button { text } => {
            w.put_u8(K_BUTTON);
            w.put_str(text);
        }
        ControlKind::TextInput { text, placeholder } => {
            w.put_u8(K_TEXT);
            w.put_str(text);
            w.put_str(placeholder);
        }
        ControlKind::List { items, selected } => {
            w.put_u8(K_LIST);
            w.put_varint(items.len() as u64);
            for i in items {
                w.put_str(i);
            }
            match selected {
                Some(s) => {
                    w.put_bool(true);
                    w.put_varint(*s as u64);
                }
                None => w.put_bool(false),
            }
        }
        ControlKind::Image {
            width,
            height,
            source,
        } => {
            w.put_u8(K_IMAGE);
            w.put_u32(*width);
            w.put_u32(*height);
            w.put_str(source);
        }
        ControlKind::Progress { value } => {
            w.put_u8(K_PROGRESS);
            w.put_u8(*value);
        }
        ControlKind::Slider { min, max, value } => {
            w.put_u8(K_SLIDER);
            w.put_svarint(*min);
            w.put_svarint(*max);
            w.put_svarint(*value);
        }
        ControlKind::Panel { children, vertical } => {
            w.put_u8(K_PANEL);
            w.put_bool(*vertical);
            w.put_varint(children.len() as u64);
            for child in children {
                encode_control(w, child);
            }
        }
    }
}

fn decode_description(r: &mut ByteReader<'_>) -> Result<UiDescription, WireError> {
    let name = r.str()?.to_owned();
    let n = r.varint()? as usize;
    let mut controls = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        controls.push(decode_control(r, 0)?);
    }
    let m = r.varint()? as usize;
    let mut relations = Vec::with_capacity(m.min(1024));
    for _ in 0..m {
        let from = r.str()?.to_owned();
        let to = r.str()?.to_owned();
        let kind = match r.u8()? {
            0 => RelationKind::LabelFor,
            1 => RelationKind::Triggers,
            2 => RelationKind::DisplaysResultOf,
            3 => RelationKind::Adjacent,
            tag => {
                return Err(WireError::InvalidTag {
                    context: "RelationKind",
                    tag,
                })
            }
        };
        relations.push(Relation { from, to, kind });
    }
    Ok(UiDescription {
        name,
        controls,
        relations,
    })
}

fn decode_control(r: &mut ByteReader<'_>, depth: u32) -> Result<Control, WireError> {
    if depth > 32 {
        return Err(WireError::InvalidTag {
            context: "Control (nesting too deep)",
            tag: 0xff,
        });
    }
    let id = r.str()?.to_owned();
    let n_caps = r.varint()? as usize;
    let mut requires = Vec::with_capacity(n_caps.min(16));
    for _ in 0..n_caps {
        requires.push(CapabilityInterface::from_tag(r.u8()?)?);
    }
    let kind = match r.u8()? {
        K_LABEL => ControlKind::Label {
            text: r.str()?.to_owned(),
        },
        K_BUTTON => ControlKind::Button {
            text: r.str()?.to_owned(),
        },
        K_TEXT => ControlKind::TextInput {
            text: r.str()?.to_owned(),
            placeholder: r.str()?.to_owned(),
        },
        K_LIST => {
            let n = r.varint()? as usize;
            let mut items = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                items.push(r.str()?.to_owned());
            }
            let selected = if r.bool()? {
                Some(r.varint()? as usize)
            } else {
                None
            };
            ControlKind::List { items, selected }
        }
        K_IMAGE => ControlKind::Image {
            width: r.u32()?,
            height: r.u32()?,
            source: r.str()?.to_owned(),
        },
        K_PROGRESS => ControlKind::Progress { value: r.u8()? },
        K_SLIDER => ControlKind::Slider {
            min: r.svarint()?,
            max: r.svarint()?,
            value: r.svarint()?,
        },
        K_PANEL => {
            let vertical = r.bool()?;
            let n = r.varint()? as usize;
            let mut children = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                children.push(decode_control(r, depth + 1)?);
            }
            ControlKind::Panel { children, vertical }
        }
        tag => {
            return Err(WireError::InvalidTag {
                context: "ControlKind",
                tag,
            })
        }
    };
    Ok(Control { id, kind, requires })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UiDescription {
        UiDescription::new("mouse")
            .with_control(Control::label("title", "MouseController"))
            .with_control(Control::panel(
                "pad",
                true,
                vec![
                    Control::button("up", "▲"),
                    Control::panel(
                        "mid",
                        false,
                        vec![Control::button("left", "◀"), Control::button("right", "▶")],
                    ),
                    Control::button("down", "▼"),
                ],
            ))
            .with_control(Control::image("snapshot", 320, 200, "mouse/snapshot"))
            .with_control(
                Control::new(
                    "speed",
                    ControlKind::Slider {
                        min: 1,
                        max: 10,
                        value: 5,
                    },
                )
                .requiring(CapabilityInterface::PointingDevice),
            )
            .with_relation(Relation::new("title", RelationKind::LabelFor, "pad"))
            .with_relation(Relation::new("pad", RelationKind::Triggers, "snapshot"))
    }

    #[test]
    fn validate_accepts_well_formed() {
        sample().validate().unwrap();
    }

    #[test]
    fn tree_walk_and_find() {
        let ui = sample();
        assert_eq!(ui.control_count(), 9);
        assert!(ui.find("left").is_some());
        assert!(ui.find("nope").is_none());
    }

    #[test]
    fn duplicate_ids_rejected() {
        let ui = UiDescription::new("x")
            .with_control(Control::label("a", "1"))
            .with_control(Control::label("a", "2"));
        assert_eq!(
            ui.validate().unwrap_err(),
            UiError::DuplicateControlId("a".into())
        );
        // Also nested duplicates.
        let ui = UiDescription::new("x").with_control(Control::panel(
            "p",
            true,
            vec![Control::label("p", "shadow")],
        ));
        assert!(ui.validate().is_err());
    }

    #[test]
    fn dangling_relations_rejected() {
        let ui = UiDescription::new("x")
            .with_control(Control::label("a", "1"))
            .with_relation(Relation::new("a", RelationKind::LabelFor, "ghost"));
        assert_eq!(
            ui.validate().unwrap_err(),
            UiError::UnknownControlId("ghost".into())
        );
    }

    #[test]
    fn wire_round_trip() {
        let ui = sample();
        let bytes = ui.encode();
        assert_eq!(UiDescription::decode(&bytes).unwrap(), ui);
    }

    #[test]
    fn description_is_compact() {
        // The whole shipped payload in the paper is ~2 kB; a realistic UI
        // description must be small.
        let size = sample().encode().len();
        assert!(size < 400, "UI description size {size}");
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        let bytes = sample().encode();
        assert!(UiDescription::decode(&bytes[..bytes.len() / 2]).is_err());
        let mut extended = bytes;
        extended.push(9);
        assert!(UiDescription::decode(&extended).is_err());
        assert!(UiDescription::decode(&[0xff, 0xff, 0xff]).is_err());
    }

    #[test]
    fn required_capabilities_are_unioned() {
        let ui = sample();
        let caps = ui.required_capabilities();
        assert!(caps.contains(&CapabilityInterface::PointingDevice));
        assert!(caps.contains(&CapabilityInterface::ScreenDevice));
    }

    #[test]
    fn encode_is_deterministic() {
        let ui = sample();
        assert_eq!(ui.encode(), sample().encode());
        let back = UiDescription::decode(&ui.encode()).unwrap();
        assert_eq!(back, ui);
    }

    #[test]
    fn convenience_constructors_set_requirements() {
        assert!(Control::button("b", "x")
            .requires
            .contains(&CapabilityInterface::PointingDevice));
        assert!(Control::text_input("t", "hint")
            .requires
            .contains(&CapabilityInterface::KeyboardDevice));
        // requiring() is idempotent.
        let c = Control::button("b", "x").requiring(CapabilityInterface::PointingDevice);
        assert_eq!(c.requires.len(), 1);
    }
}
