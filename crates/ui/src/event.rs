//! The UI event model and client-side UI state.
//!
//! Rendered views translate hardware input into [`UiEvent`]s addressed to
//! abstract control ids; AlfredO's controller consumes them. [`UiState`]
//! is the mutable mirror of the control tree's dynamic state (text
//! contents, selections, label texts) that both events and controller
//! actions update.

use std::collections::BTreeMap;
use std::fmt;

use alfredo_osgi::Value;

use crate::control::{ControlKind, UiDescription};

/// An interaction event on an abstract control.
#[derive(Debug, Clone, PartialEq)]
pub enum UiEvent {
    /// A button (or list entry acting as a command) was activated.
    Click {
        /// Target control id.
        control: String,
    },
    /// A text input's contents changed.
    TextChanged {
        /// Target control id.
        control: String,
        /// New contents.
        text: String,
    },
    /// A list selection changed.
    Selected {
        /// Target control id.
        control: String,
        /// New selected index.
        index: usize,
    },
    /// A slider moved.
    SliderChanged {
        /// Target control id.
        control: String,
        /// New value.
        value: i64,
    },
    /// Directional/pointing input (cursor keys, trackpoint, accelerometer,
    /// touch drag — whatever the renderer mapped to `PointingDevice`).
    PointerMoved {
        /// Target control id.
        control: String,
        /// Horizontal delta in abstract units.
        dx: i64,
        /// Vertical delta in abstract units.
        dy: i64,
    },
    /// A key press routed to a control.
    Key {
        /// Target control id.
        control: String,
        /// The character.
        ch: char,
    },
}

impl UiEvent {
    /// The id of the control the event addresses.
    pub fn control(&self) -> &str {
        match self {
            UiEvent::Click { control }
            | UiEvent::TextChanged { control, .. }
            | UiEvent::Selected { control, .. }
            | UiEvent::SliderChanged { control, .. }
            | UiEvent::PointerMoved { control, .. }
            | UiEvent::Key { control, .. } => control,
        }
    }
}

impl fmt::Display for UiEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UiEvent::Click { control } => write!(f, "click({control})"),
            UiEvent::TextChanged { control, text } => write!(f, "text({control}, {text:?})"),
            UiEvent::Selected { control, index } => write!(f, "select({control}, {index})"),
            UiEvent::SliderChanged { control, value } => write!(f, "slide({control}, {value})"),
            UiEvent::PointerMoved { control, dx, dy } => {
                write!(f, "pointer({control}, {dx}, {dy})")
            }
            UiEvent::Key { control, ch } => write!(f, "key({control}, {ch:?})"),
        }
    }
}

/// The dynamic state of a rendered UI, keyed by control id.
///
/// # Example
///
/// ```
/// use alfredo_ui::{Control, UiDescription, UiEvent, UiState};
///
/// let ui = UiDescription::new("demo")
///     .with_control(Control::text_input("query", "search…"))
///     .with_control(Control::list("results", ["a", "b"]));
/// let mut state = UiState::from_description(&ui);
/// state.apply(&UiEvent::TextChanged {
///     control: "query".into(),
///     text: "bed".into(),
/// });
/// assert_eq!(state.text("query"), Some("bed"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UiState {
    values: BTreeMap<String, Value>,
}

impl UiState {
    /// Creates an empty state.
    pub fn new() -> Self {
        UiState::default()
    }

    /// Seeds state from a description's intrinsic control state.
    pub fn from_description(ui: &UiDescription) -> Self {
        let mut state = UiState::new();
        for c in ui.all_controls() {
            match &c.kind {
                ControlKind::Label { text } | ControlKind::Button { text } => {
                    state
                        .values
                        .insert(c.id.clone(), Value::from(text.as_str()));
                }
                ControlKind::TextInput { text, .. } => {
                    state
                        .values
                        .insert(c.id.clone(), Value::from(text.as_str()));
                }
                ControlKind::List { items, selected } => {
                    state
                        .values
                        .insert(format!("{}#items", c.id), Value::from(items.clone()));
                    if let Some(s) = selected {
                        state
                            .values
                            .insert(format!("{}#selected", c.id), Value::from(*s as i64));
                    }
                }
                ControlKind::Progress { value } => {
                    state
                        .values
                        .insert(c.id.clone(), Value::from(i64::from(*value)));
                }
                ControlKind::Slider { value, .. } => {
                    state.values.insert(c.id.clone(), Value::from(*value));
                }
                ControlKind::Image { source, .. } => {
                    state
                        .values
                        .insert(format!("{}#source", c.id), Value::from(source.as_str()));
                }
                ControlKind::Panel { .. } => {}
            }
        }
        state
    }

    /// Applies a UI event to the state.
    pub fn apply(&mut self, event: &UiEvent) {
        match event {
            UiEvent::TextChanged { control, text } => {
                self.values
                    .insert(control.clone(), Value::from(text.as_str()));
            }
            UiEvent::Selected { control, index } => {
                self.values
                    .insert(format!("{control}#selected"), Value::from(*index as i64));
            }
            UiEvent::SliderChanged { control, value } => {
                self.values.insert(control.clone(), Value::from(*value));
            }
            UiEvent::Click { .. } | UiEvent::PointerMoved { .. } | UiEvent::Key { .. } => {}
        }
    }

    /// Sets a control's primary value (controller actions use this to
    /// update labels, lists, images…).
    pub fn set(&mut self, control: impl Into<String>, value: impl Into<Value>) {
        self.values.insert(control.into(), value.into());
    }

    /// Sets an auxiliary slot (`<id>#<slot>`), e.g. list items.
    pub fn set_slot(&mut self, control: &str, slot: &str, value: impl Into<Value>) {
        self.values
            .insert(format!("{control}#{slot}"), value.into());
    }

    /// Reads a control's primary value.
    pub fn get(&self, control: &str) -> Option<&Value> {
        self.values.get(control)
    }

    /// Reads an auxiliary slot.
    pub fn get_slot(&self, control: &str, slot: &str) -> Option<&Value> {
        self.values.get(&format!("{control}#{slot}"))
    }

    /// Reads a control's value as text.
    pub fn text(&self, control: &str) -> Option<&str> {
        self.get(control).and_then(Value::as_str)
    }

    /// Reads a control's value as an integer.
    pub fn int(&self, control: &str) -> Option<i64> {
        self.get(control).and_then(Value::as_i64)
    }

    /// Reads a list's selected index.
    pub fn selected(&self, control: &str) -> Option<usize> {
        self.get_slot(control, "selected")
            .and_then(Value::as_i64)
            .map(|i| i as usize)
    }

    /// Reads a list's items.
    pub fn items(&self, control: &str) -> Option<Vec<String>> {
        self.get_slot(control, "items").and_then(|v| {
            v.as_list().map(|items| {
                items
                    .iter()
                    .filter_map(Value::as_str)
                    .map(str::to_owned)
                    .collect()
            })
        })
    }

    /// Iterates over all state entries (including `#slot` keys) in key
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Projects this state back onto a description, producing the
    /// description as it *currently looks*: label/button texts, input
    /// contents, list items and selections, progress and slider values
    /// are replaced by their live state. Renderers consume the result to
    /// produce an up-to-date view.
    pub fn project_onto(&self, ui: &UiDescription) -> UiDescription {
        let mut out = ui.clone();
        for c in &mut out.controls {
            self.project_control(c);
        }
        out
    }

    fn project_control(&self, control: &mut crate::control::Control) {
        let id = control.id.clone();
        match &mut control.kind {
            ControlKind::Label { text } | ControlKind::Button { text } => {
                if let Some(t) = self.text(&id) {
                    *text = t.to_owned();
                }
            }
            ControlKind::TextInput { text, .. } => {
                if let Some(t) = self.text(&id) {
                    *text = t.to_owned();
                }
            }
            ControlKind::List { items, selected } => {
                if let Some(live) = self.items(&id) {
                    *items = live;
                }
                if let Some(s) = self.selected(&id) {
                    *selected = Some(s);
                }
            }
            ControlKind::Progress { value } => {
                if let Some(v) = self.int(&id) {
                    *value = v.clamp(0, 100) as u8;
                }
            }
            ControlKind::Slider { value, .. } => {
                if let Some(v) = self.int(&id) {
                    *value = v;
                }
            }
            ControlKind::Image { .. } => {}
            ControlKind::Panel { children, .. } => {
                for child in children {
                    self.project_control(child);
                }
            }
        }
    }

    /// Number of state entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no state is present.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::Control;

    fn ui() -> UiDescription {
        UiDescription::new("t")
            .with_control(Control::label("title", "Hello"))
            .with_control(Control::text_input("query", "hint"))
            .with_control(Control::list("items", ["a", "b", "c"]))
            .with_control(Control::new(
                "vol",
                ControlKind::Slider {
                    min: 0,
                    max: 10,
                    value: 3,
                },
            ))
    }

    #[test]
    fn seeding_captures_intrinsic_state() {
        let state = UiState::from_description(&ui());
        assert_eq!(state.text("title"), Some("Hello"));
        assert_eq!(state.text("query"), Some(""));
        assert_eq!(state.items("items").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(state.int("vol"), Some(3));
        assert_eq!(state.selected("items"), None);
    }

    #[test]
    fn events_mutate_state() {
        let mut state = UiState::from_description(&ui());
        state.apply(&UiEvent::TextChanged {
            control: "query".into(),
            text: "bed".into(),
        });
        state.apply(&UiEvent::Selected {
            control: "items".into(),
            index: 2,
        });
        state.apply(&UiEvent::SliderChanged {
            control: "vol".into(),
            value: 7,
        });
        // Clicks don't change state by themselves.
        state.apply(&UiEvent::Click {
            control: "title".into(),
        });
        assert_eq!(state.text("query"), Some("bed"));
        assert_eq!(state.selected("items"), Some(2));
        assert_eq!(state.int("vol"), Some(7));
    }

    #[test]
    fn controller_side_updates() {
        let mut state = UiState::new();
        state.set("title", "New title");
        state.set_slot("items", "items", Value::from(vec!["x", "y"]));
        assert_eq!(state.text("title"), Some("New title"));
        assert_eq!(state.items("items").unwrap(), vec!["x", "y"]);
        assert!(!state.is_empty());
        assert_eq!(state.len(), 2);
    }

    #[test]
    fn projection_reflects_live_state() {
        let description = ui();
        let mut state = UiState::from_description(&description);
        state.set("title", "Updated title");
        state.apply(&UiEvent::TextChanged {
            control: "query".into(),
            text: "bed".into(),
        });
        state.set_slot("items", "items", Value::from(vec!["x", "y"]));
        state.apply(&UiEvent::Selected {
            control: "items".into(),
            index: 1,
        });
        state.apply(&UiEvent::SliderChanged {
            control: "vol".into(),
            value: 9,
        });
        let live = state.project_onto(&description);
        match &live.find("title").unwrap().kind {
            ControlKind::Label { text } => assert_eq!(text, "Updated title"),
            other => panic!("{other:?}"),
        }
        match &live.find("query").unwrap().kind {
            ControlKind::TextInput { text, .. } => assert_eq!(text, "bed"),
            other => panic!("{other:?}"),
        }
        match &live.find("items").unwrap().kind {
            ControlKind::List { items, selected } => {
                assert_eq!(items, &["x", "y"]);
                assert_eq!(*selected, Some(1));
            }
            other => panic!("{other:?}"),
        }
        match &live.find("vol").unwrap().kind {
            ControlKind::Slider { value, .. } => assert_eq!(*value, 9),
            other => panic!("{other:?}"),
        }
        // The original description is untouched.
        match &description.find("title").unwrap().kind {
            ControlKind::Label { text } => assert_eq!(text, "Hello"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn event_control_accessor_and_display() {
        let e = UiEvent::PointerMoved {
            control: "pad".into(),
            dx: 3,
            dy: -2,
        };
        assert_eq!(e.control(), "pad");
        assert_eq!(e.to_string(), "pointer(pad, 3, -2)");
        let e = UiEvent::Key {
            control: "query".into(),
            ch: 'q',
        };
        assert_eq!(e.control(), "query");
    }
}
