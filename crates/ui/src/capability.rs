//! The input/output capability model.
//!
//! "Input and output capabilities that are used by a specific UI are
//! modeled as OSGi services and accordingly their abstract definition is
//! given by their corresponding service interfaces. All OSGi service
//! interfaces are then organized in a hierarchy" (§3.3). A notebook
//! keyboard implements `KeyboardDevice` *and* `PointingDevice` (cursor
//! keys); a phone may implement `PointingDevice` with a trackpoint or an
//! accelerometer; multiple devices can be **federated** to satisfy one UI
//! (e.g. borrowing a notebook's screen).

use std::fmt;

use alfredo_net::WireError;

use crate::control::UiError;

/// The abstract capability interfaces (the hierarchy's roots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CapabilityInterface {
    /// Entering characters.
    KeyboardDevice,
    /// Moving a pointer / issuing directional input.
    PointingDevice,
    /// Displaying pixels.
    ScreenDevice,
    /// Playing audio.
    AudioDevice,
    /// Capturing images.
    CameraDevice,
}

impl CapabilityInterface {
    pub(crate) fn tag(self) -> u8 {
        match self {
            CapabilityInterface::KeyboardDevice => 0,
            CapabilityInterface::PointingDevice => 1,
            CapabilityInterface::ScreenDevice => 2,
            CapabilityInterface::AudioDevice => 3,
            CapabilityInterface::CameraDevice => 4,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => CapabilityInterface::KeyboardDevice,
            1 => CapabilityInterface::PointingDevice,
            2 => CapabilityInterface::ScreenDevice,
            3 => CapabilityInterface::AudioDevice,
            4 => CapabilityInterface::CameraDevice,
            _ => {
                return Err(WireError::InvalidTag {
                    context: "CapabilityInterface",
                    tag,
                })
            }
        })
    }

    /// The OSGi-style service interface name.
    pub fn interface_name(self) -> &'static str {
        match self {
            CapabilityInterface::KeyboardDevice => "ui.KeyboardDevice",
            CapabilityInterface::PointingDevice => "ui.PointingDevice",
            CapabilityInterface::ScreenDevice => "ui.ScreenDevice",
            CapabilityInterface::AudioDevice => "ui.AudioDevice",
            CapabilityInterface::CameraDevice => "ui.CameraDevice",
        }
    }
}

impl fmt::Display for CapabilityInterface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.interface_name())
    }
}

/// A concrete hardware capability; each implements one or more abstract
/// interfaces with a quality score used for selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcreteCapability {
    /// Full QWERTY keyboard (communicators, notebooks).
    QwertyKeyboard,
    /// 12-key phone keypad with multi-tap entry.
    PhoneKeypad,
    /// Stylus handwriting recognition.
    Handwriting,
    /// On-screen virtual keyboard (touch devices).
    VirtualKeyboard,
    /// A desktop mouse.
    Mouse,
    /// A trackpoint/joystick nub.
    Trackpoint,
    /// Cursor keys used as a pointer (the Nokia 9300i MouseController).
    CursorKeys,
    /// Accelerometer tilt control (the iPhone MouseController).
    Accelerometer,
    /// A touch-sensitive screen (pointing + virtual keyboard).
    TouchScreen,
    /// A display of the given pixel size.
    Screen {
        /// Width in pixels.
        width: u32,
        /// Height in pixels.
        height: u32,
    },
    /// A loudspeaker.
    Speaker,
    /// A camera.
    Camera,
}

impl ConcreteCapability {
    /// The abstract interfaces this capability implements.
    pub fn implements(self) -> Vec<CapabilityInterface> {
        use CapabilityInterface::*;
        match self {
            ConcreteCapability::QwertyKeyboard => vec![KeyboardDevice, PointingDevice],
            ConcreteCapability::PhoneKeypad => vec![KeyboardDevice],
            ConcreteCapability::Handwriting => vec![KeyboardDevice],
            ConcreteCapability::VirtualKeyboard => vec![KeyboardDevice],
            ConcreteCapability::Mouse => vec![PointingDevice],
            ConcreteCapability::Trackpoint => vec![PointingDevice],
            ConcreteCapability::CursorKeys => vec![PointingDevice],
            ConcreteCapability::Accelerometer => vec![PointingDevice],
            ConcreteCapability::TouchScreen => vec![PointingDevice, KeyboardDevice],
            ConcreteCapability::Screen { .. } => vec![ScreenDevice],
            ConcreteCapability::Speaker => vec![AudioDevice],
            ConcreteCapability::Camera => vec![CameraDevice],
        }
    }

    /// Quality of this capability as an implementation of `interface`
    /// (higher is better); `None` if it does not implement it.
    pub fn quality_for(self, interface: CapabilityInterface) -> Option<u32> {
        if !self.implements().contains(&interface) {
            return None;
        }
        use CapabilityInterface::*;
        Some(match (self, interface) {
            (ConcreteCapability::QwertyKeyboard, KeyboardDevice) => 10,
            (ConcreteCapability::QwertyKeyboard, PointingDevice) => 3, // cursor keys
            (ConcreteCapability::VirtualKeyboard, KeyboardDevice) => 6,
            (ConcreteCapability::PhoneKeypad, KeyboardDevice) => 5,
            (ConcreteCapability::Handwriting, KeyboardDevice) => 4,
            (ConcreteCapability::Mouse, PointingDevice) => 10,
            (ConcreteCapability::TouchScreen, PointingDevice) => 9,
            (ConcreteCapability::TouchScreen, KeyboardDevice) => 6,
            (ConcreteCapability::Trackpoint, PointingDevice) => 7,
            (ConcreteCapability::Accelerometer, PointingDevice) => 6,
            (ConcreteCapability::CursorKeys, PointingDevice) => 4,
            (ConcreteCapability::Screen { width, height }, ScreenDevice) => {
                // Larger screens are better screens.
                (width * height / 10_000).max(1)
            }
            (ConcreteCapability::Speaker, AudioDevice) => 5,
            (ConcreteCapability::Camera, CameraDevice) => 5,
            _ => 1,
        })
    }
}

impl fmt::Display for ConcreteCapability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcreteCapability::Screen { width, height } => write!(f, "Screen({width}x{height})"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// Screen orientation, derived from pixel dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Wider than tall (Nokia 9300i: 640×200).
    Landscape,
    /// Taller than wide (Sony Ericsson M600i: 240×320).
    Portrait,
}

/// What one physical device offers.
///
/// # Example
///
/// ```
/// use alfredo_ui::capability::{CapabilityInterface, DeviceCapabilities};
///
/// let phone = DeviceCapabilities::nokia_9300i();
/// assert!(phone.supports(CapabilityInterface::KeyboardDevice));
/// assert_eq!(phone.orientation(), alfredo_ui::Orientation::Landscape);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceCapabilities {
    /// Device name (matches the sim profile name where applicable).
    pub device: String,
    /// The concrete capabilities present.
    pub capabilities: Vec<ConcreteCapability>,
}

impl DeviceCapabilities {
    /// Creates a capability set.
    pub fn new(device: impl Into<String>, capabilities: Vec<ConcreteCapability>) -> Self {
        DeviceCapabilities {
            device: device.into(),
            capabilities,
        }
    }

    /// Nokia 9300i communicator: 640×200 landscape screen, QWERTY
    /// keyboard, cursor keys.
    pub fn nokia_9300i() -> Self {
        DeviceCapabilities::new(
            "Nokia 9300i",
            vec![
                ConcreteCapability::Screen {
                    width: 640,
                    height: 200,
                },
                ConcreteCapability::QwertyKeyboard,
                ConcreteCapability::CursorKeys,
                ConcreteCapability::Speaker,
            ],
        )
    }

    /// Sony Ericsson M600i: 240×320 portrait touchscreen with stylus
    /// handwriting, phone keypad, jog-dial trackpoint.
    pub fn sony_ericsson_m600i() -> Self {
        DeviceCapabilities::new(
            "Sony Ericsson M600i",
            vec![
                ConcreteCapability::Screen {
                    width: 240,
                    height: 320,
                },
                ConcreteCapability::TouchScreen,
                ConcreteCapability::Handwriting,
                ConcreteCapability::PhoneKeypad,
                ConcreteCapability::Trackpoint,
                ConcreteCapability::Speaker,
            ],
        )
    }

    /// Apple iPhone: 320×480 touchscreen, accelerometer, virtual keyboard.
    pub fn iphone() -> Self {
        DeviceCapabilities::new(
            "Apple iPhone",
            vec![
                ConcreteCapability::Screen {
                    width: 320,
                    height: 480,
                },
                ConcreteCapability::TouchScreen,
                ConcreteCapability::VirtualKeyboard,
                ConcreteCapability::Accelerometer,
                ConcreteCapability::Speaker,
                ConcreteCapability::Camera,
            ],
        )
    }

    /// A notebook: large screen, QWERTY keyboard, mouse.
    pub fn notebook() -> Self {
        DeviceCapabilities::new(
            "Notebook",
            vec![
                ConcreteCapability::Screen {
                    width: 1280,
                    height: 800,
                },
                ConcreteCapability::QwertyKeyboard,
                ConcreteCapability::Mouse,
                ConcreteCapability::Speaker,
                ConcreteCapability::Camera,
            ],
        )
    }

    /// A shop-window information screen: big touch display, no keyboard.
    pub fn info_screen() -> Self {
        DeviceCapabilities::new(
            "Information screen",
            vec![
                ConcreteCapability::Screen {
                    width: 1024,
                    height: 768,
                },
                ConcreteCapability::TouchScreen,
                ConcreteCapability::Speaker,
            ],
        )
    }

    /// The device's screen size, if it has a screen.
    pub fn screen(&self) -> Option<(u32, u32)> {
        self.capabilities.iter().find_map(|c| match c {
            ConcreteCapability::Screen { width, height } => Some((*width, *height)),
            _ => None,
        })
    }

    /// Orientation of the screen (defaults to landscape if screenless).
    pub fn orientation(&self) -> Orientation {
        match self.screen() {
            Some((w, h)) if h > w => Orientation::Portrait,
            _ => Orientation::Landscape,
        }
    }

    /// Whether any capability implements `interface`.
    pub fn supports(&self, interface: CapabilityInterface) -> bool {
        self.capabilities
            .iter()
            .any(|c| c.implements().contains(&interface))
    }

    /// The best concrete implementation of `interface` on this device.
    pub fn best_for(&self, interface: CapabilityInterface) -> Option<(ConcreteCapability, u32)> {
        self.capabilities
            .iter()
            .filter_map(|c| c.quality_for(interface).map(|q| (*c, q)))
            .max_by_key(|(_, q)| *q)
    }
}

/// One resolved requirement: which device and concrete capability serve an
/// abstract interface.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The abstract interface required.
    pub interface: CapabilityInterface,
    /// The chosen device's name.
    pub device: String,
    /// The chosen concrete capability.
    pub capability: ConcreteCapability,
    /// Its quality score.
    pub quality: u32,
    /// Whether the capability lives on a *remote* device (federation) —
    /// the paper's example of borrowing a notebook's larger screen.
    pub remote: bool,
}

/// The full mapping from a UI's requirements onto device capabilities.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CapabilityPlan {
    /// One assignment per required interface.
    pub assignments: Vec<Assignment>,
}

impl CapabilityPlan {
    /// Resolves `required` against a primary device and optional federated
    /// helpers. The primary device wins ties; helpers are used when they
    /// are strictly better or the primary lacks the capability.
    ///
    /// # Errors
    ///
    /// Returns [`UiError::UnsatisfiedCapability`] naming the first
    /// interface nobody can serve.
    pub fn resolve(
        required: &[CapabilityInterface],
        primary: &DeviceCapabilities,
        federated: &[&DeviceCapabilities],
    ) -> Result<CapabilityPlan, UiError> {
        let mut assignments = Vec::with_capacity(required.len());
        for &interface in required {
            let local = primary.best_for(interface);
            let best_remote = federated
                .iter()
                .filter_map(|d| d.best_for(interface).map(|(c, q)| (d.device.clone(), c, q)))
                .max_by_key(|(_, _, q)| *q);
            let assignment = match (local, best_remote) {
                (Some((cap, q)), Some((_, _, rq))) if q >= rq => Assignment {
                    interface,
                    device: primary.device.clone(),
                    capability: cap,
                    quality: q,
                    remote: false,
                },
                (_, Some((dev, cap, rq))) => Assignment {
                    interface,
                    device: dev,
                    capability: cap,
                    quality: rq,
                    remote: true,
                },
                (Some((cap, q)), None) => Assignment {
                    interface,
                    device: primary.device.clone(),
                    capability: cap,
                    quality: q,
                    remote: false,
                },
                (None, None) => return Err(UiError::UnsatisfiedCapability(interface)),
            };
            assignments.push(assignment);
        }
        Ok(CapabilityPlan { assignments })
    }

    /// The assignment for `interface`, if present.
    pub fn assignment(&self, interface: CapabilityInterface) -> Option<&Assignment> {
        self.assignments.iter().find(|a| a.interface == interface)
    }

    /// Whether the plan borrows any remote capability.
    pub fn is_federated(&self) -> bool {
        self.assignments.iter().any(|a| a.remote)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_mirrors_paper_examples() {
        // "The NotebookKeyboard service implements the KeyboardDevice
        // service interface … as well as the PointingDevice service
        // interface (cursor keys)."
        let kb = ConcreteCapability::QwertyKeyboard;
        assert!(kb
            .implements()
            .contains(&CapabilityInterface::KeyboardDevice));
        assert!(kb
            .implements()
            .contains(&CapabilityInterface::PointingDevice));
        // A phone may use a trackpoint or an accelerometer for pointing.
        for c in [
            ConcreteCapability::Trackpoint,
            ConcreteCapability::Accelerometer,
            ConcreteCapability::CursorKeys,
        ] {
            assert!(c
                .implements()
                .contains(&CapabilityInterface::PointingDevice));
        }
    }

    #[test]
    fn device_profiles_match_hardware() {
        let nokia = DeviceCapabilities::nokia_9300i();
        assert_eq!(nokia.orientation(), Orientation::Landscape);
        assert!(nokia.supports(CapabilityInterface::KeyboardDevice));
        assert!(nokia.supports(CapabilityInterface::PointingDevice));
        assert!(!nokia.supports(CapabilityInterface::CameraDevice));

        let se = DeviceCapabilities::sony_ericsson_m600i();
        assert_eq!(se.orientation(), Orientation::Portrait);

        let iphone = DeviceCapabilities::iphone();
        // iPhone points with touch (9) over accelerometer (6).
        let (best, q) = iphone
            .best_for(CapabilityInterface::PointingDevice)
            .unwrap();
        assert_eq!(best, ConcreteCapability::TouchScreen);
        assert_eq!(q, 9);
    }

    #[test]
    fn nokia_points_with_cursor_keys() {
        // The paper: "On a Nokia 9300i phone, this interface is
        // implemented with the cursor keys of the keyboard."
        let nokia = DeviceCapabilities::nokia_9300i();
        let (best, _) = nokia.best_for(CapabilityInterface::PointingDevice).unwrap();
        assert_eq!(best, ConcreteCapability::CursorKeys);
    }

    #[test]
    fn resolve_prefers_local_over_equal_remote() {
        let plan = CapabilityPlan::resolve(
            &[CapabilityInterface::KeyboardDevice],
            &DeviceCapabilities::nokia_9300i(),
            &[&DeviceCapabilities::notebook()],
        )
        .unwrap();
        let a = plan
            .assignment(CapabilityInterface::KeyboardDevice)
            .unwrap();
        assert_eq!(a.device, "Nokia 9300i");
        assert!(!a.remote);
        assert!(!plan.is_federated());
    }

    #[test]
    fn resolve_federates_for_better_screen() {
        // "the phone may decide to use a notebook's screen with larger
        // resolution; in this case, the ScreenDevice service would be
        // implemented remotely by the notebook platform."
        let plan = CapabilityPlan::resolve(
            &[CapabilityInterface::ScreenDevice],
            &DeviceCapabilities::nokia_9300i(),
            &[&DeviceCapabilities::notebook()],
        )
        .unwrap();
        let a = plan.assignment(CapabilityInterface::ScreenDevice).unwrap();
        assert_eq!(a.device, "Notebook");
        assert!(a.remote);
        assert!(plan.is_federated());
    }

    #[test]
    fn resolve_fails_on_unsatisfiable() {
        let err = CapabilityPlan::resolve(
            &[CapabilityInterface::CameraDevice],
            &DeviceCapabilities::nokia_9300i(),
            &[],
        )
        .unwrap_err();
        assert_eq!(
            err,
            UiError::UnsatisfiedCapability(CapabilityInterface::CameraDevice)
        );
    }

    #[test]
    fn screen_quality_scales_with_area() {
        let small = ConcreteCapability::Screen {
            width: 240,
            height: 320,
        };
        let big = ConcreteCapability::Screen {
            width: 1280,
            height: 800,
        };
        assert!(
            big.quality_for(CapabilityInterface::ScreenDevice)
                > small.quality_for(CapabilityInterface::ScreenDevice)
        );
    }

    #[test]
    fn tags_round_trip() {
        for i in [
            CapabilityInterface::KeyboardDevice,
            CapabilityInterface::PointingDevice,
            CapabilityInterface::ScreenDevice,
            CapabilityInterface::AudioDevice,
            CapabilityInterface::CameraDevice,
        ] {
            assert_eq!(CapabilityInterface::from_tag(i.tag()).unwrap(), i);
        }
        assert!(CapabilityInterface::from_tag(99).is_err());
    }
}
