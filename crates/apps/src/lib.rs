#![warn(missing_docs)]

//! # alfredo-apps
//!
//! The two prototype applications from §5 of the AlfredO paper, built
//! entirely on the public APIs of the lower crates:
//!
//! * [`mouse`] — **MouseController**: the phone becomes a universal remote
//!   controller for a notebook's mouse pointer. Pointer input maps through
//!   the phone's best `PointingDevice` capability (cursor keys on the
//!   Nokia 9300i, accelerometer on the iPhone); a periodically updated
//!   screen snapshot flows back to the phone as asynchronous events under
//!   a bandwidth budget.
//! * [`shop`] — **AlfredOShop**: the phone controls a shop-window
//!   information screen, browsing and comparing products even when the
//!   shop is closed. The product catalogue (data tier) stays on the
//!   screen; the comparison logic is offloadable to trusted clients as a
//!   smart proxy; the rich UI adapts to each phone's screen and input
//!   devices.
//!
//! * [`coffee`] — **CoffeeMachine**: the paper's archetypal appliance;
//!   its strength *knob* is an abstract slider each phone implements with
//!   its own pointing hardware, and brew progress flows back through poll
//!   rules and a completion event.
//! * [`rooms`] — the multi-user variants: **MultiCursorBoard** (every
//!   member drives its own cursor on a shared screen) and **SharedCart**
//!   (one cart per room, increments composed atomically), both hosted in
//!   a shared sequenced `Room`.
//!
//! Each module provides the target-device side (`register_*` — service
//! implementation + descriptor) and helpers the examples and benchmarks
//! share.

pub mod coffee;
pub mod mouse;
pub mod rooms;
pub mod shop;

pub use coffee::{register_coffee_machine, CoffeeMachineService, COFFEE_INTERFACE};
pub use mouse::{register_mouse_controller, MouseControllerService, MOUSE_INTERFACE};
pub use rooms::{
    register_multi_cursor, register_shared_cart, MultiCursorService, SharedCartService,
    MULTI_CURSOR_INTERFACE, SHARED_CART_INTERFACE,
};
pub use shop::{
    register_shop, sample_catalog, ComparisonLogic, ProductCatalog, ShopService, COMPARE_INTERFACE,
    SHOP_INTERFACE,
};
