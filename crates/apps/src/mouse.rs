//! MouseController (§5.1): the phone as a universal remote controller.
//!
//! "This is a very simple but very powerful service that allows a mobile
//! phone to control the movement of the mouse on a notebook's screen. …
//! On the phone's screen a small snapshot of the notebook's screen is
//! displayed. Since the interactions causing the mouse to move are
//! typically occurring at a high update rate, there is often not enough
//! network bandwidth left to send the large updates of the snapshot back
//! to the phone. Therefore, the application uses asynchronous events
//! between the service and the phone and sends updates whenever there is
//! enough bandwidth."

use std::sync::Arc;

use alfredo_sync::Mutex;

use alfredo_core::{
    host_service, Action, ArgSource, Binding, ControllerProgram, MethodCall, Rule,
    ServiceDescriptor, Trigger,
};
use alfredo_osgi::{
    Event, EventAdmin, MethodSpec, ParamSpec, Properties, Service, ServiceCallError,
    ServiceInterfaceDesc, ServiceRegistration, TypeHint, Value,
};
use alfredo_rosgi::PROP_IDEMPOTENT_METHODS;
use alfredo_ui::control::RelationKind;
use alfredo_ui::{Control, Relation, UiDescription};

/// The service interface name.
pub const MOUSE_INTERFACE: &str = "apps.MouseController";

/// Topic on which snapshot events are published.
pub const SNAPSHOT_TOPIC: &str = "mouse/snapshot";

/// Snapshot dimensions: 320×200 RGB ⇒ 192 000 bytes, reproducing the
/// paper's observation that "the MouseController consumes about 200
/// kBytes of memory … due to application-generated data (the RGB bitmap
/// image)".
pub const SNAPSHOT_WIDTH: usize = 320;
/// See [`SNAPSHOT_WIDTH`].
pub const SNAPSHOT_HEIGHT: usize = 200;

struct PointerState {
    x: i64,
    y: i64,
    clicks: u64,
    moves: u64,
    snapshot_seq: u64,
    last_snapshot_ms: u64,
}

/// The notebook-side service: owns the pointer and renders snapshots.
pub struct MouseControllerService {
    screen_w: i64,
    screen_h: i64,
    state: Mutex<PointerState>,
    events: EventAdmin,
}

impl MouseControllerService {
    /// Creates the service for a notebook screen of the given size,
    /// publishing snapshot events on `events`.
    pub fn new(screen_w: i64, screen_h: i64, events: EventAdmin) -> Self {
        MouseControllerService {
            screen_w,
            screen_h,
            state: Mutex::new(PointerState {
                x: screen_w / 2,
                y: screen_h / 2,
                clicks: 0,
                moves: 0,
                snapshot_seq: 0,
                last_snapshot_ms: 0,
            }),
            events,
        }
    }

    /// The current pointer position.
    pub fn position(&self) -> (i64, i64) {
        let s = self.state.lock();
        (s.x, s.y)
    }

    /// Total clicks so far.
    pub fn clicks(&self) -> u64 {
        self.state.lock().clicks
    }

    /// Total pointer moves so far.
    pub fn moves(&self) -> u64 {
        self.state.lock().moves
    }

    /// Renders the synthetic notebook screen: a gradient background with
    /// a crosshair at the pointer — enough structure that snapshots
    /// change as the pointer moves.
    pub fn render_snapshot(&self) -> Vec<u8> {
        let (px, py) = self.position();
        let mut rgb = vec![0u8; SNAPSHOT_WIDTH * SNAPSHOT_HEIGHT * 3];
        let sx = px as f64 / self.screen_w as f64 * SNAPSHOT_WIDTH as f64;
        let sy = py as f64 / self.screen_h as f64 * SNAPSHOT_HEIGHT as f64;
        for y in 0..SNAPSHOT_HEIGHT {
            for x in 0..SNAPSHOT_WIDTH {
                let idx = (y * SNAPSHOT_WIDTH + x) * 3;
                rgb[idx] = (x * 255 / SNAPSHOT_WIDTH) as u8;
                rgb[idx + 1] = (y * 255 / SNAPSHOT_HEIGHT) as u8;
                let on_cross = (x as f64 - sx).abs() < 2.0 || (y as f64 - sy).abs() < 2.0;
                rgb[idx + 2] = if on_cross { 255 } else { 32 };
            }
        }
        rgb
    }

    /// Publishes a snapshot event if at least `min_interval_ms` of
    /// bandwidth-budget time has passed since the last one — the paper's
    /// "sends updates whenever there is enough bandwidth". Returns whether
    /// an event was published.
    pub fn maybe_publish_snapshot(&self, now_ms: u64, min_interval_ms: u64) -> bool {
        {
            let mut s = self.state.lock();
            if now_ms.saturating_sub(s.last_snapshot_ms) < min_interval_ms && s.snapshot_seq > 0 {
                return false;
            }
            s.last_snapshot_ms = now_ms;
            s.snapshot_seq += 1;
        }
        let seq = self.state.lock().snapshot_seq;
        let bytes = self.render_snapshot();
        self.events.post(&Event::new(
            SNAPSHOT_TOPIC,
            Properties::new()
                .with("seq", seq as i64)
                .with("value", Value::Bytes(bytes)),
        ));
        true
    }

    /// The shippable interface description.
    pub fn interface() -> ServiceInterfaceDesc {
        ServiceInterfaceDesc::new(
            MOUSE_INTERFACE,
            vec![
                MethodSpec::new(
                    "move",
                    vec![
                        ParamSpec::new("dx", TypeHint::I64),
                        ParamSpec::new("dy", TypeHint::I64),
                    ],
                    TypeHint::Unit,
                    "Move the pointer by a relative offset.",
                ),
                MethodSpec::new(
                    "move_to",
                    vec![
                        ParamSpec::new("x", TypeHint::I64),
                        ParamSpec::new("y", TypeHint::I64),
                    ],
                    TypeHint::Unit,
                    "Warp the pointer to an absolute position (idempotent).",
                ),
                MethodSpec::new("click", vec![], TypeHint::Unit, "Press the primary button."),
                MethodSpec::new(
                    "position",
                    vec![],
                    TypeHint::Struct,
                    "Current pointer position.",
                ),
                MethodSpec::new(
                    "screenshot",
                    vec![],
                    TypeHint::Bytes,
                    "A downscaled RGB snapshot of the screen.",
                ),
            ],
        )
    }

    /// The AlfredO descriptor: movement pad UI + controller rules wiring
    /// pointer input to `move`, the click button to `click`, and snapshot
    /// events into the image control.
    pub fn descriptor() -> ServiceDescriptor {
        let ui = UiDescription::new("MouseController")
            .with_control(Control::label("title", "MouseController"))
            .with_control(Control::image(
                "snapshot",
                SNAPSHOT_WIDTH as u32,
                SNAPSHOT_HEIGHT as u32,
                SNAPSHOT_TOPIC,
            ))
            .with_control(Control::panel(
                "pad",
                true,
                vec![
                    Control::button("up", "▲"),
                    Control::panel(
                        "mid",
                        false,
                        vec![
                            Control::button("left", "◀"),
                            Control::button("click", "●"),
                            Control::button("right", "▶"),
                        ],
                    ),
                    Control::button("down", "▼"),
                ],
            ))
            .with_relation(Relation::new("title", RelationKind::LabelFor, "snapshot"))
            .with_relation(Relation::new("pad", RelationKind::Triggers, "snapshot"));

        let step = 10i64;
        let move_rule = |control: &str, dx: i64, dy: i64| {
            Rule::on_click(
                control,
                MethodCall::new(
                    MOUSE_INTERFACE,
                    "move",
                    vec![
                        ArgSource::Const(Value::I64(dx)),
                        ArgSource::Const(Value::I64(dy)),
                    ],
                ),
                None,
            )
        };
        let controller = ControllerProgram::new(vec![
            move_rule("up", 0, -step),
            move_rule("down", 0, step),
            move_rule("left", -step, 0),
            move_rule("right", step, 0),
            Rule::on_click(
                "click",
                MethodCall::new(MOUSE_INTERFACE, "click", vec![]),
                None,
            ),
            // Raw pointer input (trackpoint/accelerometer) routed to the pad.
            Rule::new(
                Trigger::UiPointer {
                    control: "pad".into(),
                },
                vec![Action::Invoke {
                    call: MethodCall::new(
                        MOUSE_INTERFACE,
                        "move",
                        vec![ArgSource::EventDx, ArgSource::EventDy],
                    ),
                    bind: None,
                }],
            ),
            // Asynchronous snapshot events update the image control.
            Rule::new(
                Trigger::RemoteEvent {
                    topic_pattern: SNAPSHOT_TOPIC.into(),
                },
                vec![Action::Update {
                    bind: Binding::to_slot("snapshot", "data"),
                    value: ArgSource::EventValue,
                }],
            ),
        ]);

        ServiceDescriptor::new(MOUSE_INTERFACE, ui).with_controller(controller)
    }
}

impl Service for MouseControllerService {
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ServiceCallError> {
        match method {
            "move" => {
                let (dx, dy) = match args {
                    [a, b] => (
                        a.as_i64().ok_or_else(|| {
                            ServiceCallError::BadArguments("dx must be an integer".into())
                        })?,
                        b.as_i64().ok_or_else(|| {
                            ServiceCallError::BadArguments("dy must be an integer".into())
                        })?,
                    ),
                    _ => {
                        return Err(ServiceCallError::BadArguments(
                            "move expects (dx, dy)".into(),
                        ))
                    }
                };
                let mut s = self.state.lock();
                s.x = (s.x + dx).clamp(0, self.screen_w - 1);
                s.y = (s.y + dy).clamp(0, self.screen_h - 1);
                s.moves += 1;
                Ok(Value::Unit)
            }
            "move_to" => {
                let (x, y) = match args {
                    [a, b] => (
                        a.as_i64().ok_or_else(|| {
                            ServiceCallError::BadArguments("x must be an integer".into())
                        })?,
                        b.as_i64().ok_or_else(|| {
                            ServiceCallError::BadArguments("y must be an integer".into())
                        })?,
                    ),
                    _ => {
                        return Err(ServiceCallError::BadArguments(
                            "move_to expects (x, y)".into(),
                        ))
                    }
                };
                let mut s = self.state.lock();
                let nx = x.clamp(0, self.screen_w - 1);
                let ny = y.clamp(0, self.screen_h - 1);
                // Idempotent by design: re-delivering the same warp (a
                // retried request after a dropped frame) is a no-op.
                if (nx, ny) != (s.x, s.y) {
                    s.x = nx;
                    s.y = ny;
                    s.moves += 1;
                }
                Ok(Value::Unit)
            }
            "click" => {
                self.state.lock().clicks += 1;
                Ok(Value::Unit)
            }
            "position" => {
                let s = self.state.lock();
                Ok(Value::structure(
                    "mouse.Position",
                    [("x", Value::I64(s.x)), ("y", Value::I64(s.y))],
                ))
            }
            "screenshot" => Ok(Value::Bytes(self.render_snapshot())),
            other => Err(ServiceCallError::NoSuchMethod(other.to_owned())),
        }
    }

    fn describe(&self) -> Option<ServiceInterfaceDesc> {
        Some(MouseControllerService::interface())
    }
}

impl std::fmt::Debug for MouseControllerService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (x, y) = self.position();
        f.debug_struct("MouseControllerService")
            .field("pointer", &(x, y))
            .finish()
    }
}

/// Registers the MouseController on a notebook's framework and returns
/// the service handle and registration.
///
/// # Errors
///
/// Propagates registration errors.
pub fn register_mouse_controller(
    framework: &alfredo_osgi::Framework,
    screen_w: i64,
    screen_h: i64,
) -> Result<(Arc<MouseControllerService>, ServiceRegistration), alfredo_osgi::OsgiError> {
    let service = Arc::new(MouseControllerService::new(
        screen_w,
        screen_h,
        framework.event_admin().clone(),
    ));
    let registration = host_service(
        framework,
        MOUSE_INTERFACE,
        Arc::clone(&service) as Arc<dyn Service>,
        &MouseControllerService::descriptor(),
        None,
        Properties::new().with("device.kind", "notebook").with(
            PROP_IDEMPOTENT_METHODS,
            Value::from(vec!["move_to", "position", "screenshot"]),
        ),
    )?;
    Ok((service, registration))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> MouseControllerService {
        MouseControllerService::new(1280, 800, EventAdmin::new())
    }

    #[test]
    fn moves_are_applied_and_clamped() {
        let svc = service();
        assert_eq!(svc.position(), (640, 400));
        svc.invoke("move", &[Value::I64(10), Value::I64(-20)])
            .unwrap();
        assert_eq!(svc.position(), (650, 380));
        // Clamp at the screen edge.
        svc.invoke("move", &[Value::I64(100_000), Value::I64(100_000)])
            .unwrap();
        assert_eq!(svc.position(), (1279, 799));
        svc.invoke("move", &[Value::I64(-100_000), Value::I64(0)])
            .unwrap();
        assert_eq!(svc.position(), (0, 799));
        assert_eq!(svc.moves(), 3);
    }

    #[test]
    fn move_to_is_absolute_clamped_and_idempotent() {
        let svc = service();
        svc.invoke("move_to", &[Value::I64(100), Value::I64(50)])
            .unwrap();
        assert_eq!(svc.position(), (100, 50));
        assert_eq!(svc.moves(), 1);
        // A retried duplicate changes nothing, not even the move count.
        svc.invoke("move_to", &[Value::I64(100), Value::I64(50)])
            .unwrap();
        assert_eq!(svc.position(), (100, 50));
        assert_eq!(svc.moves(), 1);
        svc.invoke("move_to", &[Value::I64(-5), Value::I64(100_000)])
            .unwrap();
        assert_eq!(svc.position(), (0, 799));
    }

    #[test]
    fn click_and_position() {
        let svc = service();
        svc.invoke("click", &[]).unwrap();
        svc.invoke("click", &[]).unwrap();
        assert_eq!(svc.clicks(), 2);
        let pos = svc.invoke("position", &[]).unwrap();
        assert_eq!(pos.field("x").and_then(Value::as_i64), Some(640));
    }

    #[test]
    fn bad_arguments_rejected() {
        let svc = service();
        assert!(matches!(
            svc.invoke("move", &[Value::I64(1)]),
            Err(ServiceCallError::BadArguments(_))
        ));
        assert!(matches!(
            svc.invoke("move", &[Value::from("a"), Value::I64(1)]),
            Err(ServiceCallError::BadArguments(_))
        ));
        assert!(matches!(
            svc.invoke("warp", &[]),
            Err(ServiceCallError::NoSuchMethod(_))
        ));
    }

    #[test]
    fn snapshot_is_rgb_bitmap_of_paper_size() {
        let svc = service();
        let snap = svc.invoke("screenshot", &[]).unwrap();
        let bytes = snap.as_bytes().unwrap();
        // 320x200x3 = 192,000 bytes ≈ the paper's ~200 kB runtime memory.
        assert_eq!(bytes.len(), SNAPSHOT_WIDTH * SNAPSHOT_HEIGHT * 3);
        assert!((150_000..250_000).contains(&bytes.len()));
    }

    #[test]
    fn snapshot_tracks_pointer() {
        let svc = service();
        let before = svc.render_snapshot();
        svc.invoke("move", &[Value::I64(300), Value::I64(150)])
            .unwrap();
        let after = svc.render_snapshot();
        assert_ne!(before, after, "crosshair must follow the pointer");
    }

    #[test]
    fn bandwidth_budget_limits_snapshot_events() {
        let events = EventAdmin::new();
        let svc = MouseControllerService::new(800, 600, events.clone());
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let c = std::sync::Arc::clone(&counter);
        events.subscribe(SNAPSHOT_TOPIC, move |_| {
            c.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert!(svc.maybe_publish_snapshot(0, 100));
        assert!(!svc.maybe_publish_snapshot(50, 100), "budget exhausted");
        assert!(svc.maybe_publish_snapshot(150, 100));
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn descriptor_is_valid_and_wired() {
        let d = MouseControllerService::descriptor();
        d.validate().unwrap();
        assert_eq!(d.service, MOUSE_INTERFACE);
        assert!(d.ui.find("pad").is_some());
        // All four direction rules plus click, pointer, and snapshot rules.
        assert_eq!(d.controller.rules().len(), 7);
        // Round-trips for shipping.
        let bytes = d.encode();
        assert_eq!(ServiceDescriptor::decode(&bytes).unwrap(), d);
    }

    #[test]
    fn interface_describes_all_methods() {
        let iface = MouseControllerService::interface();
        for m in ["move", "move_to", "click", "position", "screenshot"] {
            assert!(iface.method(m).is_some(), "{m}");
        }
        let svc = service();
        assert_eq!(svc.describe().unwrap(), iface);
    }
}
