//! Room-backed multi-user variants of the paper's prototype apps.
//!
//! The paper's MouseController and AlfredOShop are strictly one phone ↔
//! one device. These services re-host their state inside a shared
//! [`Room`], turning them into N-phone collaborative sessions:
//!
//! * [`MultiCursorService`] — every member drives its *own* cursor on
//!   the shared screen (key `cursor/<member>`); each phone's replica
//!   renders every cursor, so a lecture hall of phones sees everyone's
//!   pointer move in the same sequenced order.
//! * [`SharedCartService`] — the AlfredOShop cart becomes one cart per
//!   *room* instead of per phone (key `cart/<product>`); quantity
//!   changes compose through [`Room::update`]'s read-modify-write, so
//!   two members pressing "add" concurrently never lose an increment.
//!
//! Both services mutate only through the room, which means every change
//! is sequenced, journaled (on a durable room), and fanned out to every
//! member with coalescing backpressure — the apps inherit the whole
//! room test battery's guarantees for free.

use std::sync::Arc;

use alfredo_core::{
    host_service, room_update_topic, Action, ArgSource, Binding, ControllerProgram, MethodCall,
    Room, RoomError, Rule, ServiceDescriptor, Trigger,
};
use alfredo_osgi::{
    MethodSpec, ParamSpec, Properties, Service, ServiceCallError, ServiceInterfaceDesc,
    ServiceRegistration, TypeHint, Value,
};
use alfredo_rosgi::PROP_IDEMPOTENT_METHODS;
use alfredo_ui::control::RelationKind;
use alfredo_ui::{Control, Relation, UiDescription};

use crate::shop::ProductCatalog;

/// The multi-cursor board's service interface name.
pub const MULTI_CURSOR_INTERFACE: &str = "apps.MultiCursorBoard";

/// The shared cart's service interface name.
pub const SHARED_CART_INTERFACE: &str = "apps.SharedCart";

/// Room state key holding `member`'s cursor.
pub fn cursor_key(member: &str) -> String {
    format!("cursor/{member}")
}

/// Room state key holding `product`'s cart quantity.
pub fn cart_key(product: &str) -> String {
    format!("cart/{product}")
}

fn str_arg(args: &[Value], i: usize, what: &str) -> Result<String, ServiceCallError> {
    args.get(i)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ServiceCallError::BadArguments(format!("{what} must be a string")))
}

fn i64_arg(args: &[Value], i: usize, what: &str) -> Result<i64, ServiceCallError> {
    args.get(i)
        .and_then(Value::as_i64)
        .ok_or_else(|| ServiceCallError::BadArguments(format!("{what} must be an integer")))
}

/// The MouseController generalized to N members: each member's cursor is
/// one sequenced room key, so every phone converges on every cursor in
/// the same order.
pub struct MultiCursorService {
    room: Arc<Room>,
    screen_w: i64,
    screen_h: i64,
}

impl MultiCursorService {
    /// Creates the service over `room` for a screen of the given size.
    pub fn new(room: Arc<Room>, screen_w: i64, screen_h: i64) -> Self {
        MultiCursorService {
            room,
            screen_w: screen_w.max(1),
            screen_h: screen_h.max(1),
        }
    }

    /// The room backing the board.
    pub fn room(&self) -> &Arc<Room> {
        &self.room
    }

    /// Moves `member`'s cursor by a relative offset, clamped to the
    /// screen; a first move spawns the cursor at the screen centre.
    /// Returns the delta's seq.
    ///
    /// # Errors
    ///
    /// [`RoomError::NotAMember`] if `member` has no seat.
    pub fn move_cursor(&self, member: &str, dx: i64, dy: i64) -> Result<u64, RoomError> {
        let (w, h) = (self.screen_w, self.screen_h);
        self.room.update(member, &cursor_key(member), |old| {
            let (x, y) = match old {
                Some(v) => (
                    v.field("x").and_then(Value::as_i64).unwrap_or(w / 2),
                    v.field("y").and_then(Value::as_i64).unwrap_or(h / 2),
                ),
                None => (w / 2, h / 2),
            };
            cursor_value((x + dx).clamp(0, w - 1), (y + dy).clamp(0, h - 1))
        })
    }

    /// Warps `member`'s cursor to an absolute position (idempotent).
    ///
    /// # Errors
    ///
    /// [`RoomError::NotAMember`] if `member` has no seat.
    pub fn set_cursor(&self, member: &str, x: i64, y: i64) -> Result<u64, RoomError> {
        self.room.publish(
            member,
            cursor_key(member),
            cursor_value(x.clamp(0, self.screen_w - 1), y.clamp(0, self.screen_h - 1)),
        )
    }

    /// Every member's cursor position, sorted by member name.
    pub fn cursors(&self) -> Vec<(String, i64, i64)> {
        let (_, state) = self.room.snapshot();
        state
            .iter()
            .filter_map(|(key, v)| {
                let member = key.strip_prefix("cursor/")?;
                Some((
                    member.to_owned(),
                    v.field("x").and_then(Value::as_i64)?,
                    v.field("y").and_then(Value::as_i64)?,
                ))
            })
            .collect()
    }

    /// The shippable interface description.
    pub fn interface() -> ServiceInterfaceDesc {
        ServiceInterfaceDesc::new(
            MULTI_CURSOR_INTERFACE,
            vec![
                MethodSpec::new(
                    "move",
                    vec![
                        ParamSpec::new("member", TypeHint::Str),
                        ParamSpec::new("dx", TypeHint::I64),
                        ParamSpec::new("dy", TypeHint::I64),
                    ],
                    TypeHint::I64,
                    "Move the member's cursor by a relative offset; returns the seq.",
                ),
                MethodSpec::new(
                    "move_to",
                    vec![
                        ParamSpec::new("member", TypeHint::Str),
                        ParamSpec::new("x", TypeHint::I64),
                        ParamSpec::new("y", TypeHint::I64),
                    ],
                    TypeHint::I64,
                    "Warp the member's cursor to an absolute position (idempotent).",
                ),
                MethodSpec::new(
                    "cursors",
                    vec![],
                    TypeHint::Map,
                    "Every member's cursor position.",
                ),
            ],
        )
    }

    /// The AlfredO descriptor: the MouseController pad, plus a rule that
    /// refreshes the board on every sequenced room update instead of on a
    /// private snapshot topic — the multi-user twist.
    pub fn descriptor(room_name: &str) -> ServiceDescriptor {
        let topic = room_update_topic(room_name);
        let ui = UiDescription::new("MultiCursorBoard")
            .with_control(Control::label("title", "Shared cursor board"))
            .with_control(Control::label("board", "· · ·"))
            .with_control(Control::text_input("member", "your member name"))
            .with_control(Control::panel(
                "pad",
                true,
                vec![
                    Control::button("up", "▲"),
                    Control::panel(
                        "mid",
                        false,
                        vec![Control::button("left", "◀"), Control::button("right", "▶")],
                    ),
                    Control::button("down", "▼"),
                ],
            ))
            .with_relation(Relation::new("title", RelationKind::LabelFor, "board"))
            .with_relation(Relation::new("pad", RelationKind::Triggers, "board"));

        let step = 10i64;
        let move_rule = |control: &str, dx: i64, dy: i64| {
            Rule::on_click(
                control,
                MethodCall::new(
                    MULTI_CURSOR_INTERFACE,
                    "move",
                    vec![
                        ArgSource::State {
                            control: "member".into(),
                        },
                        ArgSource::Const(Value::I64(dx)),
                        ArgSource::Const(Value::I64(dy)),
                    ],
                ),
                None,
            )
        };
        let controller = ControllerProgram::new(vec![
            move_rule("up", 0, -step),
            move_rule("down", 0, step),
            move_rule("left", -step, 0),
            move_rule("right", step, 0),
            // Every sequenced room update refreshes the shared board.
            Rule::new(
                Trigger::RemoteEvent {
                    topic_pattern: topic,
                },
                vec![Action::Update {
                    bind: Binding::to_slot("board", "text"),
                    value: ArgSource::EventValue,
                }],
            ),
        ]);
        ServiceDescriptor::new(MULTI_CURSOR_INTERFACE, ui).with_controller(controller)
    }
}

fn cursor_value(x: i64, y: i64) -> Value {
    Value::structure("apps.Cursor", [("x", Value::I64(x)), ("y", Value::I64(y))])
}

impl Service for MultiCursorService {
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ServiceCallError> {
        match method {
            "move" => {
                let member = str_arg(args, 0, "member")?;
                let dx = i64_arg(args, 1, "dx")?;
                let dy = i64_arg(args, 2, "dy")?;
                let seq = self
                    .move_cursor(&member, dx, dy)
                    .map_err(|e| ServiceCallError::Failed(e.to_string()))?;
                Ok(Value::I64(seq as i64))
            }
            "move_to" => {
                let member = str_arg(args, 0, "member")?;
                let x = i64_arg(args, 1, "x")?;
                let y = i64_arg(args, 2, "y")?;
                let seq = self
                    .set_cursor(&member, x, y)
                    .map_err(|e| ServiceCallError::Failed(e.to_string()))?;
                Ok(Value::I64(seq as i64))
            }
            "cursors" => {
                let map = self
                    .cursors()
                    .into_iter()
                    .map(|(member, x, y)| (member, cursor_value(x, y)))
                    .collect();
                Ok(Value::Map(map))
            }
            other => Err(ServiceCallError::NoSuchMethod(other.to_owned())),
        }
    }

    fn describe(&self) -> Option<ServiceInterfaceDesc> {
        Some(MultiCursorService::interface())
    }
}

/// Registers a [`MultiCursorService`] over `room` on `framework`.
///
/// # Errors
///
/// Propagates registration errors.
pub fn register_multi_cursor(
    framework: &alfredo_osgi::Framework,
    room: Arc<Room>,
    screen_w: i64,
    screen_h: i64,
) -> Result<(Arc<MultiCursorService>, ServiceRegistration), alfredo_osgi::OsgiError> {
    let descriptor = MultiCursorService::descriptor(room.name());
    let service = Arc::new(MultiCursorService::new(room, screen_w, screen_h));
    let registration = host_service(
        framework,
        MULTI_CURSOR_INTERFACE,
        Arc::clone(&service) as Arc<dyn Service>,
        &descriptor,
        None,
        Properties::new().with(
            PROP_IDEMPOTENT_METHODS,
            Value::List(vec![Value::from("move_to"), Value::from("cursors")]),
        ),
    )?;
    Ok((service, registration))
}

/// The AlfredOShop cart lifted into a room: one cart shared by every
/// member, with increments composed atomically under the room lock.
pub struct SharedCartService {
    room: Arc<Room>,
    catalog: Arc<ProductCatalog>,
}

impl SharedCartService {
    /// Creates the service over `room`, validating products against
    /// `catalog`.
    pub fn new(room: Arc<Room>, catalog: Arc<ProductCatalog>) -> Self {
        SharedCartService { room, catalog }
    }

    /// The room backing the cart.
    pub fn room(&self) -> &Arc<Room> {
        &self.room
    }

    /// Adds one unit of `product` on behalf of `member`; returns the
    /// delta's seq.
    ///
    /// # Errors
    ///
    /// `Failed` for unknown products; `Failed` (not-a-member) if `member`
    /// has no seat.
    pub fn add(&self, member: &str, product: &str) -> Result<u64, ServiceCallError> {
        if self.catalog.get(product).is_none() {
            return Err(ServiceCallError::Failed(format!(
                "unknown product: {product}"
            )));
        }
        self.room
            .update(member, &cart_key(product), |old| {
                Value::I64(old.and_then(Value::as_i64).unwrap_or(0) + 1)
            })
            .map_err(ServiceCallError::from)
    }

    /// Removes one unit of `product` on behalf of `member` (retracting
    /// the key when the quantity reaches zero); returns the delta's seq.
    ///
    /// # Errors
    ///
    /// `Failed` (not-a-member) if `member` has no seat.
    pub fn remove(&self, member: &str, product: &str) -> Result<u64, ServiceCallError> {
        let key = cart_key(product);
        let (_, state) = self.room.snapshot();
        let qty = state.get(&key).and_then(Value::as_i64).unwrap_or(0);
        if qty <= 1 {
            // Retraction is sequenced like any delta, so concurrent adds
            // order cleanly before or after it.
            self.room
                .retract(member, &key)
                .map_err(ServiceCallError::from)
        } else {
            self.room
                .update(member, &key, |old| {
                    Value::I64((old.and_then(Value::as_i64).unwrap_or(1) - 1).max(0))
                })
                .map_err(ServiceCallError::from)
        }
    }

    /// The cart contents: product name → quantity, sorted.
    pub fn cart(&self) -> Vec<(String, i64)> {
        let (_, state) = self.room.snapshot();
        state
            .iter()
            .filter_map(|(key, v)| Some((key.strip_prefix("cart/")?.to_owned(), v.as_i64()?)))
            .collect()
    }

    /// The cart total in cents, priced from the catalogue.
    pub fn total_cents(&self) -> i64 {
        self.cart()
            .into_iter()
            .filter_map(|(product, qty)| Some(self.catalog.get(&product)?.price_cents * qty))
            .sum()
    }

    /// The shippable interface description.
    pub fn interface() -> ServiceInterfaceDesc {
        let member = || ParamSpec::new("member", TypeHint::Str);
        let product = || ParamSpec::new("product", TypeHint::Str);
        ServiceInterfaceDesc::new(
            SHARED_CART_INTERFACE,
            vec![
                MethodSpec::new(
                    "add",
                    vec![member(), product()],
                    TypeHint::I64,
                    "Add one unit to the shared cart; returns the seq.",
                ),
                MethodSpec::new(
                    "remove",
                    vec![member(), product()],
                    TypeHint::I64,
                    "Remove one unit from the shared cart; returns the seq.",
                ),
                MethodSpec::new("cart", vec![], TypeHint::Map, "Product → quantity."),
                MethodSpec::new(
                    "total",
                    vec![],
                    TypeHint::I64,
                    "Cart total in cents, priced from the catalogue.",
                ),
            ],
        )
    }

    /// The AlfredO descriptor: cart summary refreshed on every sequenced
    /// room update, add/remove buttons bound to the selected product.
    pub fn descriptor(room_name: &str) -> ServiceDescriptor {
        let topic = room_update_topic(room_name);
        let ui = UiDescription::new("SharedCart")
            .with_control(Control::label("title", "Shared cart"))
            .with_control(Control::label("summary", "(empty)"))
            .with_control(Control::text_input("member", "your member name"))
            .with_control(Control::text_input("product", "product name"))
            .with_control(Control::panel(
                "actions",
                false,
                vec![
                    Control::button("add", "Add"),
                    Control::button("remove", "Remove"),
                ],
            ))
            .with_relation(Relation::new("title", RelationKind::LabelFor, "summary"))
            .with_relation(Relation::new("actions", RelationKind::Triggers, "summary"));
        let controller = ControllerProgram::new(vec![
            Rule::on_click(
                "add",
                MethodCall::new(
                    SHARED_CART_INTERFACE,
                    "add",
                    vec![
                        ArgSource::State {
                            control: "member".into(),
                        },
                        ArgSource::State {
                            control: "product".into(),
                        },
                    ],
                ),
                None,
            ),
            Rule::on_click(
                "remove",
                MethodCall::new(
                    SHARED_CART_INTERFACE,
                    "remove",
                    vec![
                        ArgSource::State {
                            control: "member".into(),
                        },
                        ArgSource::State {
                            control: "product".into(),
                        },
                    ],
                ),
                None,
            ),
            Rule::new(
                Trigger::RemoteEvent {
                    topic_pattern: topic,
                },
                vec![Action::Update {
                    bind: Binding::to_slot("summary", "text"),
                    value: ArgSource::EventValue,
                }],
            ),
        ]);
        ServiceDescriptor::new(SHARED_CART_INTERFACE, ui).with_controller(controller)
    }
}

impl Service for SharedCartService {
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ServiceCallError> {
        match method {
            "add" => {
                let member = str_arg(args, 0, "member")?;
                let product = str_arg(args, 1, "product")?;
                Ok(Value::I64(self.add(&member, &product)? as i64))
            }
            "remove" => {
                let member = str_arg(args, 0, "member")?;
                let product = str_arg(args, 1, "product")?;
                Ok(Value::I64(self.remove(&member, &product)? as i64))
            }
            "cart" => Ok(Value::Map(
                self.cart()
                    .into_iter()
                    .map(|(product, qty)| (product, Value::I64(qty)))
                    .collect(),
            )),
            "total" => Ok(Value::I64(self.total_cents())),
            other => Err(ServiceCallError::NoSuchMethod(other.to_owned())),
        }
    }

    fn describe(&self) -> Option<ServiceInterfaceDesc> {
        Some(SharedCartService::interface())
    }
}

/// Registers a [`SharedCartService`] over `room` on `framework`.
///
/// # Errors
///
/// Propagates registration errors.
pub fn register_shared_cart(
    framework: &alfredo_osgi::Framework,
    room: Arc<Room>,
    catalog: Arc<ProductCatalog>,
) -> Result<(Arc<SharedCartService>, ServiceRegistration), alfredo_osgi::OsgiError> {
    let descriptor = SharedCartService::descriptor(room.name());
    let service = Arc::new(SharedCartService::new(room, catalog));
    let registration = host_service(
        framework,
        SHARED_CART_INTERFACE,
        Arc::clone(&service) as Arc<dyn Service>,
        &descriptor,
        None,
        Properties::new().with(
            PROP_IDEMPOTENT_METHODS,
            Value::List(vec![Value::from("cart"), Value::from("total")]),
        ),
    )?;
    Ok((service, registration))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shop::sample_catalog;
    use alfredo_core::{ReplicaSink, RoomConfig, RoomReplica};

    fn board() -> (Arc<Room>, Arc<RoomReplica>) {
        let room = Room::new(RoomConfig::new("board"));
        let replica = RoomReplica::new("board");
        room.join("a", Arc::new(ReplicaSink(Arc::clone(&replica))), 0);
        room.join("b", Arc::new(ReplicaSink(RoomReplica::new("board"))), 0);
        (room, replica)
    }

    #[test]
    fn cursors_are_per_member_and_clamped() {
        let (room, replica) = board();
        let svc = MultiCursorService::new(Arc::clone(&room), 100, 100);
        svc.move_cursor("a", 10, 0).unwrap();
        svc.move_cursor("b", 0, -500).unwrap();
        let cursors = svc.cursors();
        assert_eq!(cursors.len(), 2);
        assert_eq!(cursors[0], ("a".to_string(), 60, 50));
        assert_eq!(cursors[1], ("b".to_string(), 50, 0), "clamped to screen");
        // The replica sees the same cursors through sequenced deltas.
        assert_eq!(
            replica.get(&cursor_key("a")).unwrap().field("x"),
            Some(&Value::I64(60))
        );
        assert_eq!(replica.gaps(), 0);
    }

    #[test]
    fn multi_cursor_invoke_surface() {
        let (room, _) = board();
        let svc = MultiCursorService::new(room, 100, 100);
        svc.invoke("move_to", &[Value::from("a"), Value::I64(7), Value::I64(8)])
            .unwrap();
        let cursors = svc.invoke("cursors", &[]).unwrap();
        assert_eq!(
            cursors.as_map().unwrap().get("a").unwrap().field("y"),
            Some(&Value::I64(8))
        );
        assert!(matches!(
            svc.invoke(
                "move",
                &[Value::from("ghost"), Value::I64(1), Value::I64(1)]
            ),
            Err(ServiceCallError::Failed(_))
        ));
        assert!(matches!(
            svc.invoke("bogus", &[]),
            Err(ServiceCallError::NoSuchMethod(_))
        ));
    }

    #[test]
    fn shared_cart_composes_increments_and_prices() {
        let (room, replica) = board();
        let catalog = sample_catalog();
        let product = catalog.products_in(&catalog.categories()[0])[0].clone();
        let price = catalog.get(&product).unwrap().price_cents;
        let svc = SharedCartService::new(Arc::clone(&room), catalog);
        svc.add("a", &product).unwrap();
        svc.add("b", &product).unwrap();
        assert_eq!(svc.cart(), vec![(product.clone(), 2)]);
        assert_eq!(svc.total_cents(), 2 * price);
        svc.remove("a", &product).unwrap();
        assert_eq!(svc.total_cents(), price);
        // Removing the last unit retracts the key entirely.
        svc.remove("b", &product).unwrap();
        assert_eq!(svc.cart(), vec![]);
        assert!(replica.get(&cart_key(&product)).is_none());
        assert_eq!(replica.gaps(), 0);
        // Unknown products are rejected before touching the room.
        assert!(svc.add("a", "no-such-product").is_err());
    }

    #[test]
    fn descriptors_validate() {
        MultiCursorService::descriptor("board")
            .ui
            .validate()
            .unwrap();
        SharedCartService::descriptor("board")
            .ui
            .validate()
            .unwrap();
    }
}
