//! AlfredOShop (§5.2): controlling a shop-window information screen.
//!
//! "By interacting with an information screen placed behind a shop window,
//! a user can browse and compare shop's products even when the shop is
//! closed. … On the customer side, the application can contribute
//! increasing the shop's revenue by making the shop accessible 24 hours a
//! day. Furthermore, a shop's owner does not incur in any security risk
//! because AlfredO provides him a full control on which information to
//! display."
//!
//! Tiers: the [`ProductCatalog`] is the **data tier** and never leaves the
//! information screen; [`ShopService`] is the service facade; the
//! [`ComparisonLogic`] is an **offloadable logic-tier component** shipped
//! to trusted clients as a smart proxy (factory key
//! [`COMPARE_FACTORY_KEY`]).

use std::collections::BTreeMap;
use std::sync::Arc;

use alfredo_sync::Mutex;

use alfredo_core::{
    host_service, Action, ArgSource, Binding, ControllerProgram, DependencySpec, MethodCall,
    ResourceRequirements, Rule, ServiceDescriptor, Trigger,
};
use alfredo_osgi::{
    MethodSpec, ParamSpec, Properties, Service, ServiceCallError, ServiceInterfaceDesc,
    ServiceRegistration, TypeHint, Value,
};
use alfredo_rosgi::endpoint::{encode_type_descriptors, PROP_INJECTED_TYPES};
use alfredo_rosgi::TypeDescriptor;
use alfredo_ui::control::RelationKind;
use alfredo_ui::{Control, Relation, UiDescription};

/// The shop facade's interface name.
pub const SHOP_INTERFACE: &str = "apps.AlfredOShop";

/// The offloadable comparison component's interface name.
pub const COMPARE_INTERFACE: &str = "apps.shop.Comparison";

/// Code-registry key for the comparison smart proxy's local half.
pub const COMPARE_FACTORY_KEY: &str = "apps.shop.comparison/v1";

/// One product in the catalogue.
#[derive(Debug, Clone, PartialEq)]
pub struct Product {
    /// Unique product name.
    pub name: String,
    /// Category, e.g. `"Beds"`.
    pub category: String,
    /// Price in cents.
    pub price_cents: i64,
    /// Free-text description.
    pub description: String,
    /// (width, depth, height) in centimetres.
    pub dimensions_cm: (i64, i64, i64),
    /// Units in stock.
    pub stock: i64,
}

impl Product {
    /// The injected wire type for products.
    pub fn type_descriptor() -> TypeDescriptor {
        TypeDescriptor::new("shop.Product")
            .with_field("name", TypeHint::Str)
            .with_field("category", TypeHint::Str)
            .with_field("price_cents", TypeHint::I64)
            .with_field("description", TypeHint::Str)
            .with_field("dimensions_cm", TypeHint::List)
            .with_field("stock", TypeHint::I64)
    }

    /// Converts to the wire value (a `shop.Product` struct).
    pub fn to_value(&self) -> Value {
        Value::structure(
            "shop.Product",
            [
                ("name", Value::from(self.name.as_str())),
                ("category", Value::from(self.category.as_str())),
                ("price_cents", Value::from(self.price_cents)),
                ("description", Value::from(self.description.as_str())),
                (
                    "dimensions_cm",
                    Value::from(vec![
                        self.dimensions_cm.0,
                        self.dimensions_cm.1,
                        self.dimensions_cm.2,
                    ]),
                ),
                ("stock", Value::from(self.stock)),
            ],
        )
    }
}

/// The data tier: an in-memory product database that never leaves the
/// information screen.
#[derive(Debug, Default)]
pub struct ProductCatalog {
    products: Mutex<BTreeMap<String, Product>>,
}

impl ProductCatalog {
    /// Creates an empty catalogue.
    pub fn new() -> Self {
        ProductCatalog::default()
    }

    /// Inserts (or replaces) a product.
    pub fn insert(&self, product: Product) {
        self.products.lock().insert(product.name.clone(), product);
    }

    /// The distinct categories, sorted.
    pub fn categories(&self) -> Vec<String> {
        let mut cats: Vec<String> = self
            .products
            .lock()
            .values()
            .map(|p| p.category.clone())
            .collect();
        cats.sort();
        cats.dedup();
        cats
    }

    /// Product names in a category, sorted.
    pub fn products_in(&self, category: &str) -> Vec<String> {
        self.products
            .lock()
            .values()
            .filter(|p| p.category == category)
            .map(|p| p.name.clone())
            .collect()
    }

    /// Looks up a product.
    pub fn get(&self, name: &str) -> Option<Product> {
        self.products.lock().get(name).cloned()
    }

    /// Case-insensitive substring search over names and descriptions.
    pub fn search(&self, query: &str) -> Vec<String> {
        let q = query.to_lowercase();
        self.products
            .lock()
            .values()
            .filter(|p| {
                p.name.to_lowercase().contains(&q) || p.description.to_lowercase().contains(&q)
            })
            .map(|p| p.name.clone())
            .collect()
    }

    /// Number of products.
    pub fn len(&self) -> usize {
        self.products.lock().len()
    }

    /// Returns `true` if the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.products.lock().is_empty()
    }
}

/// A realistic furniture catalogue for examples, tests, and benchmarks.
pub fn sample_catalog() -> Arc<ProductCatalog> {
    let catalog = ProductCatalog::new();
    let items = [
        (
            "Queen Bed 'Aurora'",
            "Beds",
            49_900,
            "Solid oak queen-size bed with slatted base.",
            (160, 200, 45),
            4,
        ),
        (
            "King Bed 'Borealis'",
            "Beds",
            74_900,
            "King-size bed, upholstered headboard.",
            (180, 200, 110),
            2,
        ),
        (
            "Single Bed 'Cub'",
            "Beds",
            19_900,
            "Compact single bed for kids' rooms.",
            (90, 200, 40),
            9,
        ),
        (
            "Bunk Bed 'Duo'",
            "Beds",
            39_900,
            "Space-saving bunk bed with ladder.",
            (97, 205, 160),
            3,
        ),
        (
            "Sofa 'Ease' 3-seat",
            "Sofas",
            89_900,
            "Three-seat sofa, washable linen cover.",
            (228, 95, 83),
            5,
        ),
        (
            "Sofa 'Ease' 2-seat",
            "Sofas",
            64_900,
            "Two-seat version of the Ease family.",
            (165, 95, 83),
            6,
        ),
        (
            "Corner Sofa 'Fjord'",
            "Sofas",
            129_900,
            "Corner sofa with chaise longue.",
            (280, 160, 85),
            1,
        ),
        (
            "Sofa Bed 'Guest'",
            "Sofas",
            74_900,
            "Converts to a double bed in seconds.",
            (200, 100, 90),
            4,
        ),
        (
            "Armchair 'Haven'",
            "Chairs",
            34_900,
            "Wingback armchair, velvet.",
            (80, 85, 105),
            7,
        ),
        (
            "Office Chair 'Ion'",
            "Chairs",
            24_900,
            "Ergonomic office chair, lumbar support.",
            (60, 60, 120),
            12,
        ),
        (
            "Dining Chair 'Juno'",
            "Chairs",
            8_900,
            "Stackable dining chair, beech.",
            (45, 52, 80),
            24,
        ),
        (
            "Rocking Chair 'Koa'",
            "Chairs",
            27_900,
            "Classic rocking chair, walnut finish.",
            (66, 90, 98),
            3,
        ),
        (
            "Dining Table 'Lago'",
            "Tables",
            59_900,
            "Extendable dining table for 6-10.",
            (180, 90, 74),
            2,
        ),
        (
            "Coffee Table 'Mesa'",
            "Tables",
            19_900,
            "Low coffee table with storage shelf.",
            (110, 60, 45),
            8,
        ),
        (
            "Desk 'Nook'",
            "Tables",
            29_900,
            "Writing desk with cable grommet.",
            (120, 60, 74),
            6,
        ),
        (
            "Side Table 'Orb'",
            "Tables",
            9_900,
            "Round side table, powder-coated steel.",
            (45, 45, 50),
            15,
        ),
    ];
    for (name, cat, price, desc, dims, stock) in items {
        catalog.insert(Product {
            name: name.to_owned(),
            category: cat.to_owned(),
            price_cents: price,
            description: desc.to_owned(),
            dimensions_cm: dims,
            stock,
        });
    }
    Arc::new(catalog)
}

/// The pure comparison logic — the offloadable logic-tier component.
///
/// It operates on `shop.Product` values only (no catalogue access), which
/// is what makes it safe and useful to run client-side: once the client
/// has two product values, comparisons are local and instant even on a
/// slow link.
#[derive(Debug, Clone, Copy, Default)]
pub struct ComparisonLogic;

impl ComparisonLogic {
    /// Compares two product values, returning a human-readable verdict.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceCallError::BadArguments`] if either value is not a
    /// product struct.
    pub fn compare(a: &Value, b: &Value) -> Result<Value, ServiceCallError> {
        let get = |v: &Value, field: &str| -> Result<i64, ServiceCallError> {
            v.field(field).and_then(Value::as_i64).ok_or_else(|| {
                ServiceCallError::BadArguments(format!("missing product field '{field}'"))
            })
        };
        let name = |v: &Value| -> Result<String, ServiceCallError> {
            v.field("name")
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| ServiceCallError::BadArguments("missing product name".into()))
        };
        let (na, nb) = (name(a)?, name(b)?);
        let (pa, pb) = (get(a, "price_cents")?, get(b, "price_cents")?);
        let (sa, sb) = (get(a, "stock")?, get(b, "stock")?);
        let cheaper = if pa <= pb { &na } else { &nb };
        let diff = (pa - pb).abs();
        let availability = if sa > 0 && sb > 0 {
            "both in stock".to_owned()
        } else if sa > 0 {
            format!("only {na} in stock")
        } else if sb > 0 {
            format!("only {nb} in stock")
        } else {
            "neither in stock".to_owned()
        };
        Ok(Value::from(format!(
            "{cheaper} is cheaper by {}.{:02} ({availability})",
            diff / 100,
            diff % 100
        )))
    }

    /// The component's shippable interface.
    pub fn interface() -> ServiceInterfaceDesc {
        ServiceInterfaceDesc::new(
            COMPARE_INTERFACE,
            vec![MethodSpec::new(
                "compare",
                vec![
                    ParamSpec::new("a", TypeHint::Struct),
                    ParamSpec::new("b", TypeHint::Struct),
                ],
                TypeHint::Str,
                "Compare two products by price and availability.",
            )],
        )
    }
}

impl Service for ComparisonLogic {
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ServiceCallError> {
        match method {
            "compare" => match args {
                [a, b] => ComparisonLogic::compare(a, b),
                _ => Err(ServiceCallError::BadArguments(
                    "compare expects two products".into(),
                )),
            },
            other => Err(ServiceCallError::NoSuchMethod(other.to_owned())),
        }
    }

    fn describe(&self) -> Option<ServiceInterfaceDesc> {
        Some(ComparisonLogic::interface())
    }
}

/// The shop facade: the service the phone leases.
#[derive(Debug)]
pub struct ShopService {
    catalog: Arc<ProductCatalog>,
}

impl ShopService {
    /// Creates the facade over a catalogue.
    pub fn new(catalog: Arc<ProductCatalog>) -> Self {
        ShopService { catalog }
    }

    /// The shippable interface description.
    pub fn interface() -> ServiceInterfaceDesc {
        ServiceInterfaceDesc::new(
            SHOP_INTERFACE,
            vec![
                MethodSpec::new("categories", vec![], TypeHint::List, "List categories."),
                MethodSpec::new(
                    "products",
                    vec![ParamSpec::new("category", TypeHint::Str)],
                    TypeHint::List,
                    "List product names in a category.",
                ),
                MethodSpec::new(
                    "details",
                    vec![ParamSpec::new("name", TypeHint::Str)],
                    TypeHint::Struct,
                    "Full details for one product.",
                ),
                MethodSpec::new(
                    "search",
                    vec![ParamSpec::new("query", TypeHint::Str)],
                    TypeHint::List,
                    "Search products by name or description.",
                ),
                MethodSpec::new(
                    "compare",
                    vec![
                        ParamSpec::new("a", TypeHint::Str),
                        ParamSpec::new("b", TypeHint::Str),
                    ],
                    TypeHint::Str,
                    "Compare two products by name (server-side convenience).",
                ),
            ],
        )
    }

    /// The AlfredO descriptor: browsing UI + controller rules, with the
    /// comparison component listed as an offloadable dependency.
    pub fn descriptor() -> ServiceDescriptor {
        let ui = UiDescription::new("AlfredOShop")
            .with_control(Control::label("title", "AlfredO Shop"))
            .with_control(Control::text_input("search", "search products…"))
            .with_control(Control::list("categories", Vec::<String>::new()))
            .with_control(Control::list("products", Vec::<String>::new()))
            .with_control(Control::panel(
                "detail_panel",
                true,
                vec![
                    Control::label("detail", ""),
                    Control::label("price", "select a product for pricing"),
                    Control::label("stock", ""),
                    Control::label("dimensions", ""),
                ],
            ))
            .with_control(Control::label("verdict", ""))
            .with_control(Control::panel(
                "actions",
                false,
                vec![
                    Control::button("refresh", "Refresh"),
                    Control::button("compare", "Compare top two"),
                    Control::button("clear", "Clear"),
                ],
            ))
            .with_relation(Relation::new("title", RelationKind::LabelFor, "categories"))
            .with_relation(Relation::new(
                "detail",
                RelationKind::DisplaysResultOf,
                "products",
            ))
            .with_relation(Relation::new(
                "products",
                RelationKind::Adjacent,
                "categories",
            ));

        let controller = ControllerProgram::new(vec![
            Rule::on_click(
                "refresh",
                MethodCall::new(SHOP_INTERFACE, "categories", vec![]),
                Some(Binding::to_slot("categories", "items")),
            ),
            Rule::new(
                Trigger::UiSelected {
                    control: "categories".into(),
                },
                vec![Action::Invoke {
                    call: MethodCall::new(
                        SHOP_INTERFACE,
                        "products",
                        vec![ArgSource::SelectedItem {
                            control: "categories".into(),
                        }],
                    ),
                    bind: Some(Binding::to_slot("products", "items")),
                }],
            ),
            Rule::new(
                Trigger::UiSelected {
                    control: "products".into(),
                },
                vec![Action::Invoke {
                    call: MethodCall::new(
                        SHOP_INTERFACE,
                        "details",
                        vec![ArgSource::SelectedItem {
                            control: "products".into(),
                        }],
                    ),
                    bind: Some(Binding::to("detail")),
                }],
            ),
            Rule::new(
                Trigger::UiText {
                    control: "search".into(),
                },
                vec![Action::Invoke {
                    call: MethodCall::new(SHOP_INTERFACE, "search", vec![ArgSource::EventValue]),
                    bind: Some(Binding::to_slot("products", "items")),
                }],
            ),
            // "Compare top two": server-side convenience compare of the
            // selected product against the current detail view.
            Rule::new(
                Trigger::UiClick {
                    control: "compare".into(),
                },
                vec![Action::Invoke {
                    call: MethodCall::new(
                        SHOP_INTERFACE,
                        "compare",
                        vec![
                            ArgSource::SelectedItem {
                                control: "products".into(),
                            },
                            ArgSource::State {
                                control: "compare_with".into(),
                            },
                        ],
                    ),
                    bind: Some(Binding::to("verdict")),
                }],
            ),
            // Remember the previously selected product for comparisons.
            Rule::new(
                Trigger::UiSelected {
                    control: "products".into(),
                },
                vec![Action::Update {
                    bind: Binding::to("compare_with"),
                    value: ArgSource::SelectedItem {
                        control: "products".into(),
                    },
                }],
            ),
            Rule::new(
                Trigger::UiClick {
                    control: "clear".into(),
                },
                vec![
                    Action::Update {
                        bind: Binding::to("detail"),
                        value: ArgSource::Const(Value::Unit),
                    },
                    Action::Update {
                        bind: Binding::to("verdict"),
                        value: ArgSource::Const(Value::Unit),
                    },
                ],
            ),
            // Shop-screen updates (price changes) refresh the verdict line.
            Rule::new(
                Trigger::RemoteEvent {
                    topic_pattern: "shop/*".into(),
                },
                vec![Action::Update {
                    bind: Binding::to("verdict"),
                    value: ArgSource::EventValue,
                }],
            ),
        ]);

        ServiceDescriptor::new(SHOP_INTERFACE, ui)
            .with_dependency(DependencySpec::offloadable(
                COMPARE_INTERFACE,
                ResourceRequirements::none()
                    .with_memory(256 << 10)
                    .with_cpu_mhz(100),
            ))
            .with_presentation_requirements(ResourceRequirements::none().with_memory(64 << 10))
            .with_controller(controller)
    }
}

impl Service for ShopService {
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ServiceCallError> {
        let str_arg = |i: usize| -> Result<&str, ServiceCallError> {
            args.get(i).and_then(Value::as_str).ok_or_else(|| {
                ServiceCallError::BadArguments(format!("argument {i} must be a string"))
            })
        };
        match method {
            "categories" => Ok(Value::from(self.catalog.categories())),
            "products" => Ok(Value::from(self.catalog.products_in(str_arg(0)?))),
            "details" => {
                let name = str_arg(0)?;
                self.catalog
                    .get(name)
                    .map(|p| p.to_value())
                    .ok_or_else(|| ServiceCallError::Failed(format!("no such product: {name}")))
            }
            "search" => Ok(Value::from(self.catalog.search(str_arg(0)?))),
            "compare" => {
                let a = self.catalog.get(str_arg(0)?).ok_or_else(|| {
                    ServiceCallError::Failed(format!("no such product: {}", str_arg(0).unwrap()))
                })?;
                let b = self.catalog.get(str_arg(1)?).ok_or_else(|| {
                    ServiceCallError::Failed(format!("no such product: {}", str_arg(1).unwrap()))
                })?;
                ComparisonLogic::compare(&a.to_value(), &b.to_value())
            }
            other => Err(ServiceCallError::NoSuchMethod(other.to_owned())),
        }
    }

    fn describe(&self) -> Option<ServiceInterfaceDesc> {
        Some(ShopService::interface())
    }
}

/// Registers the shop (facade + offloadable comparison component) on the
/// information screen's framework.
///
/// # Errors
///
/// Propagates registration errors.
pub fn register_shop(
    framework: &alfredo_osgi::Framework,
    catalog: Arc<ProductCatalog>,
) -> Result<(ServiceRegistration, ServiceRegistration), alfredo_osgi::OsgiError> {
    let injected = encode_type_descriptors(&[Product::type_descriptor()]);
    let shop = host_service(
        framework,
        SHOP_INTERFACE,
        Arc::new(ShopService::new(Arc::clone(&catalog))) as Arc<dyn Service>,
        &ShopService::descriptor(),
        None,
        Properties::new()
            .with("device.kind", "information-screen")
            .with(PROP_INJECTED_TYPES, injected),
    )?;
    // The comparison component: offered with a smart-proxy key so trusted
    // clients can run it locally; untrusted clients call it remotely.
    let compare_descriptor = ServiceDescriptor::new(
        COMPARE_INTERFACE,
        UiDescription::new("comparison"), // headless component
    );
    let compare = host_service(
        framework,
        COMPARE_INTERFACE,
        Arc::new(ComparisonLogic) as Arc<dyn Service>,
        &compare_descriptor,
        Some((COMPARE_FACTORY_KEY, vec!["compare".to_owned()])),
        Properties::new(),
    )?;
    Ok((shop, compare))
}

/// Registers the comparison smart proxy's local half in a phone's code
/// registry (linking the "shipped" logic, per the substitution in
/// `DESIGN.md` §2).
pub fn link_comparison_logic(code: &alfredo_osgi::CodeRegistry) {
    code.register_service(COMPARE_FACTORY_KEY, || Arc::new(ComparisonLogic));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_queries() {
        let c = sample_catalog();
        assert_eq!(c.len(), 16);
        assert!(!c.is_empty());
        assert_eq!(c.categories(), vec!["Beds", "Chairs", "Sofas", "Tables"]);
        assert_eq!(c.products_in("Beds").len(), 4);
        assert!(c.get("Queen Bed 'Aurora'").is_some());
        assert!(c.get("Nonexistent").is_none());
        let hits = c.search("bed");
        assert!(hits.len() >= 5, "{hits:?}"); // 4 beds + sofa bed
        assert!(c.search("BED").len() >= 5, "case-insensitive");
        assert!(c.search("zzz").is_empty());
    }

    #[test]
    fn shop_service_methods() {
        let svc = ShopService::new(sample_catalog());
        let cats = svc.invoke("categories", &[]).unwrap();
        assert_eq!(cats.as_list().unwrap().len(), 4);
        let products = svc.invoke("products", &[Value::from("Sofas")]).unwrap();
        assert_eq!(products.as_list().unwrap().len(), 4);
        let details = svc
            .invoke("details", &[Value::from("Desk 'Nook'")])
            .unwrap();
        assert_eq!(
            details.field("price_cents").and_then(Value::as_i64),
            Some(29_900)
        );
        // The details value conforms to the injected type.
        let mut types = alfredo_rosgi::TypeRegistry::new();
        types.inject(Product::type_descriptor());
        types.validate_deep(&details).unwrap();
        assert!(matches!(
            svc.invoke("details", &[Value::from("missing")]),
            Err(ServiceCallError::Failed(_))
        ));
    }

    #[test]
    fn comparison_logic_is_pure_and_correct() {
        let c = sample_catalog();
        let a = c.get("Dining Chair 'Juno'").unwrap().to_value();
        let b = c.get("Armchair 'Haven'").unwrap().to_value();
        let verdict = ComparisonLogic::compare(&a, &b).unwrap();
        let text = verdict.as_str().unwrap();
        assert!(text.contains("Juno"), "{text}");
        assert!(text.contains("260.00"), "{text}"); // 34900-8900 = 26000 cents
        assert!(text.contains("both in stock"), "{text}");
    }

    #[test]
    fn comparison_handles_stock_cases() {
        let mut a = sample_catalog().get("Side Table 'Orb'").unwrap();
        a.stock = 0;
        let b = sample_catalog().get("Desk 'Nook'").unwrap();
        let verdict = ComparisonLogic::compare(&a.to_value(), &b.to_value()).unwrap();
        assert!(verdict
            .as_str()
            .unwrap()
            .contains("only Desk 'Nook' in stock"));
        let mut b0 = b.clone();
        b0.stock = 0;
        let verdict = ComparisonLogic::compare(&a.to_value(), &b0.to_value()).unwrap();
        assert!(verdict.as_str().unwrap().contains("neither"));
    }

    #[test]
    fn comparison_rejects_non_products() {
        assert!(matches!(
            ComparisonLogic::compare(&Value::I64(1), &Value::I64(2)),
            Err(ServiceCallError::BadArguments(_))
        ));
        let svc = ComparisonLogic;
        assert!(matches!(
            svc.invoke("compare", &[Value::Unit]),
            Err(ServiceCallError::BadArguments(_))
        ));
    }

    #[test]
    fn server_side_compare_convenience() {
        let svc = ShopService::new(sample_catalog());
        let verdict = svc
            .invoke(
                "compare",
                &[
                    Value::from("Sofa 'Ease' 2-seat"),
                    Value::from("Sofa 'Ease' 3-seat"),
                ],
            )
            .unwrap();
        assert!(verdict.as_str().unwrap().contains("2-seat"));
    }

    #[test]
    fn descriptor_is_valid_and_offloadable() {
        let d = ShopService::descriptor();
        d.validate().unwrap();
        let off = d.offloadable_dependencies();
        assert_eq!(off.len(), 1);
        assert_eq!(off[0].interface, COMPARE_INTERFACE);
        // Ships and returns intact.
        assert_eq!(ServiceDescriptor::decode(&d.encode()).unwrap(), d);
        // The shipped payload is in the paper's "about 2 kB" regime.
        let size = d.footprint();
        assert!((500..6000).contains(&size), "descriptor {size} bytes");
    }

    #[test]
    fn registration_attaches_descriptor_and_smart_proxy_props() {
        let fw = alfredo_osgi::Framework::new();
        register_shop(&fw, sample_catalog()).unwrap();
        let shop_ref = fw.registry().get_reference(SHOP_INTERFACE).unwrap();
        assert!(shop_ref
            .properties()
            .get(alfredo_rosgi::endpoint::PROP_DESCRIPTOR)
            .is_some());
        let cmp_ref = fw.registry().get_reference(COMPARE_INTERFACE).unwrap();
        assert_eq!(
            cmp_ref
                .properties()
                .get_str(alfredo_rosgi::endpoint::PROP_SMART_PROXY_KEY),
            Some(COMPARE_FACTORY_KEY)
        );
    }

    #[test]
    fn link_comparison_registers_factory() {
        let code = alfredo_osgi::CodeRegistry::new();
        link_comparison_logic(&code);
        assert!(code.contains_service(COMPARE_FACTORY_KEY));
        let svc = code.instantiate_service(COMPARE_FACTORY_KEY).unwrap();
        let c = sample_catalog();
        let out = svc
            .invoke(
                "compare",
                &[
                    c.get("Side Table 'Orb'").unwrap().to_value(),
                    c.get("Desk 'Nook'").unwrap().to_value(),
                ],
            )
            .unwrap();
        assert!(out.as_str().is_some());
    }
}
