//! CoffeeMachine: the paper's canonical appliance.
//!
//! The paper repeatedly reaches for the coffee machine as the archetypal
//! target device — "a service running on a coffee machine … may need to
//! support an average of 2-3 concurrent users" (§4.3) — and uses its
//! *knob* as the example of capability mapping: "the mouse of a desktop
//! computer is equivalent to the joystick of a phone or the knob of a
//! coffee machine" (§3.3). This application makes that concrete: the
//! machine's strength knob becomes an abstract slider that each phone
//! implements with whatever pointing hardware it has, and brewing
//! progress flows back through poll rules and a completion event.

use std::sync::Arc;

use alfredo_sync::Mutex;

use alfredo_core::{
    host_service, Action, ArgSource, Binding, ControllerProgram, MethodCall, Rule,
    ServiceDescriptor, Trigger,
};
use alfredo_osgi::{
    Event, EventAdmin, MethodSpec, ParamSpec, Properties, Service, ServiceCallError,
    ServiceInterfaceDesc, ServiceRegistration, TypeHint, Value,
};
use alfredo_ui::control::{ControlKind, RelationKind};
use alfredo_ui::{Control, Relation, UiDescription};

/// The service interface name.
pub const COFFEE_INTERFACE: &str = "apps.CoffeeMachine";

/// Topic announced when a brew completes.
pub const READY_TOPIC: &str = "coffee/ready";

/// Progress gained per poll of `progress()` while brewing, in percent.
const PROGRESS_PER_POLL: u8 = 20;

#[derive(Debug)]
struct MachineState {
    water_pct: i64,
    beans_pct: i64,
    strength: i64,
    brewing: Option<u8>, // progress percent
    brews_completed: u64,
    last_kind: String,
}

/// The appliance-side coffee machine service.
pub struct CoffeeMachineService {
    state: Mutex<MachineState>,
    events: EventAdmin,
}

impl CoffeeMachineService {
    /// Creates a full machine.
    pub fn new(events: EventAdmin) -> Self {
        CoffeeMachineService {
            state: Mutex::new(MachineState {
                water_pct: 100,
                beans_pct: 100,
                strength: 5,
                brewing: None,
                brews_completed: 0,
                last_kind: String::new(),
            }),
            events,
        }
    }

    /// Completed brews so far.
    pub fn brews_completed(&self) -> u64 {
        self.state.lock().brews_completed
    }

    /// The knob position (1–10).
    pub fn strength(&self) -> i64 {
        self.state.lock().strength
    }

    /// Remaining water percentage.
    pub fn water_pct(&self) -> i64 {
        self.state.lock().water_pct
    }

    /// Whether a brew is in progress.
    pub fn is_brewing(&self) -> bool {
        self.state.lock().brewing.is_some()
    }

    fn status_value(state: &MachineState) -> Value {
        Value::structure(
            "coffee.Status",
            [
                ("water_pct", Value::I64(state.water_pct)),
                ("beans_pct", Value::I64(state.beans_pct)),
                ("strength", Value::I64(state.strength)),
                ("brewing", Value::Bool(state.brewing.is_some())),
                ("brews_completed", Value::I64(state.brews_completed as i64)),
            ],
        )
    }

    /// The shippable interface description.
    pub fn interface() -> ServiceInterfaceDesc {
        ServiceInterfaceDesc::new(
            COFFEE_INTERFACE,
            vec![
                MethodSpec::new("status", vec![], TypeHint::Struct, "Machine status."),
                MethodSpec::new(
                    "set_strength",
                    vec![ParamSpec::new("strength", TypeHint::I64)],
                    TypeHint::I64,
                    "Turn the strength knob (1-10); returns the clamped value.",
                ),
                MethodSpec::new(
                    "brew",
                    vec![ParamSpec::new("kind", TypeHint::Str)],
                    TypeHint::Unit,
                    "Start brewing; fails if water/beans are exhausted or busy.",
                ),
                MethodSpec::new(
                    "progress",
                    vec![],
                    TypeHint::I64,
                    "Brew progress 0-100; polling it advances the brew.",
                ),
                MethodSpec::new("refill", vec![], TypeHint::Unit, "Refill water and beans."),
            ],
        )
    }

    /// The AlfredO descriptor: knob-as-slider, brew button, progress bar,
    /// poll-driven progress, and the ready event.
    pub fn descriptor() -> ServiceDescriptor {
        let ui = UiDescription::new("CoffeeMachine")
            .with_control(Control::label("title", "Coffee machine"))
            .with_control(Control::label("status", "ready"))
            .with_control(
                Control::new(
                    "strength",
                    ControlKind::Slider {
                        min: 1,
                        max: 10,
                        value: 5,
                    },
                )
                .requiring(alfredo_ui::CapabilityInterface::PointingDevice),
            )
            .with_control(Control::panel(
                "actions",
                false,
                vec![
                    Control::button("espresso", "Espresso"),
                    Control::button("lungo", "Lungo"),
                ],
            ))
            .with_control(Control::new("progress", ControlKind::Progress { value: 0 }))
            .with_relation(Relation::new(
                "strength",
                RelationKind::Triggers,
                "progress",
            ))
            .with_relation(Relation::new("status", RelationKind::LabelFor, "progress"));

        let brew_rule = |control: &str, kind: &str| {
            Rule::new(
                Trigger::UiClick {
                    control: control.into(),
                },
                vec![Action::Invoke {
                    call: MethodCall::new(
                        COFFEE_INTERFACE,
                        "brew",
                        vec![ArgSource::Const(Value::from(kind))],
                    ),
                    bind: None,
                }],
            )
        };
        let controller = ControllerProgram::new(vec![
            // The knob: slider changes set the machine's strength.
            Rule::new(
                Trigger::UiSlider {
                    control: "strength".into(),
                },
                vec![Action::Invoke {
                    call: MethodCall::new(
                        COFFEE_INTERFACE,
                        "set_strength",
                        vec![ArgSource::EventValue],
                    ),
                    bind: None,
                }],
            ),
            brew_rule("espresso", "espresso"),
            brew_rule("lungo", "lungo"),
            // Poll progress twice a second while the UI is up.
            Rule::new(
                Trigger::Poll { interval_ms: 500 },
                vec![Action::Invoke {
                    call: MethodCall::new(COFFEE_INTERFACE, "progress", vec![]),
                    bind: Some(Binding::to("progress")),
                }],
            ),
            // The machine announces completion.
            Rule::new(
                Trigger::RemoteEvent {
                    topic_pattern: READY_TOPIC.into(),
                },
                vec![Action::Update {
                    bind: Binding::to("status"),
                    value: ArgSource::EventValue,
                }],
            ),
        ]);
        ServiceDescriptor::new(COFFEE_INTERFACE, ui).with_controller(controller)
    }
}

impl Service for CoffeeMachineService {
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ServiceCallError> {
        match method {
            "status" => Ok(Self::status_value(&self.state.lock())),
            "set_strength" => {
                let v = args.first().and_then(Value::as_i64).ok_or_else(|| {
                    ServiceCallError::BadArguments("set_strength expects an integer".into())
                })?;
                let clamped = v.clamp(1, 10);
                self.state.lock().strength = clamped;
                Ok(Value::I64(clamped))
            }
            "brew" => {
                let kind = args
                    .first()
                    .and_then(Value::as_str)
                    .unwrap_or("espresso")
                    .to_owned();
                let mut s = self.state.lock();
                if s.brewing.is_some() {
                    return Err(ServiceCallError::Failed("already brewing".into()));
                }
                if s.water_pct < 10 {
                    return Err(ServiceCallError::Failed("refill water".into()));
                }
                if s.beans_pct < 5 {
                    return Err(ServiceCallError::Failed("refill beans".into()));
                }
                s.water_pct -= 10;
                s.beans_pct -= 5;
                s.brewing = Some(0);
                s.last_kind = kind;
                Ok(Value::Unit)
            }
            "progress" => {
                let (value, finished_kind) = {
                    let mut s = self.state.lock();
                    match s.brewing {
                        None => (100, None),
                        Some(p) => {
                            let next = p.saturating_add(PROGRESS_PER_POLL).min(100);
                            if next >= 100 {
                                s.brewing = None;
                                s.brews_completed += 1;
                                (100, Some(s.last_kind.clone()))
                            } else {
                                s.brewing = Some(next);
                                (i64::from(next), None)
                            }
                        }
                    }
                };
                if let Some(kind) = finished_kind {
                    self.events.post(&Event::new(
                        READY_TOPIC,
                        Properties::new()
                            .with("value", format!("your {kind} is ready"))
                            .with("kind", kind),
                    ));
                }
                Ok(Value::I64(value))
            }
            "refill" => {
                let mut s = self.state.lock();
                s.water_pct = 100;
                s.beans_pct = 100;
                Ok(Value::Unit)
            }
            other => Err(ServiceCallError::NoSuchMethod(other.to_owned())),
        }
    }

    fn describe(&self) -> Option<ServiceInterfaceDesc> {
        Some(CoffeeMachineService::interface())
    }
}

impl std::fmt::Debug for CoffeeMachineService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("CoffeeMachineService")
            .field("water_pct", &s.water_pct)
            .field("strength", &s.strength)
            .field("brewing", &s.brewing)
            .finish()
    }
}

/// Registers the coffee machine on an appliance framework.
///
/// # Errors
///
/// Propagates registration errors.
pub fn register_coffee_machine(
    framework: &alfredo_osgi::Framework,
) -> Result<(Arc<CoffeeMachineService>, ServiceRegistration), alfredo_osgi::OsgiError> {
    let service = Arc::new(CoffeeMachineService::new(framework.event_admin().clone()));
    let registration = host_service(
        framework,
        COFFEE_INTERFACE,
        Arc::clone(&service) as Arc<dyn Service>,
        &CoffeeMachineService::descriptor(),
        None,
        Properties::new().with("device.kind", "appliance"),
    )?;
    Ok((service, registration))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> CoffeeMachineService {
        CoffeeMachineService::new(EventAdmin::new())
    }

    #[test]
    fn knob_clamps_strength() {
        let m = machine();
        assert_eq!(
            m.invoke("set_strength", &[Value::I64(7)]).unwrap(),
            Value::I64(7)
        );
        assert_eq!(
            m.invoke("set_strength", &[Value::I64(99)]).unwrap(),
            Value::I64(10)
        );
        assert_eq!(
            m.invoke("set_strength", &[Value::I64(-3)]).unwrap(),
            Value::I64(1)
        );
        assert_eq!(m.strength(), 1);
        assert!(matches!(
            m.invoke("set_strength", &[Value::from("max")]),
            Err(ServiceCallError::BadArguments(_))
        ));
    }

    #[test]
    fn brew_lifecycle_with_polled_progress() {
        let m = machine();
        m.invoke("brew", &[Value::from("espresso")]).unwrap();
        assert!(m.is_brewing());
        assert_eq!(m.water_pct(), 90);
        // Busy: a second brew is refused.
        assert!(matches!(
            m.invoke("brew", &[Value::from("lungo")]),
            Err(ServiceCallError::Failed(_))
        ));
        // Progress advances per poll and finishes at 100.
        let mut last = 0;
        for _ in 0..5 {
            last = m.invoke("progress", &[]).unwrap().as_i64().unwrap();
        }
        assert_eq!(last, 100);
        assert!(!m.is_brewing());
        assert_eq!(m.brews_completed(), 1);
        // Idle progress stays at 100.
        assert_eq!(m.invoke("progress", &[]).unwrap(), Value::I64(100));
    }

    #[test]
    fn resources_deplete_and_refill() {
        let m = machine();
        for _ in 0..10 {
            m.invoke("brew", &[Value::from("espresso")]).unwrap();
            while m.is_brewing() {
                m.invoke("progress", &[]).unwrap();
            }
        }
        // Water exhausted after 10 brews (10% each).
        let err = m.invoke("brew", &[Value::from("espresso")]).unwrap_err();
        assert!(err.to_string().contains("water"), "{err}");
        m.invoke("refill", &[]).unwrap();
        m.invoke("brew", &[Value::from("espresso")]).unwrap();
    }

    #[test]
    fn completion_event_is_published() {
        let events = EventAdmin::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        events.subscribe(READY_TOPIC, move |e| {
            g.lock()
                .push(e.properties.get_str("kind").unwrap().to_owned());
        });
        let m = CoffeeMachineService::new(events);
        m.invoke("brew", &[Value::from("lungo")]).unwrap();
        while m.is_brewing() {
            m.invoke("progress", &[]).unwrap();
        }
        assert_eq!(*got.lock(), vec!["lungo"]);
    }

    #[test]
    fn status_reports_everything() {
        let m = machine();
        let st = m.invoke("status", &[]).unwrap();
        assert_eq!(st.field("water_pct").and_then(Value::as_i64), Some(100));
        assert_eq!(st.field("brewing").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn descriptor_wires_the_knob() {
        let d = CoffeeMachineService::descriptor();
        d.validate().unwrap();
        // The knob is an abstract slider requiring a pointing device.
        let knob = d.ui.find("strength").unwrap();
        assert!(matches!(knob.kind, ControlKind::Slider { .. }));
        assert!(knob
            .requires
            .contains(&alfredo_ui::CapabilityInterface::PointingDevice));
        assert_eq!(d.controller.rules().len(), 5);
        assert_eq!(ServiceDescriptor::decode(&d.encode()).unwrap(), d);
    }
}
