//! Property-based tests for the prototype applications' invariants.

use alfredo_apps::shop::{ComparisonLogic, Product, ProductCatalog};
use alfredo_apps::{sample_catalog, MouseControllerService};
use alfredo_osgi::{EventAdmin, Service, Value};
use proptest::prelude::*;

fn product_strategy() -> impl Strategy<Value = Product> {
    (
        "[A-Za-z '\\-]{1,24}",
        "[A-Za-z]{1,10}",
        0i64..10_000_000,
        ".{0,40}",
        (1i64..500, 1i64..500, 1i64..500),
        0i64..1000,
    )
        .prop_map(
            |(name, category, price_cents, description, dimensions_cm, stock)| Product {
                name,
                category,
                price_cents,
                description,
                dimensions_cm,
                stock,
            },
        )
}

proptest! {
    /// Search results always match the query (case-insensitively) in the
    /// name or description, and every matching product is found.
    #[test]
    fn search_is_sound_and_complete(
        products in prop::collection::vec(product_strategy(), 0..20),
        query in "[a-zA-Z]{1,6}",
    ) {
        let catalog = ProductCatalog::new();
        for p in &products {
            catalog.insert(p.clone());
        }
        let hits = catalog.search(&query);
        let q = query.to_lowercase();
        // Soundness: each hit names a product matching the query.
        for hit in &hits {
            let p = catalog.get(hit).expect("hit exists");
            prop_assert!(
                p.name.to_lowercase().contains(&q)
                    || p.description.to_lowercase().contains(&q)
            );
        }
        // Completeness over the *deduplicated* name space (the catalog is
        // keyed by name; later inserts replace earlier ones).
        let matching = catalog
            .categories()
            .iter()
            .flat_map(|c| catalog.products_in(c))
            .filter(|name| {
                let p = catalog.get(name).unwrap();
                p.name.to_lowercase().contains(&q)
                    || p.description.to_lowercase().contains(&q)
            })
            .count();
        prop_assert_eq!(hits.len(), matching);
    }

    /// Comparison is symmetric in its verdict about which is cheaper and
    /// never panics on conforming products.
    #[test]
    fn comparison_is_consistent(a in product_strategy(), b in product_strategy()) {
        prop_assume!(a.name != b.name);
        let ab = ComparisonLogic::compare(&a.to_value(), &b.to_value()).unwrap();
        let ba = ComparisonLogic::compare(&b.to_value(), &a.to_value()).unwrap();
        let cheaper = if a.price_cents <= b.price_cents { &a.name } else { &b.name };
        // Ties break toward the first argument; when prices differ the
        // verdict must name the cheaper product in both orders.
        if a.price_cents != b.price_cents {
            prop_assert!(ab.as_str().unwrap().starts_with(cheaper.as_str()), "{ab}");
            prop_assert!(ba.as_str().unwrap().starts_with(cheaper.as_str()), "{ba}");
        }
    }

    /// Products round-trip through the wire value and validate against the
    /// injected type descriptor.
    #[test]
    fn product_values_conform_to_injected_type(p in product_strategy()) {
        let v = p.to_value();
        let mut types = alfredo_rosgi::TypeRegistry::new();
        types.inject(Product::type_descriptor());
        types.validate_deep(&v).unwrap();
        prop_assert_eq!(v.field("name").and_then(Value::as_str), Some(p.name.as_str()));
        prop_assert_eq!(v.field("price_cents").and_then(Value::as_i64), Some(p.price_cents));
    }

    /// The mouse pointer is always clamped inside the screen, whatever the
    /// move sequence.
    #[test]
    fn pointer_never_leaves_the_screen(moves in prop::collection::vec((-5000i64..5000, -5000i64..5000), 0..50)) {
        let svc = MouseControllerService::new(800, 600, EventAdmin::new());
        for (dx, dy) in moves {
            svc.invoke("move", &[Value::I64(dx), Value::I64(dy)]).unwrap();
            let (x, y) = svc.position();
            prop_assert!((0..800).contains(&x), "x={x}");
            prop_assert!((0..600).contains(&y), "y={y}");
        }
    }
}

#[test]
fn sample_catalog_is_stable() {
    // The experiments depend on the sample data staying deterministic.
    let a = sample_catalog();
    let b = sample_catalog();
    assert_eq!(a.len(), b.len());
    assert_eq!(a.categories(), b.categories());
    for cat in a.categories() {
        assert_eq!(a.products_in(&cat), b.products_in(&cat));
    }
}
